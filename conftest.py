"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. running ``pytest`` straight after a fresh clone on an offline
machine).
"""

import sys
from pathlib import Path

SRC = Path(__file__).parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
