"""Bounded list-based OD discovery in the style of ORDER (Langer & Naumann).

The paper contrasts the set-based canonical framework (exponential in the
number of attributes) with list-based discovery, whose search space over
attribute *lists* is factorial.  This module implements a bounded version of
the list-based approach, sufficient for the comparison benches:

* candidate ODs are lists ``X ↦→ Y`` built level-wise by extending valid
  shorter candidates on either side (prefix pruning: if ``X ↦→ Y`` fails
  with a swap, no extension of ``Y`` can fix it; if it fails only with
  splits, extending ``Y`` may still help — mirroring ORDER's
  swap/split-aware pruning),
* validation sorts once per candidate and scans linearly,
* the search is capped by ``max_list_length`` because the factorial
  explosion is exactly the point being demonstrated.

It reports plain list-based ODs ``[A] ↦→ [B]``-style statements; the tests
cross-check its level-1/2 output against the canonical framework through
the mapping of Section 2.2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dataset.relation import Relation
from repro.dependencies.od import ListOD


@dataclass(frozen=True)
class ValidatedListOD:
    """A list-based OD found valid, with the violation-free witness order."""

    od: ListOD
    level: int


@dataclass
class ListODResult:
    """Outcome of a bounded list-based OD discovery run."""

    ods: List[ValidatedListOD] = field(default_factory=list)
    candidates_checked: int = 0
    total_seconds: float = 0.0
    truncated: bool = False

    @property
    def num_ods(self) -> int:
        return len(self.ods)

    def statements(self) -> Set[Tuple[Tuple[str, ...], Tuple[str, ...]]]:
        return {(found.od.lhs, found.od.rhs) for found in self.ods}


def _check_list_od(relation: Relation, od: ListOD) -> Tuple[bool, bool]:
    """Validate a list OD with one sort + linear scan.

    Returns ``(holds, has_swap)``: ``has_swap`` distinguishes order-
    compatibility violations from pure split violations, which drives the
    pruning decision (a swap can never be repaired by appending attributes
    to the right-hand side, a split can).
    """
    encoded = relation.encoded()
    lhs_columns = [encoded.ranks(a) for a in od.lhs]
    rhs_columns = [encoded.ranks(a) for a in od.rhs]

    def lhs_key(row: int) -> Tuple[int, ...]:
        return tuple(column[row] for column in lhs_columns)

    def rhs_key(row: int) -> Tuple[int, ...]:
        return tuple(column[row] for column in rhs_columns)

    order = sorted(range(relation.num_rows), key=lambda row: (lhs_key(row), rhs_key(row)))
    holds = True
    has_swap = False
    for previous, current in zip(order, order[1:]):
        same_lhs = lhs_key(current) == lhs_key(previous)
        if same_lhs and rhs_key(current) != rhs_key(previous):
            # Split: equal LHS projections must imply equal RHS projections.
            holds = False
        elif not same_lhs and rhs_key(current) < rhs_key(previous):
            # Swap: the RHS order decreases although the LHS order increases.
            holds = False
            has_swap = True
    return holds, has_swap


def discover_list_ods(
    relation: Relation,
    attributes: Optional[Sequence[str]] = None,
    max_list_length: int = 2,
    max_candidates: int = 100_000,
) -> ListODResult:
    """Discover list-based ODs ``X ↦→ Y`` with both sides up to a length cap.

    The candidate space is all pairs of disjoint-or-overlapping attribute
    lists up to ``max_list_length`` per side, generated level-wise with
    swap-based pruning.  ``max_candidates`` bounds the run on wide schemas
    (the factorial blow-up the set-based framework avoids); when hit, the
    result is marked ``truncated``.
    """
    names = list(attributes if attributes is not None else relation.attribute_names)
    result = ListODResult()
    start = time.perf_counter()

    # Level 1: single-attribute sides.
    current: List[ListOD] = []
    for lhs in names:
        for rhs in names:
            if lhs == rhs:
                continue
            current.append(ListOD([lhs], [rhs]))

    level = 1
    swap_failed: Set[Tuple[Tuple[str, ...], Tuple[str, ...]]] = set()
    while current and level <= max_list_length:
        next_candidates: List[ListOD] = []
        for od in current:
            if result.candidates_checked >= max_candidates:
                result.truncated = True
                break
            result.candidates_checked += 1
            holds, has_swap = _check_list_od(relation, od)
            if holds:
                result.ods.append(ValidatedListOD(od=od, level=level))
                continue  # minimal: do not extend a valid OD
            if has_swap:
                swap_failed.add((od.lhs, od.rhs))
                continue  # a swap can never be repaired by extending the RHS
            # Split-only failure: extending the RHS may make the OD hold.
            for extension in names:
                if extension in od.rhs:
                    continue
                if len(od.rhs) + 1 > max_list_length:
                    continue
                next_candidates.append(ListOD(od.lhs, list(od.rhs) + [extension]))
        if result.truncated:
            break
        # Also extend the LHS of swap-failed candidates: a longer LHS refines
        # the order and can remove swaps.
        if level < max_list_length:
            for lhs, rhs in sorted(swap_failed):
                if len(lhs) + 1 > max_list_length:
                    continue
                for extension in names:
                    if extension in lhs:
                        continue
                    next_candidates.append(ListOD(list(lhs) + [extension], rhs))
            swap_failed.clear()
        current = next_candidates
        level += 1

    result.total_seconds = time.perf_counter() - start
    return result
