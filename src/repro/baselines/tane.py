"""TANE-style discovery of exact and approximate functional dependencies.

TANE (Huhtala, Kärkkäinen, Porkka, Toivonen 1999) is the classic level-wise,
partition-based FD discovery algorithm; the paper cites it both as the
source of the linear-time approximate-FD validation reused for OFDs and as
one of the reference systems in the raw evaluation data.  This
implementation covers the parts of TANE the reproduction needs:

* level-wise traversal of the attribute-set lattice with ``C+`` candidate
  sets and prefix-join level generation,
* exact FD validation via stripped-partition error counts,
* approximate FD validation via the ``g3`` measure (minimum tuple removals),
* key pruning (a candidate set that is a superkey stops producing
  candidates).

It is intentionally independent of the OD machinery so it can serve as an
external cross-check: every exact OFD found by the OD framework must
correspond to an FD found by TANE and vice versa (tested in
``tests/baselines/test_tane.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.dataset.partition import Partition, PartitionCache
from repro.dataset.relation import Relation
from repro.dependencies.fd import FD
from repro.validation.common import removal_limit

AttributeSet = FrozenSet[str]


@dataclass(frozen=True)
class DiscoveredFD:
    """An FD found by TANE, with its ``g3`` approximation factor."""

    fd: FD
    approximation_factor: float
    level: int

    @property
    def is_exact(self) -> bool:
        return self.approximation_factor == 0.0


@dataclass
class TaneResult:
    """Outcome of one TANE run."""

    fds: List[DiscoveredFD] = field(default_factory=list)
    total_seconds: float = 0.0
    candidates_validated: int = 0
    threshold: float = 0.0

    @property
    def num_fds(self) -> int:
        return len(self.fds)

    def fd_statements(self) -> Set[Tuple[AttributeSet, str]]:
        """``{(lhs, rhs)}`` pairs, for set comparisons against other runs."""
        return {(found.fd.lhs, found.fd.rhs) for found in self.fds}


def _g3_removal_count(context_partition: Partition, value_ranks: Sequence[int]) -> int:
    """Minimum number of tuples to remove so the FD holds (``g3`` numerator)."""
    removals = 0
    for class_rows in context_partition:
        counts: Dict[int, int] = {}
        for row in class_rows:
            counts[value_ranks[row]] = counts.get(value_ranks[row], 0) + 1
        removals += len(class_rows) - max(counts.values())
    return removals


def discover_fds_tane(
    relation: Relation,
    threshold: float = 0.0,
    attributes: Optional[Sequence[str]] = None,
    max_level: Optional[int] = None,
) -> TaneResult:
    """Discover all minimal (approximate) FDs ``X -> A`` with ``g3 <= threshold``.

    Parameters mirror :func:`repro.discovery.discover_aods`; ``threshold=0``
    yields exact FDs only.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    names = list(attributes if attributes is not None else relation.attribute_names)
    encoded = relation.encoded()
    cache = PartitionCache(encoded)
    num_rows = relation.num_rows
    limit = removal_limit(num_rows, threshold)
    result = TaneResult(threshold=threshold)
    start = time.perf_counter()

    # C+ candidate sets, keyed by attribute set.
    cplus: Dict[AttributeSet, Set[str]] = {frozenset(): set(names)}
    current: List[AttributeSet] = [frozenset({name}) for name in names]
    level = 1

    while current:
        if max_level is not None and level > max_level:
            break
        next_cplus: Dict[AttributeSet, Set[str]] = {}
        survivors: List[AttributeSet] = []
        for node in sorted(current, key=lambda s: tuple(sorted(s))):
            candidates: Optional[Set[str]] = None
            for attribute in node:
                parent = cplus.get(node - {attribute}, set())
                candidates = set(parent) if candidates is None else candidates & parent
            candidates = candidates if candidates is not None else set(names)

            for attribute in sorted(node & candidates):
                lhs = node - {attribute}
                partition = cache.get_by_names(sorted(lhs))
                value_ranks = encoded.ranks(attribute)
                removal = _g3_removal_count(partition, value_ranks)
                result.candidates_validated += 1
                if removal <= limit:
                    if lhs:
                        fd = FD(lhs, attribute)
                    else:
                        fd = FD.__new__(FD)
                        fd.lhs = frozenset()
                        fd.rhs = attribute
                    result.fds.append(
                        DiscoveredFD(
                            fd=fd,
                            approximation_factor=(
                                removal / num_rows if num_rows else 0.0
                            ),
                            level=level,
                        )
                    )
                    candidates.discard(attribute)
                    if removal == 0:
                        candidates -= set(names) - node

            # Key pruning (TANE): if the node is an exact (super)key, every
            # remaining candidate A outside the node yields the minimal FD
            # X -> A right here; afterwards the node cannot produce anything
            # new and is emptied so no superset is generated through it.
            # The rule is only sound for exact discovery (Huhtala et al. §4.3):
            # with a non-zero threshold a pruned superset could still carry a
            # minimal *approximate* FD, so it is skipped in that case.
            node_partition = cache.get_by_names(sorted(node))
            if threshold == 0.0 and node_partition.error_rows() == 0:
                for attribute in sorted(candidates - node):
                    result.fds.append(
                        DiscoveredFD(
                            fd=FD(node, attribute),
                            approximation_factor=0.0,
                            level=level,
                        )
                    )
                candidates = set()

            next_cplus[node] = candidates
            if candidates:
                survivors.append(node)

        # Prefix-join level generation over surviving nodes.
        survivor_set = set(survivors)
        by_prefix: Dict[Tuple[str, ...], List[Tuple[str, ...]]] = {}
        for node in survivors:
            ordered = tuple(sorted(node))
            by_prefix.setdefault(ordered[:-1], []).append(ordered)
        next_level: Set[AttributeSet] = set()
        for group in by_prefix.values():
            for first, second in combinations(group, 2):
                joined = frozenset(first) | frozenset(second)
                if all(joined - {a} in survivor_set for a in joined):
                    next_level.add(joined)

        cplus = next_cplus
        current = sorted(next_level, key=lambda s: tuple(sorted(s)))
        level += 1

    result.total_seconds = time.perf_counter() - start
    return result
