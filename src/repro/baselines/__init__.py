"""Baseline discovery algorithms used as comparison points.

* :mod:`repro.baselines.tane` — TANE-style discovery of exact and
  approximate functional dependencies (Huhtala et al. 1999), the reference
  point for the "approximate OFD validation is already linear" claim and a
  sanity baseline for the FD side of canonical ODs.
* :mod:`repro.baselines.order` — a bounded list-based OD discovery in the
  style of ORDER (Langer & Naumann 2016), used to contrast the factorial
  list-based search space with the set-based canonical framework.
"""

from repro.baselines.tane import TaneResult, discover_fds_tane
from repro.baselines.order import ListODResult, discover_list_ods

__all__ = [
    "ListODResult",
    "TaneResult",
    "discover_fds_tane",
    "discover_list_ods",
]
