"""Command-line interface: ``repro-discover``.

A small front-end over the library for profiling CSV files from a shell::

    repro-discover data.csv --threshold 0.1 --attributes a b c
    repro-discover data.csv --exact --max-level 4
    repro-discover --demo            # run on the paper's Table 1

The CLI prints the discovery summary, the ranked dependencies and (with
``--outliers``) the most suspicious tuples.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.applications.outlier_detection import detect_outliers
from repro.backend import BACKEND_CHOICES, BACKEND_ENV_VAR
from repro.dataset.csv_io import read_csv
from repro.dataset.examples import employee_salary_table
from repro.discovery.api import discover_aods, discover_ods


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-discover",
        description="Discover (approximate) order dependencies in a CSV file.",
    )
    parser.add_argument("csv", nargs="?", help="input CSV file with a header row")
    parser.add_argument(
        "--demo", action="store_true",
        help="ignore the CSV argument and run on the paper's Table 1",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.1,
        help="approximation threshold in [0, 1] (default 0.1)",
    )
    parser.add_argument(
        "--exact", action="store_true",
        help="discover exact ODs only (threshold 0)",
    )
    parser.add_argument(
        "--validator", choices=("optimal", "iterative"), default="optimal",
        help="AOC validation algorithm (default: optimal)",
    )
    parser.add_argument(
        "--backend", choices=BACKEND_CHOICES, default=None,
        help="compute backend for encoding/partitions/validation "
             f"(default: ${BACKEND_ENV_VAR} if set, else auto)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard batched OC validation across N worker processes "
             "(default 1: in-process)",
    )
    parser.add_argument(
        "--no-batch", action="store_true",
        help="disable the level-synchronous batched validation scheduler "
             "(per-candidate reference path; identical results)",
    )
    parser.add_argument(
        "--attributes", nargs="*", default=None,
        help="restrict discovery to these attributes",
    )
    parser.add_argument(
        "--max-level", type=int, default=None,
        help="cap the lattice level (attribute-set size)",
    )
    parser.add_argument(
        "--max-rows", type=int, default=None,
        help="read at most this many rows from the CSV",
    )
    parser.add_argument(
        "--time-limit", type=float, default=None,
        help="wall-clock budget in seconds",
    )
    parser.add_argument(
        "--top", type=int, default=10,
        help="number of ranked dependencies to print (default 10)",
    )
    parser.add_argument(
        "--outliers", action="store_true",
        help="also print the most suspicious tuples",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.demo:
        relation = employee_salary_table()
    elif args.csv:
        relation = read_csv(args.csv, max_rows=args.max_rows)
    else:
        parser.print_usage(sys.stderr)
        print("error: provide a CSV file or --demo", file=sys.stderr)
        return 2

    try:
        result = _run_discovery(relation, args)
    except (RuntimeError, ValueError) as error:
        # e.g. an unknown REPRO_BACKEND value, or --backend numpy without
        # numpy installed: print the message instead of a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(result.summary())
    print()
    _print_ranked(result, relation, args)
    return 0


def _run_discovery(relation, args):
    if args.exact:
        return discover_ods(
            relation,
            attributes=args.attributes,
            max_level=args.max_level,
            time_limit_seconds=args.time_limit,
            backend=args.backend,
            batch_validation=not args.no_batch,
            num_workers=args.workers,
        )
    return discover_aods(
        relation,
        threshold=args.threshold,
        validator=args.validator,
        attributes=args.attributes,
        max_level=args.max_level,
        time_limit_seconds=args.time_limit,
        backend=args.backend,
        batch_validation=not args.no_batch,
        num_workers=args.workers,
    )


def _print_ranked(result, relation, args) -> None:
    print(f"Top {args.top} order compatibilities:")
    for found in result.ranked_ocs(args.top):
        print(f"  {found}")
    print()
    print(f"Top {args.top} order functional dependencies:")
    for found in result.ranked_ofds(args.top):
        print(f"  {found}")

    if args.outliers:
        report = detect_outliers(relation, result)
        print()
        print("Most suspicious tuples (row index, score):")
        for row, score in report.top(args.top):
            print(f"  row {row}: score={score:.3f}, values={relation.row(row)}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
