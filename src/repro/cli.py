"""Command-line interface: the ``repro`` subcommands.

A front-end over the session-oriented library API::

    repro discover data.csv --threshold 0.1 --attributes a b c
    repro discover data.csv --exact --max-level 4
    repro discover --demo                  # run on the paper's Table 1
    repro sweep data.csv --thresholds 0.05 0.1 0.15
    repro extend data.csv delta.csv --verify-cold
    repro serve data.csv other.csv --port 8080

``discover`` prints the discovery summary, the ranked dependencies and
(with ``--outliers``) the most suspicious tuples.  ``sweep`` runs one warm
:class:`~repro.discovery.session.Profiler` session across several
approximation thresholds (the paper's Exp-3 loop) and prints the series.
``extend`` demos evolving data: discover on the base CSV, append the delta
CSV rows and revalidate incrementally (see :mod:`repro.incremental`),
reporting revoked/added dependencies and, with ``--verify-cold``, checking
the result against a cold re-discovery.  ``serve`` exposes the same
sessions over stdlib HTTP (see :mod:`repro.service`).

The historical single-command form ``repro-discover data.csv ...`` keeps
working: an invocation whose first argument is not a subcommand is routed
to ``discover``.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.applications.outlier_detection import detect_outliers
from repro.backend import BACKEND_CHOICES, BACKEND_ENV_VAR
from repro.dataset.csv_io import read_csv
from repro.dataset.examples import employee_salary_table
from repro.discovery.config import PLAN_MODES, DiscoveryRequest
from repro.discovery.session import Profiler
from repro.obs import configure_logging
from repro.obs.log import ENV_VAR as LOG_LEVEL_ENV_VAR

#: The recognised subcommands (anything else is legacy ``discover`` syntax).
COMMANDS = ("discover", "sweep", "serve", "extend")


# -- parser construction ---------------------------------------------------------


def _dataset_options(parser: argparse.ArgumentParser, many: bool = False) -> None:
    if many:
        parser.add_argument(
            "csv", nargs="*",
            help="input CSV files with header rows (each becomes a dataset)",
        )
    else:
        parser.add_argument(
            "csv", nargs="?", help="input CSV file with a header row"
        )
    parser.add_argument(
        "--demo", action="store_true",
        help="ignore the CSV argument and run on the paper's Table 1",
    )
    parser.add_argument(
        "--max-rows", type=int, default=None,
        help="read at most this many rows from each CSV",
    )


def _engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", choices=BACKEND_CHOICES, default=None,
        help="compute backend for encoding/partitions/validation "
             f"(default: ${BACKEND_ENV_VAR} if set, else auto)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard batched OC validation across N worker processes "
             "(default 1: in-process)",
    )
    parser.add_argument(
        "--worker-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job deadline for worker validation shards; a job past it "
             "is treated as a worker death and recovered without changing "
             "results (default: wait indefinitely; only meaningful with "
             "--workers)",
    )
    parser.add_argument(
        "--no-batch", action="store_true",
        help="disable the level-synchronous batched validation scheduler "
             "(per-candidate reference path; identical results)",
    )
    parser.add_argument(
        "--no-pipeline", action="store_true",
        help="disable pipelined level validation (synchronous worker "
             "dispatch; identical results; only meaningful with --workers)",
    )
    parser.add_argument(
        "--plan", choices=PLAN_MODES, default="fixed",
        help="execution planning: 'auto' lets the adaptive planner pick "
             "workers/pipelining/shard sizes per level from a calibrated "
             "cost model (identical results); 'fixed' (default) runs "
             "exactly the configured knobs",
    )
    parser.add_argument(
        "--attributes", nargs="*", default=None,
        help="restrict discovery to these attributes",
    )
    parser.add_argument(
        "--max-level", type=int, default=None,
        help="cap the lattice level (attribute-set size)",
    )
    parser.add_argument(
        "--time-limit", type=float, default=None,
        help="wall-clock budget in seconds (per run)",
    )
    _log_level_option(parser)


def _log_level_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        help="emit structured logs at this level (DEBUG/INFO/WARNING/"
             f"ERROR; default: ${LOG_LEVEL_ENV_VAR} if set, else silent)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Discover (approximate) order dependencies in CSV files.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    discover = subparsers.add_parser(
        "discover", help="run one discovery and print ranked dependencies",
    )
    _dataset_options(discover)
    _engine_options(discover)
    discover.add_argument(
        "--threshold", type=float, default=0.1,
        help="approximation threshold in [0, 1] (default 0.1)",
    )
    discover.add_argument(
        "--exact", action="store_true",
        help="discover exact ODs only (threshold 0)",
    )
    discover.add_argument(
        "--validator", choices=("optimal", "iterative"), default="optimal",
        help="AOC validation algorithm (default: optimal)",
    )
    discover.add_argument(
        "--top", type=int, default=10,
        help="number of ranked dependencies to print (default 10)",
    )
    discover.add_argument(
        "--outliers", action="store_true",
        help="also print the most suspicious tuples",
    )
    discover.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a span trace of the run (coordinator phases plus "
             "worker-side shard kernels) and write it to PATH as "
             "Chrome-trace JSON (load in chrome://tracing or Perfetto); "
             "results are unaffected",
    )
    discover.set_defaults(func=_cmd_discover)

    sweep = subparsers.add_parser(
        "sweep",
        help="run one warm session across several thresholds (Exp-3 loop)",
    )
    _dataset_options(sweep)
    _engine_options(sweep)
    sweep.add_argument(
        "--thresholds", type=float, nargs="+", metavar="T",
        default=[0.0, 0.05, 0.10, 0.15, 0.20, 0.25],
        help="approximation thresholds to sweep (default: 0%% .. 25%%)",
    )
    sweep.add_argument(
        "--validator", choices=("optimal", "iterative"), default="optimal",
        help="AOC validation algorithm (default: optimal)",
    )
    sweep.set_defaults(func=_cmd_sweep)

    extend = subparsers.add_parser(
        "extend",
        help="discover on a base CSV, append a delta CSV, and revalidate "
             "incrementally (evolving-data demo)",
    )
    extend.add_argument(
        "csv", help="base CSV file with a header row"
    )
    extend.add_argument(
        "delta", help="CSV of rows to append (same attributes as the base)"
    )
    extend.add_argument(
        "--max-rows", type=int, default=None,
        help="read at most this many rows from each CSV",
    )
    _engine_options(extend)
    extend.add_argument(
        "--threshold", type=float, default=0.1,
        help="approximation threshold in [0, 1] (default 0.1)",
    )
    extend.add_argument(
        "--exact", action="store_true",
        help="discover exact ODs only (threshold 0)",
    )
    extend.add_argument(
        "--validator", choices=("optimal", "iterative"), default="optimal",
        help="AOC validation algorithm (default: optimal)",
    )
    extend.add_argument(
        "--verify-cold", action="store_true",
        help="also run a cold discovery over the concatenated table and "
             "assert the incremental result is identical",
    )
    extend.set_defaults(func=_cmd_extend)

    serve = subparsers.add_parser(
        "serve",
        help="serve discovery over HTTP, one warm session per dataset",
    )
    _dataset_options(serve, many=True)
    serve.add_argument(
        "--backend", choices=BACKEND_CHOICES, default=None,
        help="compute backend for every session",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes per session (default 1)",
    )
    serve.add_argument(
        "--worker-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job deadline for worker validation shards; a job past it "
             "is treated as a worker death and recovered (default: wait "
             "indefinitely)",
    )
    serve.add_argument(
        "--max-memo-entries", type=int, default=None, metavar="N",
        help="LRU bound on each session's validation memo "
             "(default: unbounded; evicted outcomes are recomputed)",
    )
    serve.add_argument(
        "--max-cached-partitions", type=int, default=None, metavar="N",
        help="LRU bound on each session's retained partition cache "
             "(default: unbounded; evicted partitions are rebuilt)",
    )
    _log_level_option(serve)
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="TCP port (0 picks a free port; default 8080)",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=None, metavar="SECONDS",
        help="per-connection socket timeout; a client that stops reading "
             "or writing past it is disconnected (default 300)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=None, metavar="N",
        help="admission queue depth per dataset; requests beyond it are "
             "rejected 429 with Retry-After (default 8)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="global cap on admitted requests (executing + queued); "
             "beyond it the server answers 503 (default 32)",
    )
    serve.add_argument(
        "--default-deadline", type=float, default=None, metavar="SECONDS",
        help="deadline applied to requests that do not send "
             "deadline_seconds (default: none)",
    )
    serve.add_argument(
        "--auth-token", default=None, metavar="TOKEN",
        help="bearer token required for dataset lifecycle endpoints "
             "(PUT/DELETE /datasets/<name>); defaults to the "
             "REPRO_SERVE_TOKEN environment variable",
    )
    serve.add_argument(
        "--dataset-ttl", type=float, default=None, metavar="SECONDS",
        help="evict uploaded (non-pinned) datasets idle longer than this "
             "(default: keep forever)",
    )
    serve.add_argument(
        "--grace-period", type=float, default=10.0, metavar="SECONDS",
        help="drain window for in-flight requests at shutdown before "
             "they are cancelled (default 10)",
    )
    serve.set_defaults(func=_cmd_serve)

    return parser


# -- entry point -----------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # Invoked through the historical ``repro-discover`` entry point, even
    # ``--help`` belongs to the discover command (its old flag listing);
    # under ``repro``, bare ``--help`` shows the subcommand overview.
    legacy_binary = sys.argv and Path(sys.argv[0]).name == "repro-discover"
    if not argv or (argv[0] not in COMMANDS
                    and (legacy_binary or argv[0] not in ("-h", "--help"))):
        # Legacy single-command form (the original ``repro-discover`` CLI);
        # a bare invocation gets discover's friendly missing-input error.
        argv = ["discover"] + argv
    elif argv[0] in COMMANDS and Path(argv[0]).is_file():
        # A file literally named like a subcommand: the subcommand wins,
        # but say so — the legacy form would have read the file.
        print(f"note: interpreting {argv[0]!r} as the subcommand; use "
              f"'repro discover {argv[0]}' or './{argv[0]}' to profile "
              "the file of that name", file=sys.stderr)
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        # No-op unless --log-level or $REPRO_LOG_LEVEL asks for output.
        configure_logging(getattr(args, "log_level", None))
    except ValueError as error:
        parser.error(str(error))

    try:
        return args.func(args)
    except (RuntimeError, ValueError, OSError) as error:
        # e.g. an unknown REPRO_BACKEND value, --backend numpy without
        # numpy installed, a missing CSV file, or a serve port already in
        # use: print the message instead of a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


# -- subcommand implementations ---------------------------------------------------


def _load_relation(args, parser_hint: str):
    if args.demo:
        return employee_salary_table()
    if args.csv:
        return read_csv(args.csv, max_rows=args.max_rows)
    print(f"usage hint: {parser_hint}", file=sys.stderr)
    print("error: provide a CSV file or --demo", file=sys.stderr)
    return None


def _session(relation, args, warm: bool = True) -> Profiler:
    # One-shot commands disable the warm caches: per-level partition
    # eviction keeps peak memory bounded exactly like the plain engine,
    # and a single-run memo would never be reused.
    return Profiler(
        relation, backend=args.backend, num_workers=args.workers,
        worker_timeout=args.worker_timeout,
        cache_validations=warm, retain_partitions=warm,
    )


def _request_from_args(args) -> DiscoveryRequest:
    """Build the discovery request shared by ``discover`` and ``extend``."""
    common = dict(
        attributes=args.attributes,
        max_level=args.max_level,
        time_limit_seconds=args.time_limit,
        batch_validation=not args.no_batch,
        num_workers=DiscoveryRequest.pin_workers(args.workers),
        pipeline_validation=not args.no_pipeline,
        worker_timeout=args.worker_timeout,
        plan=args.plan,
    )
    if args.exact:
        return DiscoveryRequest.exact(**common)
    return DiscoveryRequest.approximate(
        threshold=args.threshold, validator=args.validator, **common
    )


def _cmd_discover(args) -> int:
    relation = _load_relation(args, "repro discover [csv | --demo] ...")
    if relation is None:
        return 2
    request = _request_from_args(args)
    if args.trace:
        from repro.obs import Tracer, set_tracer

        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            with _session(relation, args, warm=False) as session:
                result = session.discover(request)
        finally:
            set_tracer(previous)
        spans = tracer.export(args.trace)
        print(f"trace: {spans} span(s) written to {args.trace} "
              "(Chrome-trace JSON; open in chrome://tracing or Perfetto)")
        print()
    else:
        with _session(relation, args, warm=False) as session:
            result = session.discover(request)

    print(result.summary())
    print()
    _print_ranked(result, relation, args)
    return 0


def _cmd_sweep(args) -> int:
    relation = _load_relation(args, "repro sweep [csv | --demo] --thresholds ...")
    if relation is None:
        return 2
    request = DiscoveryRequest(
        validator=args.validator,
        attributes=args.attributes,
        max_level=args.max_level,
        time_limit_seconds=args.time_limit,
        batch_validation=not args.no_batch,
        num_workers=DiscoveryRequest.pin_workers(args.workers),
        pipeline_validation=not args.no_pipeline,
        worker_timeout=args.worker_timeout,
        plan=args.plan,
    )
    start = time.perf_counter()
    with _session(relation, args) as session:
        results = session.sweep(args.thresholds, request=request)
        cache = session.cache_info()
    elapsed = time.perf_counter() - start

    from repro.benchlib.reporting import format_series_table

    print(format_series_table(
        "threshold",
        [f"{t:.0%}" for t in args.thresholds],
        {"seconds": [r.stats.total_seconds for r in results]},
        annotations={
            "#OCs": [r.num_ocs for r in results],
            "#OFDs": [r.num_ofds for r in results],
            "memo hits": [r.stats.validation_memo_hits for r in results],
        },
    ))
    print()
    print(f"Warm session: {len(args.thresholds)} thresholds in {elapsed:.3f}s "
          f"[{cache['backend']} backend, partition cache "
          f"{cache['hits']} hits / {cache['misses']} misses, "
          f"{cache['validation_memo_entries']} memoised validations]")
    return 0


def _cmd_extend(args) -> int:
    base = read_csv(args.csv, max_rows=args.max_rows)
    delta = read_csv(args.delta, max_rows=args.max_rows)
    if set(delta.attribute_names) != set(base.attribute_names):
        print(
            f"error: delta attributes {delta.attribute_names} do not match "
            f"base attributes {base.attribute_names}", file=sys.stderr,
        )
        return 2
    rows = delta.to_dicts()  # dict rows: column order may differ from base
    request = _request_from_args(args)

    with _session(base, args) as session:
        start = time.perf_counter()
        baseline = session.discover(request)
        baseline_seconds = time.perf_counter() - start

        start = time.perf_counter()
        summary = session.extend(rows)
        outcome = session.discover_incremental(request)
        # One timer across both: extend() already does repair work (kernel
        # calls on delta-touched classes), so splitting the two would
        # overstate the incremental win.
        incremental_seconds = time.perf_counter() - start

    result = outcome.result
    print(f"Baseline: {baseline.num_ocs} OCs, {baseline.num_ofds} OFDs over "
          f"{summary.old_num_rows} rows in {baseline_seconds:.3f}s")
    remapped = sorted(
        name for name, mode in summary.column_modes.items() if mode == "remapped"
    )
    print(f"Appended: {summary.num_appended} rows -> {summary.new_num_rows}; "
          f"{len(summary.affected_contexts)} contexts affected, "
          f"{summary.invalidated_memo_entries} memo entries invalidated, "
          f"{summary.retained_memo_entries} retained"
          + (f"; remapped columns: {remapped}" if remapped else ""))
    print(f"Incremental: {result.num_ocs} OCs, {result.num_ofds} OFDs in "
          f"{incremental_seconds:.3f}s including the append "
          f"({result.stats.validation_memo_hits} validations served from "
          "the memo)")
    for found in outcome.revoked_ocs + outcome.revoked_ofds:
        print(f"  revoked: {found}")
    for found in outcome.added_ocs + outcome.added_ofds:
        print(f"  added:   {found}")
    if not outcome.num_revoked and not outcome.num_added:
        print("  dependency set unchanged")

    if args.verify_cold:
        # Rebuild the concatenated table from the raw inputs: the session's
        # relation carries the delta-extended encoding (adopt_encoding), and
        # a verification run that reused it would hide encoding bugs and
        # skip the re-encoding cost a real cold run pays.
        from repro.dataset.relation import Relation

        concatenated = base.concat(Relation(
            base.schema,
            {name: delta.column(name) for name in base.attribute_names},
        ))
        start = time.perf_counter()
        with _session(concatenated, args, warm=False) as cold_session:
            cold = cold_session.discover(request)
        cold_seconds = time.perf_counter() - start
        if (cold.ocs, cold.ofds) != (result.ocs, result.ofds):
            print("error: incremental result differs from the cold "
                  "re-discovery", file=sys.stderr)
            return 1
        speedup = (cold_seconds / incremental_seconds
                   if incremental_seconds > 0 else float("inf"))
        print(f"Cold verification: identical result "
              f"({cold_seconds:.3f}s cold vs {incremental_seconds:.3f}s "
              f"incremental, {speedup:.2f}x)")
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import (
        DEFAULT_MAX_INFLIGHT,
        DEFAULT_QUEUE_DEPTH,
        ProfilerService,
        make_server,
    )

    auth_token = args.auth_token or os.environ.get("REPRO_SERVE_TOKEN") or None
    service = ProfilerService(
        backend=args.backend, num_workers=args.workers,
        worker_timeout=args.worker_timeout,
        max_memo_entries=args.max_memo_entries,
        max_cached_partitions=args.max_cached_partitions,
        queue_depth=(args.queue_depth if args.queue_depth is not None
                     else DEFAULT_QUEUE_DEPTH),
        max_inflight=(args.max_inflight if args.max_inflight is not None
                      else DEFAULT_MAX_INFLIGHT),
        default_deadline_seconds=args.default_deadline,
        auth_token=auth_token,
        dataset_ttl_seconds=args.dataset_ttl,
    )
    if args.demo:
        service.add_dataset("demo", employee_salary_table())
    for path in args.csv:
        # Dataset names come from the file stem; colliding stems (two
        # files named data.csv in different directories) get a numeric
        # suffix instead of refusing to start.
        stem = Path(path).stem
        name, n = stem, 2
        while name in service.dataset_names:
            name = f"{stem}-{n}"
            n += 1
        service.add_dataset(name, read_csv(path, max_rows=args.max_rows))
    if not service.dataset_names and auth_token is None:
        # With lifecycle auth configured, starting empty is fine: datasets
        # arrive over PUT /datasets/<name>.  Without it, an empty server
        # is almost certainly a typo'd invocation.
        print("error: provide at least one CSV file or --demo "
              "(or --auth-token to start empty and upload over HTTP)",
              file=sys.stderr)
        service.close()
        return 2

    server = make_server(service, host=args.host, port=args.port, quiet=False,
                         request_timeout=args.request_timeout)
    host, port = server.server_address[:2]
    print(f"repro serve: {len(service.dataset_names)} dataset(s) "
          f"{service.dataset_names} on http://{host}:{port}")
    print("endpoints: GET /healthz | GET /metrics | GET /datasets | "
          'POST /discover {"dataset": ..., "request": {...}, '
          '"stream": false, "deadline_seconds": ...} | '
          "POST /datasets/<name>/append "
          '{"rows": [...], "request": {...}} | '
          "PUT /datasets/<name> (csv or json upload) | "
          "DELETE /datasets/<name>")

    # serve_forever() must not run on the thread that later calls
    # shutdown(): BaseServer.shutdown() blocks until the serve loop
    # acknowledges, and a signal handler interrupting serve_forever's own
    # thread would deadlock.  So the accept loop lives on a worker thread
    # and the main thread sleeps on an Event that SIGINT/SIGTERM set.
    stop = threading.Event()

    def _request_stop(signum, frame):  # noqa: ARG001 - signal signature
        stop.set()

    previous_handlers = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        previous_handlers[signum] = signal.signal(signum, _request_stop)

    loop = threading.Thread(
        target=server.serve_forever, name="repro-serve-accept", daemon=True
    )
    loop.start()
    try:
        stop.wait()
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
        print("repro serve: draining "
              f"(grace {args.grace_period:.0f}s) ...")
        drained = server.shutdown_gracefully(grace_seconds=args.grace_period)
        loop.join(timeout=5.0)
        print("repro serve: shut down "
              + ("cleanly" if drained else "after cancelling in-flight work"))
    return 0


def _print_ranked(result, relation, args) -> None:
    print(f"Top {args.top} order compatibilities:")
    for found in result.ranked_ocs(args.top):
        print(f"  {found}")
    print()
    print(f"Top {args.top} order functional dependencies:")
    for found in result.ranked_ofds(args.top):
        print(f"  {found}")

    if args.outliers:
        report = detect_outliers(relation, result)
        print()
        print("Most suspicious tuples (row index, score):")
        for row, score in report.top(args.top):
            print(f"  row {row}: score={score:.3f}, values={relation.row(row)}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
