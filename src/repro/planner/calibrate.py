"""Micro-probes that seed the planner's cost model.

Calibration has to be *cheap* — it runs at session start, on the user's
clock — so each probe is a few milliseconds of synthetic work:

* :func:`probe_kernel_unit_seconds` times the backend's batched OC kernel
  on a fixed synthetic workload and divides by the workload's cost in the
  pool's ``m log m`` units.  Results are cached per backend name for the
  process lifetime (the kernel's throughput does not drift).
* :func:`probe_dispatch_overhead` round-trips one deliberately tiny shard
  through a live :class:`~repro.validation.distributed.ShardedValidationPool`
  (the plane-less path dispatches unconditionally, so the measurement is a
  true process round-trip).  Without a pool it falls back to a
  conservative default — overestimating dispatch cost only makes the
  planner more reluctant to parallelise, which is the safe direction.

Probes use deterministic synthetic data (no RNG): calibration must never
perturb result reproducibility, and the timings themselves are the only
nondeterminism allowed.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

from repro.backend import available_backends, resolve_backend

from .model import CostModel, cost_units

#: Fallback per-shard dispatch overhead when no pool exists to probe.
#: Deliberately high-side: a pickle + two queue hops + merge on a busy
#: host is a few milliseconds.
DEFAULT_DISPATCH_OVERHEAD_SECONDS = 3e-3

#: Synthetic probe workload shape: enough classes/rows that the kernel
#: time dominates call overhead, small enough to stay in the microsecond
#: to low-millisecond range per repetition.
PROBE_NUM_CLASSES = 48
PROBE_CLASS_SIZE = 32
PROBE_REPEATS = 3

_KERNEL_PROBE_CACHE: Dict[str, float] = {}


def _probe_workload(num_classes: int = PROBE_NUM_CLASSES,
                    class_size: int = PROBE_CLASS_SIZE):
    """Deterministic classes + rank-column pairs for the kernel probe.

    The ``b`` column is a fixed multiplicative scramble of row order, so
    the patience kernel does real work (nontrivial removal counts) rather
    than short-circuiting on already-sorted input.
    """
    num_rows = num_classes * class_size
    classes = [
        list(range(base, base + class_size))
        for base in range(0, num_rows, class_size)
    ]
    a = list(range(num_rows))
    b = [(row * 7919 + 13) % num_rows for row in range(num_rows)]
    pairs = [(a, b), (b, a)]
    units = sum(cost_units(class_size) for _ in classes) * len(pairs)
    return classes, pairs, units


def probe_kernel_unit_seconds(backend=None, force: bool = False) -> float:
    """Seconds per ``m log m`` cost unit for ``backend``'s batch kernel."""
    resolved = resolve_backend(backend)
    if not force and resolved.name in _KERNEL_PROBE_CACHE:
        return _KERNEL_PROBE_CACHE[resolved.name]
    classes, pairs, units = _probe_workload()
    native_pairs = [
        (resolved.to_native(a), resolved.to_native(b)) for a, b in pairs
    ]
    best = float("inf")
    for _ in range(PROBE_REPEATS):
        start = time.perf_counter()
        resolved.oc_optimal_removal_count_batch(classes, native_pairs, None)
        best = min(best, time.perf_counter() - start)
    unit_seconds = best / units
    _KERNEL_PROBE_CACHE[resolved.name] = unit_seconds
    return unit_seconds


def probe_backend_units() -> Dict[str, float]:
    """Kernel probe for every importable backend (for reporting)."""
    return {
        name: probe_kernel_unit_seconds(name)
        for name in available_backends()
    }


def probe_dispatch_overhead(pool=None) -> float:
    """Per-shard round-trip seconds through ``pool`` (fallback default).

    Uses the pool's plane-less :meth:`oc_counts_batch`, which dispatches
    every group regardless of size, with a single 8-row class — so the
    measured time is almost entirely transport, not kernel.
    """
    if pool is None or getattr(pool, "closed", True) \
            or getattr(pool, "degraded", False):
        return DEFAULT_DISPATCH_OVERHEAD_SECONDS
    classes = [list(range(8))]
    a = list(range(8))
    b = list(reversed(a))
    best = float("inf")
    try:
        for _ in range(PROBE_REPEATS):
            start = time.perf_counter()
            pool.oc_counts_batch(classes, [(a, b)], None)
            best = min(best, time.perf_counter() - start)
    except Exception:
        # A sick pool must not take the planner down with it; keep the
        # conservative default and let supervision deal with the pool.
        return DEFAULT_DISPATCH_OVERHEAD_SECONDS
    return best


def calibrate(backend=None, pool=None,
              cpu_count: Optional[int] = None) -> CostModel:
    """Assemble a :class:`CostModel` from the micro-probes."""
    resolved = resolve_backend(backend)
    per_backend = probe_backend_units()
    return CostModel(
        cpu_count=cpu_count if cpu_count is not None
        else (os.cpu_count() or 1),
        kernel_unit_seconds=per_backend.get(
            resolved.name, probe_kernel_unit_seconds(resolved)
        ),
        dispatch_overhead_seconds=probe_dispatch_overhead(pool),
        backend=resolved.name,
        backend_unit_seconds=per_backend,
    )


def preferred_backend(model: CostModel) -> str:
    """The backend the calibration ranked fastest (reported on
    ``/healthz``; execution stays on the session backend, whose results
    are byte-identical by the repo invariant)."""
    if not model.backend_unit_seconds:
        return model.backend
    return min(model.backend_unit_seconds.items(), key=lambda kv: kv[1])[0]
