"""Per-level execution plans and the planner that emits them.

:class:`ExecutionPlanner` is the session-lived brain: it holds one
calibrated :class:`~repro.planner.model.CostModel`, answers
``plan_level`` at each level boundary of a discovery run, and folds the
level's actual wall-clock back into the model via ``observe_level``.

Plans change *how* results are computed, never *what* is computed: every
strategy the planner can choose (in-process vs pooled, pipelined vs
synchronous, any shard composition) is already proven byte-identical by
the differential suites, so the planner needs no correctness reasoning —
only cost ranking.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs import get_logger, get_metrics

from .calibrate import calibrate, preferred_backend
from .model import CostModel

#: Decisions kept in the planner's rolling log (snapshot / ``/healthz``).
MAX_DECISION_LOG = 64

_log = get_logger("planner")


@dataclass(frozen=True)
class ExecutionPlan:
    """One level's execution strategy.

    ``use_workers`` is the headline decision; ``num_workers`` is the
    count the model recommended (1 when in-process).  ``min_shard_cost``
    and ``inline_group_cost`` override the pool's static floors for this
    level's submissions.  ``predicted_seconds`` is the model's forecast
    for the chosen strategy — recorded so predicted-vs-actual lands in
    :class:`~repro.discovery.stats.DiscoveryStatistics` per level.
    """

    level: int
    use_workers: bool
    num_workers: int
    pipeline: bool
    min_shard_cost: int
    inline_group_cost: int
    cost_units: float
    predicted_seconds: float
    reason: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "level": self.level,
            "use_workers": self.use_workers,
            "num_workers": self.num_workers,
            "pipeline": self.pipeline,
            "min_shard_cost": self.min_shard_cost,
            "inline_group_cost": self.inline_group_cost,
            "cost_units": round(self.cost_units, 1),
            "predicted_seconds": round(self.predicted_seconds, 6),
            "reason": self.reason,
        }


class ExecutionPlanner:
    """Session-lived strategy chooser backed by a calibrated cost model."""

    def __init__(
        self,
        model: CostModel,
        max_workers: int = 1,
        pipeline_requested: bool = True,
    ) -> None:
        self.model = model
        self.max_workers = max(1, int(max_workers))
        self.pipeline_requested = bool(pipeline_requested)
        self.created_at = time.time()
        self.decisions: List[Dict[str, object]] = []
        self.levels_planned = 0
        self.runs_observed = 0

    # -- planning ----------------------------------------------------------------

    def use_pool(self, num_workers: int) -> bool:
        """Whether a worker pool is worth *spawning* for a run at all.

        Run-scope degradation: on a host whose core count caps effective
        parallelism at 1, no level can ever profit from workers, so the
        engine should not pay the process spawns (let alone the per-shard
        round-trips).  With more cores the pool is spawned and the
        per-level :meth:`plan_level` decides whether each level uses it.
        """
        return self.model.effective_workers(num_workers) > 1

    def record_pool_veto(self, num_workers: int) -> Dict[str, object]:
        """Log the run-scope decision not to spawn a pool at all, so the
        degradation is visible in ``/healthz`` and the run's statistics
        (per-level plans afterwards just say "no pool")."""
        record: Dict[str, object] = {
            "level": None,
            "scope": "run",
            "use_workers": False,
            "num_workers": 1,
            "pipeline": False,
            "reason": (
                f"pool not spawned: {self.model.cpu_count} core(s) for "
                f"{num_workers} requested worker(s), parallelism cannot pay"
            ),
        }
        self.decisions.append(record)
        del self.decisions[:-MAX_DECISION_LOG]
        _log.info(
            "pool spawn vetoed: %s core(s) for %s requested worker(s)",
            self.model.cpu_count, num_workers,
        )
        get_metrics().counter("repro_planner_pool_vetoes_total").inc()
        return record

    def plan_level(
        self,
        level: int,
        cost_units: float,
        workers_available: bool = True,
    ) -> ExecutionPlan:
        """Choose the strategy for one level of ``cost_units`` work.

        ``workers_available`` is False when the run has no pool at all
        (``num_workers == 1`` configurations): the plan then only carries
        the floors and the in-process decision.
        """
        self.levels_planned += 1
        model = self.model
        ceiling = self.max_workers if workers_available else 1
        workers = model.recommend_workers(cost_units, ceiling)
        use_workers = workers > 1
        predicted = model.predict_seconds(cost_units, workers)
        if not workers_available:
            reason = "no pool in this configuration"
        elif not use_workers:
            serial = model.predict_serial_seconds(cost_units)
            parallel = model.predict_parallel_seconds(cost_units, ceiling)
            if model.effective_workers(ceiling) == 1:
                reason = (
                    f"degraded to in-process: {model.cpu_count} core(s), "
                    "parallelism cannot pay"
                )
            else:
                reason = (
                    f"in-process: serial {serial:.4f}s beats "
                    f"{ceiling}-worker {parallel:.4f}s at this level size"
                )
        else:
            reason = (
                f"{workers} worker(s): predicted {predicted:.4f}s vs "
                f"serial {model.predict_serial_seconds(cost_units):.4f}s"
            )
        return ExecutionPlan(
            level=level,
            use_workers=use_workers,
            num_workers=workers,
            pipeline=use_workers and self.pipeline_requested,
            min_shard_cost=model.min_shard_cost(),
            inline_group_cost=model.inline_group_cost(),
            cost_units=float(cost_units),
            predicted_seconds=predicted,
            reason=reason,
        )

    # -- feedback ----------------------------------------------------------------

    def observe_level(
        self, plan: ExecutionPlan, actual_seconds: float
    ) -> Dict[str, object]:
        """Fold a completed level back into the model; returns the
        decision record (plan + predicted-vs-actual) for the run's
        statistics."""
        if plan.use_workers:
            self.model.observe_parallel(
                plan.cost_units, actual_seconds, plan.num_workers
            )
        else:
            self.model.observe_serial(plan.cost_units, actual_seconds)
        record = plan.as_dict()
        record["actual_seconds"] = round(actual_seconds, 6)
        self.decisions.append(record)
        del self.decisions[:-MAX_DECISION_LOG]
        registry = get_metrics()
        if registry.enabled:
            registry.counter("repro_planner_levels_total").inc()
            registry.histogram("repro_planner_abs_error_seconds").observe(
                abs(actual_seconds - plan.predicted_seconds)
            )
        return record

    def observe_run(self, stats) -> None:
        """Fold a finished run's :class:`DiscoveryStatistics` into the
        model (currently the derived ``validation_share``)."""
        self.runs_observed += 1
        self.model.observe_validation_share(
            getattr(stats, "validation_share", None)
        )

    # -- reporting ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The ``/healthz`` planner block for one session."""
        return {
            "model": self.model.as_dict(),
            "preferred_backend": preferred_backend(self.model),
            "max_workers": self.max_workers,
            "pipeline_requested": self.pipeline_requested,
            "calibration_age_seconds": round(
                max(0.0, time.time() - self.created_at), 3
            ),
            "levels_planned": self.levels_planned,
            "runs_observed": self.runs_observed,
            "decisions": list(self.decisions[-8:]),
        }


def build_planner(
    backend=None,
    max_workers: int = 1,
    pipeline: bool = True,
    pool=None,
    model: Optional[CostModel] = None,
) -> ExecutionPlanner:
    """Calibrate (or accept) a cost model and wrap it in a planner."""
    if model is None:
        model = calibrate(backend=backend, pool=pool)
    return ExecutionPlanner(
        model, max_workers=max_workers, pipeline_requested=pipeline
    )
