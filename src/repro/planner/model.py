"""The planner's cost model: predict level wall-clock per strategy.

The model is deliberately tiny — three calibrated scalars plus the host's
core count — because its job is not to predict wall-clock precisely but to
rank execution strategies correctly:

``kernel_unit_seconds``
    Seconds the session backend spends per *cost unit* of validation work,
    where one candidate over one class of ``m`` rows costs
    ``m * (1 + bit_length(max(m, 2)))`` units — the same ``m log m``
    measure :mod:`repro.validation.distributed` uses to balance shards.
    Calibrated by a micro-probe at session start
    (:func:`repro.planner.calibrate.probe_kernel_unit_seconds`), refined
    by an EWMA over observed level timings as the run progresses.

``dispatch_overhead_seconds``
    Coordinator-side cost of one shard round-trip through the validation
    pool (pickle, queue, result merge).  Probed through a live pool when
    one exists, otherwise a conservative default.

``cpu_count``
    ``os.cpu_count()`` at calibration.  The *effective* parallelism of
    ``w`` workers is ``min(w, cpu_count)``: on a 1-core host every worker
    count collapses to serial-plus-overhead, which is exactly the measured
    inversion (w4 at ~0.52x of w1) the planner exists to avoid.

All predictions are monotone in the obvious directions: more cores never
makes a worker count look *less* profitable, and smaller levels never make
dispatch look *more* profitable, so the recommendation functions below are
safe to trust at the extremes (tiny levels always plan in-process; a
1-core host always degrades to serial).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

#: EWMA smoothing factor for online refinement: recent levels dominate but
#: a single noisy level cannot erase the calibration.
EWMA_ALPHA = 0.35

#: Floor for the calibrated scalars: a probe that measures ~0 (clock
#: granularity) must not make dispatch look free or kernels infinitely
#: fast.
MIN_KERNEL_UNIT_SECONDS = 1e-10
MIN_DISPATCH_OVERHEAD_SECONDS = 1e-4

#: How many dispatch overheads a shard's compute must amortise before the
#: planner considers the shard worth a process round-trip.
SHARD_PAYOFF_RATIO = 8.0

#: Groups cheaper than this many dispatch overheads run in-process even
#: when the level as a whole uses workers.
INLINE_PAYOFF_RATIO = 2.0


def cost_units(class_size: int) -> float:
    """Validation cost of one candidate over one class of ``class_size``
    rows, in the pool's ``m log m`` units (mirrors
    ``repro.validation.distributed._class_cost``)."""
    if class_size <= 0:
        return 0.0
    return float(class_size * (1 + max(class_size, 2).bit_length()))


@dataclass
class CostModel:
    """Calibrated throughput model for one session backend.

    ``kernel_unit_seconds`` may carry per-backend probes in
    ``backend_unit_seconds`` (used for reporting which backend the host
    favours); predictions always use the scalar for the session backend.
    """

    cpu_count: int
    kernel_unit_seconds: float
    dispatch_overhead_seconds: float
    backend: str = "python"
    #: Per-backend kernel probes from calibration (name -> unit seconds).
    backend_unit_seconds: Dict[str, float] = field(default_factory=dict)
    #: Multiplier mapping predicted validation seconds to level seconds:
    #: refined from the run's observed ``validation_share`` (validation is
    #: only part of a level — candidate generation and partition builds
    #: ride on top).
    overhead_factor: float = 1.0

    def __post_init__(self) -> None:
        self.cpu_count = max(1, int(self.cpu_count))
        self.kernel_unit_seconds = max(
            float(self.kernel_unit_seconds), MIN_KERNEL_UNIT_SECONDS
        )
        self.dispatch_overhead_seconds = max(
            float(self.dispatch_overhead_seconds),
            MIN_DISPATCH_OVERHEAD_SECONDS,
        )

    # -- predictions -------------------------------------------------------------

    def effective_workers(self, num_workers: int) -> int:
        """Workers that can actually run concurrently on this host."""
        return max(1, min(int(num_workers), self.cpu_count))

    def min_shard_cost(self) -> int:
        """Cost floor under which a shard cannot amortise its round-trip."""
        units = SHARD_PAYOFF_RATIO * self.dispatch_overhead_seconds \
            / self.kernel_unit_seconds
        return max(1, int(units))

    def inline_group_cost(self) -> int:
        """Cost floor under which a whole group should stay in-process."""
        units = INLINE_PAYOFF_RATIO * self.dispatch_overhead_seconds \
            / self.kernel_unit_seconds
        return max(1, int(units))

    def predict_serial_seconds(self, units: float) -> float:
        """Wall-clock of validating ``units`` of work in-process."""
        return units * self.kernel_unit_seconds * self.overhead_factor

    def estimate_shards(self, units: float, num_workers: int) -> int:
        """Shards the pool would plan for ``units`` at the model's floor."""
        by_cost = max(1, int(units // self.min_shard_cost()))
        return max(1, min(int(num_workers), by_cost))

    def predict_parallel_seconds(self, units: float, num_workers: int) -> float:
        """Wall-clock of validating ``units`` across ``num_workers``.

        Compute divides across *effective* workers only; every planned
        shard pays one dispatch round-trip on top.
        """
        effective = self.effective_workers(num_workers)
        shards = self.estimate_shards(units, num_workers)
        compute = units * self.kernel_unit_seconds / effective
        return compute * self.overhead_factor \
            + shards * self.dispatch_overhead_seconds

    def predict_seconds(self, units: float, num_workers: int) -> float:
        if num_workers <= 1:
            return self.predict_serial_seconds(units)
        return self.predict_parallel_seconds(units, num_workers)

    def recommend_workers(self, units: float, max_workers: int) -> int:
        """The worker count with the best predicted wall-clock.

        Returns 1 (in-process) unless some worker count is a strict
        improvement over serial: ties go to the simpler strategy, which is
        also what makes a simulated 1-core host always degrade (parallel
        there is serial plus dispatch overhead, never a strict win).
        """
        best_workers = 1
        best_seconds = self.predict_serial_seconds(units)
        for workers in range(2, max(1, int(max_workers)) + 1):
            seconds = self.predict_parallel_seconds(units, workers)
            if seconds < best_seconds:
                best_workers, best_seconds = workers, seconds
        return best_workers

    # -- online refinement -------------------------------------------------------

    def observe_serial(self, units: float, seconds: float) -> None:
        """Fold an observed in-process level into ``kernel_unit_seconds``."""
        if units <= 0 or seconds <= 0:
            return
        observed = seconds / (units * self.overhead_factor)
        self.kernel_unit_seconds = max(
            MIN_KERNEL_UNIT_SECONDS,
            (1.0 - EWMA_ALPHA) * self.kernel_unit_seconds
            + EWMA_ALPHA * observed,
        )
        self.backend_unit_seconds[self.backend] = self.kernel_unit_seconds

    def observe_parallel(
        self, units: float, seconds: float, num_workers: int
    ) -> None:
        """Fold an observed pooled level into the dispatch overhead.

        The kernel term is assumed calibrated; whatever wall-clock the
        prediction cannot explain is attributed to per-shard overhead.
        """
        if units <= 0 or seconds <= 0 or num_workers <= 1:
            return
        effective = self.effective_workers(num_workers)
        shards = self.estimate_shards(units, num_workers)
        compute = units * self.kernel_unit_seconds * self.overhead_factor \
            / effective
        residual = (seconds - compute) / shards
        observed = max(MIN_DISPATCH_OVERHEAD_SECONDS, residual)
        self.dispatch_overhead_seconds = max(
            MIN_DISPATCH_OVERHEAD_SECONDS,
            (1.0 - EWMA_ALPHA) * self.dispatch_overhead_seconds
            + EWMA_ALPHA * observed,
        )

    def observe_validation_share(self, share: Optional[float]) -> None:
        """Refine the validation-to-level overhead factor from a finished
        run's :attr:`DiscoveryStatistics.validation_share`."""
        if share is None or not 0.0 < share <= 1.0:
            return
        observed = 1.0 / max(share, 0.05)
        self.overhead_factor = (1.0 - EWMA_ALPHA) * self.overhead_factor \
            + EWMA_ALPHA * observed

    def as_dict(self) -> Dict[str, object]:
        return {
            "cpu_count": self.cpu_count,
            "backend": self.backend,
            "kernel_unit_seconds": self.kernel_unit_seconds,
            "dispatch_overhead_seconds": self.dispatch_overhead_seconds,
            "overhead_factor": round(self.overhead_factor, 4),
            "min_shard_cost": self.min_shard_cost(),
            "inline_group_cost": self.inline_group_cost(),
            "backend_unit_seconds": dict(self.backend_unit_seconds),
        }
