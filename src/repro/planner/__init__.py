"""Adaptive execution planner: the cost-model brain behind ``plan="auto"``.

The discovery stack exposes many performance knobs — backend, batched
scheduling, worker count, pipelining, shard cost floors — and the best
setting is host-dependent: ``BENCH_discovery.json`` documents that on a
1-core container four workers run at roughly half the speed of one.  This
package owns that decision end to end:

* :mod:`repro.planner.calibrate` — cheap micro-probes at session start
  (kernel throughput per backend, per-shard dispatch overhead through the
  column plane, ``os.cpu_count()``).
* :mod:`repro.planner.model` — the three-scalar cost model those probes
  seed, refined online from observed level timings and the finished run's
  ``validation_share``.
* :mod:`repro.planner.plan` — :class:`ExecutionPlan` (one level's
  strategy) and :class:`ExecutionPlanner` (the session-lived chooser the
  engine consults at every level boundary).

Plans never change *what* is computed — every strategy is byte-identical
by the repo's standing invariant — only how fast it runs.  Pin
``plan="fixed"`` (the default) to bypass the planner entirely.
"""

from .calibrate import (
    calibrate,
    preferred_backend,
    probe_dispatch_overhead,
    probe_kernel_unit_seconds,
)
from .model import CostModel, cost_units
from .plan import ExecutionPlan, ExecutionPlanner, build_planner

__all__ = [
    "CostModel",
    "ExecutionPlan",
    "ExecutionPlanner",
    "build_planner",
    "calibrate",
    "cost_units",
    "preferred_backend",
    "probe_dispatch_overhead",
    "probe_kernel_unit_seconds",
]
