"""The pure-Python reference backend.

Wraps the original row-at-a-time implementations — which remain in their
home modules (``dataset.encoding``, ``dataset.partition``, the validation
kernels) so they can keep being used and tested directly — behind the
:class:`~repro.backend.base.ComputeBackend` interface.  This backend *is*
the semantics the NumPy backend must reproduce byte-for-byte.

The kernel imports are deferred to call time: the validation modules import
``repro.backend`` for backend resolution, so importing them here at module
load would create a cycle.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.backend.base import ComputeBackend, EncodedColumn
from repro.dataset.partition import Partition
from repro.dataset.schema import AttributeType


class PythonBackend(ComputeBackend):
    """Reference backend: the original pure-Python hot paths."""

    name = "python"

    # -- columns ---------------------------------------------------------------

    def encode_column(
        self, values: Sequence[object], attr_type: AttributeType = AttributeType.STRING
    ) -> EncodedColumn:
        from repro.dataset.encoding import encode_column

        ranks, dictionary = encode_column(values, attr_type)
        return ranks, dictionary, None

    def to_native(self, ranks: Sequence[int]):
        return ranks if isinstance(ranks, list) else list(ranks)

    # -- partitions ------------------------------------------------------------

    def partition_single(self, native_ranks, num_rows: int) -> Partition:
        # The module-level builder, not Partition.single: the classmethod
        # routes through the *default* backend, which may not be this one.
        from repro.dataset.partition import build_partition_single

        return build_partition_single(native_ranks, num_rows)

    def partition_refine(self, partition: Partition, native_ranks) -> Partition:
        return partition.product(native_ranks)

    def partition_product(self, left: Partition, right: Partition) -> Partition:
        return left.product_partition(right)

    # -- exact checks ----------------------------------------------------------

    def oc_holds(self, classes, a_ranks, b_ranks) -> bool:
        from repro.validation.exact_oc import oc_holds_in_classes

        return oc_holds_in_classes(classes, a_ranks, b_ranks)

    def ofd_holds(self, classes, value_ranks) -> bool:
        from repro.validation.exact_ofd import ofd_holds_in_classes

        return ofd_holds_in_classes(classes, value_ranks)

    # -- removal-set kernels ---------------------------------------------------

    def oc_optimal_removal_rows(
        self, classes, a_ranks, b_ranks, limit: Optional[int] = None
    ) -> Tuple[List[int], bool]:
        from repro.validation.approx_oc_optimal import optimal_removal_rows

        return optimal_removal_rows(classes, a_ranks, b_ranks, limit)

    def oc_optimal_removal_count(
        self, classes, a_ranks, b_ranks, limit: Optional[int] = None
    ) -> Tuple[int, bool]:
        from repro.validation.approx_oc_optimal import optimal_removal_count

        return optimal_removal_count(classes, a_ranks, b_ranks, limit)

    def oc_greedy_removal_rows(
        self, classes, a_ranks, b_ranks, limit: Optional[int] = None
    ) -> Tuple[List[int], bool]:
        from repro.validation.approx_oc_iterative import iterative_removal_rows

        return iterative_removal_rows(classes, a_ranks, b_ranks, limit)

    def od_removal_rows(
        self, classes, a_ranks, b_ranks, limit: Optional[int] = None
    ) -> Tuple[List[int], bool]:
        from repro.validation.approx_od import od_removal_rows

        return od_removal_rows(classes, a_ranks, b_ranks, limit)

    def ofd_removal_rows(
        self, classes, value_ranks, limit: Optional[int] = None
    ) -> Tuple[List[int], bool]:
        from repro.validation.approx_ofd import aofd_removal_rows

        return aofd_removal_rows(classes, value_ranks, limit)

    # -- batched removal kernels ------------------------------------------------

    def oc_optimal_removal_count_batch(
        self, classes, rank_pairs, limit: Optional[int] = None
    ) -> List[Tuple[int, bool]]:
        # Reference semantics: the batch is exactly a loop of sequential
        # kernels, so each entry carries the sequential early-exit partials.
        from repro.validation.approx_oc_optimal import optimal_removal_count

        return [
            optimal_removal_count(classes, a_ranks, b_ranks, limit)
            for a_ranks, b_ranks in rank_pairs
        ]

    def ofd_removal_batch(
        self, classes, rhs_ranks, limit: Optional[int] = None
    ) -> List[Tuple[List[int], bool]]:
        from repro.validation.approx_ofd import aofd_removal_rows

        return [aofd_removal_rows(classes, ranks, limit) for ranks in rhs_ranks]
