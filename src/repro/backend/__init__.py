"""Pluggable columnar compute backends (see :mod:`repro.backend.base`).

Backend selection
-----------------

Every entry point that touches a hot path accepts a ``backend`` argument:
a :class:`ComputeBackend` instance, a registry name (``"python"`` /
``"numpy"``), ``"auto"`` or ``None``.  Resolution order:

1. an explicit instance or name wins;
2. ``None`` defers to the ``REPRO_BACKEND`` environment variable;
3. unset (or ``"auto"``) picks NumPy when it is importable, else Python.

NumPy is an *optional* dependency: the package imports and runs fully
without it, and requesting ``"numpy"`` on a machine without NumPy raises a
clear error instead of an import crash at startup.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Union

from repro.backend.base import ComputeBackend

#: Values accepted by ``DiscoveryConfig.backend`` and the CLI ``--backend``.
BACKEND_CHOICES = ("auto", "python", "numpy")

#: Environment variable consulted when no backend is requested explicitly.
BACKEND_ENV_VAR = "REPRO_BACKEND"

_instances: Dict[str, ComputeBackend] = {}

BackendSpec = Union[None, str, ComputeBackend]


def _numpy_importable() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def available_backends() -> List[str]:
    """Names of the backends usable in this environment."""
    names = ["python"]
    if _numpy_importable():
        names.append("numpy")
    return names


def default_backend_name() -> str:
    """The backend name used when nothing is requested explicitly.

    Honours ``REPRO_BACKEND``; otherwise ``auto`` semantics (NumPy when
    available, Python otherwise).
    """
    requested = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
    if requested and requested != "auto":
        return requested
    return "numpy" if _numpy_importable() else "python"


def get_backend(name: str) -> ComputeBackend:
    """Return the (singleton) backend registered under ``name``."""
    name = name.strip().lower()
    if name == "auto":
        name = "numpy" if _numpy_importable() else "python"
    cached = _instances.get(name)
    if cached is not None:
        return cached
    if name == "python":
        from repro.backend.python_backend import PythonBackend

        backend: ComputeBackend = PythonBackend()
    elif name == "numpy":
        if not _numpy_importable():
            raise RuntimeError(
                "the 'numpy' compute backend was requested but numpy is not "
                "installed; install the optional dependency (pip install "
                "'.[numpy]') or select --backend python"
            )
        from repro.backend.numpy_backend import NumpyBackend

        backend = NumpyBackend()
    else:
        raise ValueError(
            f"unknown compute backend {name!r}; expected one of {BACKEND_CHOICES}"
        )
    _instances[name] = backend
    return backend


def resolve_backend(spec: BackendSpec = None) -> ComputeBackend:
    """Resolve a backend spec (instance, name, ``"auto"`` or ``None``)."""
    if isinstance(spec, ComputeBackend):
        return spec
    if spec is None:
        return get_backend(default_backend_name())
    return get_backend(spec)


__all__ = [
    "BACKEND_CHOICES",
    "BACKEND_ENV_VAR",
    "BackendSpec",
    "ComputeBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "resolve_backend",
]
