"""The :class:`ComputeBackend` interface.

The discovery framework spends essentially all of its time in three hot
paths: order-preserving dictionary encoding, stripped-partition
construction/refinement (the TANE-style PLI machinery) and the per-class
LNDS removal-set kernels.  Each of those admits two interchangeable
implementations:

* :class:`~repro.backend.python_backend.PythonBackend` wraps the original
  pure-Python row-at-a-time code and serves as the reference semantics;
* :class:`~repro.backend.numpy_backend.NumpyBackend` keeps rank columns as
  dense ``int32`` arrays and replaces the per-row loops with vectorised
  sorts, groupings and batched kernels.

Both implementations must be observationally identical: the same
:class:`~repro.dataset.partition.Partition` classes, the same removal rows
in the same order, the same early-exit points under a removal budget.  The
differential tests in ``tests/backend`` enforce this on full discovery
runs, so downstream layers may pick a backend purely on speed.

A backend also defines the *native* representation of a rank column (a
plain ``list`` for Python, an ``int32`` ``ndarray`` for NumPy).  Kernels
accept native columns; :meth:`ComputeBackend.to_native` converts on the
boundary for callers that hold canonical lists.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

from repro.dataset.partition import Partition
from repro.dataset.schema import AttributeType

#: ``(ranks, dictionary, native_column)`` as returned by ``encode_column``.
#: ``ranks`` is the canonical plain-list representation used by
#: backend-agnostic code; ``native_column`` is the backend's columnar form
#: of the same data, or ``None`` when the canonical list *is* native.  A
#: backend may return ``ranks=None`` together with a native column, in
#: which case :class:`~repro.dataset.encoding.EncodedRelation` derives the
#: canonical list lazily on first access.
EncodedColumn = Tuple[Optional[List[int]], List[object], object]


class ComputeBackend(abc.ABC):
    """Columnar compute kernels behind the discovery framework's hot paths."""

    #: Registry name (``"python"`` / ``"numpy"``).
    name: str = "abstract"

    # -- columns ---------------------------------------------------------------

    @abc.abstractmethod
    def encode_column(
        self, values: Sequence[object], attr_type: AttributeType = AttributeType.STRING
    ) -> EncodedColumn:
        """Dictionary-encode one raw column into dense order-preserving ranks.

        Must reproduce :func:`repro.dataset.encoding.encode_column` exactly,
        including ``NULLS FIRST`` and the handling of dirty mixed-type data.
        """

    @abc.abstractmethod
    def to_native(self, ranks: Sequence[int]):
        """Convert a rank column to this backend's native representation."""

    # -- partitions ------------------------------------------------------------

    def partition_unit(self, num_rows: int) -> Partition:
        """Partition of the empty attribute set (one class with every row).

        Backends may override to build the CSR arrays in their native
        representation so cached partitions stay representation-uniform.
        """
        return Partition.unit(num_rows)

    @abc.abstractmethod
    def partition_single(self, native_ranks, num_rows: int) -> Partition:
        """Build the stripped partition of a single encoded column."""

    def partition_from_row_keys(
        self, keys: Sequence[Tuple[int, ...]], num_rows: int
    ) -> Partition:
        """Group rows with equal key tuples into a stripped partition."""
        from repro.dataset.partition import build_partition_from_row_keys

        return build_partition_from_row_keys(keys, num_rows)

    @abc.abstractmethod
    def partition_refine(self, partition: Partition, native_ranks) -> Partition:
        """Refine ``Pi_X`` by an encoded column: ``Pi_{X ∪ {A}}``."""

    @abc.abstractmethod
    def partition_product(self, left: Partition, right: Partition) -> Partition:
        """Compute ``Pi_{X ∪ Y}`` from two stripped partitions."""

    # -- exact checks ----------------------------------------------------------

    @abc.abstractmethod
    def oc_holds(self, classes: Sequence[Sequence[int]], a_ranks, b_ranks) -> bool:
        """Exact OC check (no swap in any context class)."""

    @abc.abstractmethod
    def ofd_holds(self, classes: Sequence[Sequence[int]], value_ranks) -> bool:
        """Exact OFD check (RHS constant within every context class)."""

    # -- batched exact checks ----------------------------------------------------
    #
    # Like the batched removal kernels below, these serve the level-synchronous
    # scheduler: all exact candidates sharing a context are checked through one
    # call, so the context's columnar view and sort infrastructure are paid
    # once per group.  Entry ``i`` of the result aligns with input ``i`` and
    # must equal the corresponding single-candidate check exactly.

    def oc_holds_batch(
        self,
        classes: Sequence[Sequence[int]],
        rank_pairs: Sequence[Tuple[object, object]],
    ) -> List[bool]:
        """Exact OC checks for many ``(A, B)`` rank-column pairs sharing one
        context."""
        return [self.oc_holds(classes, a_ranks, b_ranks)
                for a_ranks, b_ranks in rank_pairs]

    def ofd_holds_batch(
        self,
        classes: Sequence[Sequence[int]],
        rhs_ranks: Sequence[object],
    ) -> List[bool]:
        """Exact OFD checks for many RHS rank columns sharing one context."""
        return [self.ofd_holds(classes, ranks) for ranks in rhs_ranks]

    # -- removal-set kernels ---------------------------------------------------

    @abc.abstractmethod
    def oc_optimal_removal_rows(
        self,
        classes: Sequence[Sequence[int]],
        a_ranks,
        b_ranks,
        limit: Optional[int] = None,
    ) -> Tuple[List[int], bool]:
        """Algorithm 2's minimal AOC removal rows over all context classes."""

    @abc.abstractmethod
    def oc_optimal_removal_count(
        self,
        classes: Sequence[Sequence[int]],
        a_ranks,
        b_ranks,
        limit: Optional[int] = None,
    ) -> Tuple[int, bool]:
        """Size of the minimal AOC removal set (count-only fast path)."""

    @abc.abstractmethod
    def oc_greedy_removal_rows(
        self,
        classes: Sequence[Sequence[int]],
        a_ranks,
        b_ranks,
        limit: Optional[int] = None,
    ) -> Tuple[List[int], bool]:
        """Algorithm 1's greedy (non-minimal) AOC removal rows.

        The greedy baseline is row-at-a-time on every backend; callers
        should pass canonical rank lists (native arrays are accepted but
        converted).
        """

    @abc.abstractmethod
    def od_removal_rows(
        self,
        classes: Sequence[Sequence[int]],
        a_ranks,
        b_ranks,
        limit: Optional[int] = None,
    ) -> Tuple[List[int], bool]:
        """Minimal removal rows for a canonical AOD ``X: A ↦→ B``."""

    @abc.abstractmethod
    def ofd_removal_rows(
        self,
        classes: Sequence[Sequence[int]],
        value_ranks,
        limit: Optional[int] = None,
    ) -> Tuple[List[int], bool]:
        """Minimal removal rows for an approximate OFD."""

    # -- batched removal kernels -------------------------------------------------
    #
    # The level-synchronous scheduler groups all surviving candidates of a
    # lattice level by context and dispatches each group through one call, so
    # the context's partition, columnar view and sort infrastructure are paid
    # once per group instead of once per candidate.  The defaults below loop
    # over the single-candidate kernels; backends override them with genuinely
    # batched implementations.
    #
    # Parity contract for both batch kernels: entry ``i`` of the result aligns
    # with input ``i``.  The ``exceeded`` flag must be *exact* (``True`` iff
    # the candidate's full removal set is larger than ``limit``), and whenever
    # ``exceeded`` is ``False`` the reported count/rows must be byte-identical
    # to the corresponding single-candidate kernel.  When ``exceeded`` is
    # ``True`` a batched implementation may abandon the candidate mid-kernel,
    # so the partial count is only guaranteed to be *some* value above
    # ``limit`` — the sequential kernels' class-by-class partial is not
    # reproduced.  Discovery only consumes ``(valid, size-if-valid)``, which
    # is identical either way.

    def oc_optimal_removal_count_batch(
        self,
        classes: Sequence[Sequence[int]],
        rank_pairs: Sequence[Tuple[object, object]],
        limit: Optional[int] = None,
    ) -> List[Tuple[int, bool]]:
        """Minimal AOC removal counts for many ``(A, B)`` rank-column pairs
        sharing one context (Algorithm 2, batched across candidates)."""
        return [
            self.oc_optimal_removal_count(classes, a_ranks, b_ranks, limit)
            for a_ranks, b_ranks in rank_pairs
        ]

    def ofd_removal_batch(
        self,
        classes: Sequence[Sequence[int]],
        rhs_ranks: Sequence[object],
        limit: Optional[int] = None,
    ) -> List[Tuple[List[int], bool]]:
        """Minimal AOFD removal rows for many RHS rank columns sharing one
        context (the TANE ``g3`` kernel, batched across candidates)."""
        return [self.ofd_removal_rows(classes, ranks, limit) for ranks in rhs_ranks]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"
