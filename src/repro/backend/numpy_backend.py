"""The NumPy columnar backend.

Rank columns are dense ``int32`` arrays; the hot loops become vectorised
array operations:

* encoding via ``np.unique(return_inverse=True)`` on clean homogeneous
  columns (dirty mixed-type columns fall back to the reference encoder, so
  the semantics — including first-appearance tie-breaks for values whose
  sort keys collide — are preserved exactly);
* partition construction/refinement via stable argsort / lexsort over rank
  columns, splitting on group boundaries;
* the LNDS removal-set kernels order *all* equivalence classes of a context
  with one ``lexsort`` and then run the (inherently sequential) patience
  step per class through the exact same :mod:`repro.validation.lnds`
  routines the reference backend uses, so the chosen subsequence — and
  therefore the removal rows — are identical by construction.

Parity contract: every method returns the same values, in the same order,
with the same early-exit points as :class:`PythonBackend`.  One documented
exception: for float columns containing both ``-0.0`` and ``0.0`` the
*representative* stored in the decode dictionary may differ (the ranks are
still identical); such columns behave identically in all discovery and
validation code, which only ever touches ranks.
"""

from __future__ import annotations

from itertools import chain
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.backend.base import ComputeBackend, EncodedColumn
from repro.dataset.partition import Partition
from repro.dataset.schema import AttributeType

#: Largest magnitude at which ``float(int)`` is still injective; beyond it
#: the reference encoder's float sort keys collide and break ties by first
#: appearance, which a numeric sort cannot reproduce — so we fall back.
_FLOAT_SAFE_INT = 1 << 53

_NUMERIC_TYPES = (AttributeType.INTEGER, AttributeType.FLOAT)


def _empty_partition(num_rows: int) -> Partition:
    """A classless partition with array-typed CSR storage."""
    return Partition.from_csr(
        np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64), num_rows
    )


class NumpyBackend(ComputeBackend):
    """Vectorised backend over ``int32`` rank arrays."""

    name = "numpy"

    # -- columns ---------------------------------------------------------------

    def to_native(self, ranks: Sequence[int]):
        if isinstance(ranks, np.ndarray):
            return ranks
        return np.asarray(ranks, dtype=np.int32)

    def encode_column(
        self, values: Sequence[object], attr_type: AttributeType = AttributeType.STRING
    ) -> EncodedColumn:
        encoded = self._encode_fast(values, attr_type)
        if encoded is not None:
            return encoded
        from repro.dataset.encoding import encode_column

        ranks, dictionary = encode_column(values, attr_type)
        return ranks, dictionary, np.asarray(ranks, dtype=np.int32)

    def _encode_fast(self, values: Sequence[object], attr_type) -> Optional[EncodedColumn]:
        """Vectorised encoding for homogeneous columns; ``None`` → fall back.

        The reference encoder sorts by per-type sort keys with equality
        dedup and first-appearance tie-breaks.  Those semantics reduce to a
        plain value sort exactly when the column is homogeneously typed
        (all ``int``, all ``float`` or all ``str`` — ``bool`` excluded
        because ``True == 1`` merges across types) and the sort key is
        injective on the values (no NaN, ints within float precision).
        """
        all_int = all_float = all_str = True
        present: List[object] = []
        for value in values:
            if value is None:
                continue
            kind = type(value)
            if kind is int:
                all_float = all_str = False
            elif kind is float:
                all_int = all_str = False
            elif kind is str:
                all_int = all_float = False
                if "\0" in value:
                    # NumPy's fixed-width unicode dtype ignores trailing NUL
                    # characters in comparisons, which would merge strings
                    # the reference encoder keeps distinct.
                    return None
            else:
                return None
            if not (all_int or all_float or all_str):
                return None
            present.append(value)
        if not present:
            return None  # empty / all-None columns: let the reference handle it
        if all_int and attr_type in _NUMERIC_TYPES:
            try:
                array = np.array(present, dtype=np.int64)
            except OverflowError:
                return None
            if int(np.abs(array).max()) >= _FLOAT_SAFE_INT:
                return None
        elif all_float and attr_type in _NUMERIC_TYPES:
            array = np.array(present, dtype=np.float64)
            if np.isnan(array).any():
                return None
        elif all_str and attr_type not in _NUMERIC_TYPES:
            array = np.array(present, dtype=np.str_)
        else:
            return None  # type/declared-type mismatch: reference coercion rules apply
        uniques, inverse = np.unique(array, return_inverse=True)
        inverse = inverse.astype(np.int32).reshape(-1)
        if len(present) == len(values):
            native = inverse
            dictionary = uniques.tolist()
        else:
            mask = np.fromiter(
                (v is not None for v in values), dtype=bool, count=len(values)
            )
            native = np.zeros(len(values), dtype=np.int32)
            native[mask] = inverse + 1
            dictionary = [None] + uniques.tolist()
        # ranks=None: the canonical list is derived lazily from `native` by
        # EncodedRelation on first access, so hot paths that only touch the
        # columnar form never pay for a Python list.
        return None, dictionary, native

    # -- partitions ------------------------------------------------------------

    def partition_unit(self, num_rows: int) -> Partition:
        if num_rows <= 1:
            return _empty_partition(num_rows)
        return Partition.from_csr(
            np.arange(num_rows, dtype=np.int64),
            np.array([0, num_rows], dtype=np.int64),
            num_rows,
        )

    def partition_single(self, native_ranks, num_rows: int) -> Partition:
        ranks = self.to_native(native_ranks)
        if ranks.size == 0:
            return _empty_partition(num_rows)
        order = np.argsort(ranks, kind="stable")
        return self._csr_partition(
            order, (ranks[order].astype(np.int64),), num_rows
        )

    def partition_from_row_keys(self, keys, num_rows: int) -> Partition:
        try:
            key_matrix = np.asarray(keys, dtype=np.int64)
        except (TypeError, ValueError, OverflowError):
            key_matrix = None
        if key_matrix is None or key_matrix.ndim != 2:
            # Ragged / non-integer keys: reference dict grouping.
            return super().partition_from_row_keys(keys, num_rows)
        if key_matrix.shape[0] == 0:
            return _empty_partition(num_rows)
        if key_matrix.shape[1] == 0:
            return self.partition_unit(num_rows)
        # lexsort keys last-first: reverse so the first tuple element is the
        # most significant (any consistent total order groups equal tuples,
        # but this keeps the sort deterministic and cache-friendly).
        columns = tuple(key_matrix[:, i] for i in range(key_matrix.shape[1]))
        order = np.lexsort(columns[::-1])
        return self._csr_partition(
            order, tuple(column[order] for column in columns), num_rows
        )

    def partition_refine(self, partition: Partition, native_ranks) -> Partition:
        ranks = self.to_native(native_ranks)
        if partition.num_classes == 0:
            return _empty_partition(partition.num_rows)
        rows, class_ids, _ = self._columnar_classes(partition)
        values = ranks[rows].astype(np.int64)
        order = np.lexsort((values, class_ids))
        return self._csr_partition(
            rows[order], (class_ids[order], values[order]), partition.num_rows
        )

    def partition_product(self, left: Partition, right: Partition) -> Partition:
        if left.num_rows != right.num_rows:
            raise ValueError("partitions are over relations of different sizes")
        if left.num_classes == 0 or right.num_classes == 0:
            return _empty_partition(left.num_rows)
        class_of = np.full(left.num_rows, -1, dtype=np.int64)
        right_rows, right_ids, _ = self._columnar_classes(right)
        class_of[right_rows] = right_ids
        rows, class_ids, _ = self._columnar_classes(left)
        other = class_of[rows]
        grouped = other >= 0  # singletons of `right` stay singletons in the product
        rows, class_ids, other = rows[grouped], class_ids[grouped], other[grouped]
        if rows.size == 0:
            return _empty_partition(left.num_rows)
        order = np.lexsort((other, class_ids))
        return self._csr_partition(
            rows[order], (class_ids[order], other[order]), left.num_rows
        )

    @staticmethod
    def _columnar_classes(classes) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flatten a class container into ``(rows, class_ids, lengths)`` arrays.

        :class:`Partition` objects already hold the flat CSR layout, so the
        columnar view is derived from the offset arrays with no per-class
        Python objects; the result is cached on the partition because
        candidates share contexts heavily during the level-wise search.
        Objects exposing a ``columnar_view()`` (e.g. the worker-side
        :class:`~repro.validation.distributed.ClassShard`) hand over their
        pre-flattened arrays directly; raw lists of row lists (kernel inputs
        from the repair path) are concatenated.
        """
        if isinstance(classes, Partition):
            cached = classes._columnar
            if cached is not None:
                return cached
            rows = classes.row_indices
            offsets = classes.class_offsets
            rows = (
                rows.astype(np.int64, copy=False)
                if isinstance(rows, np.ndarray)
                else np.asarray(rows, dtype=np.int64)
            )
            offsets = (
                offsets
                if isinstance(offsets, np.ndarray)
                else np.asarray(offsets, dtype=np.int64)
            )
            lengths = np.diff(offsets)
            class_ids = np.repeat(
                np.arange(lengths.size, dtype=np.int64), lengths
            )
            columnar = (rows, class_ids, lengths)
            classes._columnar = columnar
            return columnar
        if hasattr(classes, "columnar_view"):
            return classes.columnar_view()
        class_lists = list(classes)
        lengths = np.fromiter(
            (len(c) for c in class_lists), dtype=np.int64, count=len(class_lists)
        )
        total = int(lengths.sum())
        rows = np.fromiter(chain.from_iterable(class_lists), dtype=np.int64, count=total)
        class_ids = np.repeat(np.arange(len(class_lists), dtype=np.int64), lengths)
        return rows, class_ids, lengths

    @staticmethod
    def _csr_partition(
        sorted_rows: np.ndarray, key_arrays, num_rows: int
    ) -> Partition:
        """Partition from key-sorted rows: split at key changes, keep
        segments of size ≥ 2, reorder by first row, lay out flat CSR.

        Never materialises per-class Python lists: segments are selected
        and reordered with one gather over the flat row array.
        """
        n = sorted_rows.size
        change = np.zeros(n - 1, dtype=bool)
        for key in key_arrays:
            change |= np.diff(key) != 0
        boundaries = np.concatenate(([0], np.nonzero(change)[0] + 1, [n]))
        lengths = np.diff(boundaries)
        keep = lengths >= 2
        lengths = lengths[keep]
        if lengths.size == 0:
            return _empty_partition(num_rows)
        starts = boundaries[:-1][keep]
        # Segments come out in key order; the canonical layout orders
        # classes by their (unique) first row.
        order = np.argsort(sorted_rows[starts], kind="stable")
        starts, lengths = starts[order], lengths[order]
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        flat = np.repeat(starts - offsets[:-1], lengths) + np.arange(
            int(offsets[-1])
        )
        return Partition.from_csr(
            sorted_rows[flat].astype(np.int64, copy=False), offsets, num_rows
        )

    # -- shared kernel plumbing ------------------------------------------------

    def _sorted_class_segments(self, classes, a_ranks, b_ranks, descending_b: bool):
        """One ``lexsort`` over all classes → per-class ``(rows, b_values)``.

        Classes come back in input order, each ordered by ``[A ASC, B ASC]``
        (or ``B DESC`` ties when ``descending_b``), with ties falling back
        to ascending row order — matching the stable reference sorts.
        """
        a = self.to_native(a_ranks)
        b = self.to_native(b_ranks)
        rows, class_ids, lengths = self._columnar_classes(classes)
        a_values = a[rows]
        b_values = b[rows].astype(np.int64)
        # Fold (class, A) into one int64 key: ranks are non-negative and
        # bounded by the row count, so class_id * (max_a + 1) + a cannot
        # overflow and sorts exactly like the (class, A) pair.
        combined = class_ids * (int(a_values.max(initial=0)) + 1) + a_values
        tie_break = -b_values if descending_b else b_values
        order = np.lexsort((tie_break, combined))
        rows_sorted = rows[order]
        b_sorted = b_values[order]
        offsets = np.concatenate(([0], np.cumsum(lengths))).tolist()
        for i in range(lengths.size):
            start, end = offsets[i], offsets[i + 1]
            yield rows_sorted[start:end], b_sorted[start:end]

    def _lnds_removal_rows(
        self, classes, a_ranks, b_ranks, limit: Optional[int], descending_b: bool
    ) -> Tuple[List[int], bool]:
        from repro.validation.lnds import lnds_indices

        if not len(classes):
            return [], False
        removal: List[int] = []
        for seg_rows, seg_values in self._sorted_class_segments(
            classes, a_ranks, b_ranks, descending_b
        ):
            # Clean classes (the common case during discovery) have a fully
            # non-decreasing projection: the LNDS is the whole class and the
            # removal contribution is empty — no need to run the patience DP.
            if seg_values.size < 2 or bool(np.all(np.diff(seg_values) >= 0)):
                continue
            values = seg_values.tolist()
            kept = set(lnds_indices(values))
            removal.extend(
                row
                for position, row in enumerate(seg_rows.tolist())
                if position not in kept
            )
            if limit is not None and len(removal) > limit:
                return removal, True
        return removal, False

    # -- exact checks ----------------------------------------------------------

    def oc_holds(self, classes, a_ranks, b_ranks) -> bool:
        if not len(classes):
            return True
        a = self.to_native(a_ranks)
        b = self.to_native(b_ranks)
        rows, class_ids, lengths = self._columnar_classes(classes)
        a_values = a[rows]
        b_values = b[rows].astype(np.int64)
        combined = class_ids * (int(a_values.max(initial=0)) + 1) + a_values
        order = np.lexsort((b_values, combined))
        b_sorted = b_values[order]
        interior = self._interior_mask(lengths)
        return bool(np.all(np.diff(b_sorted)[interior] >= 0))

    def ofd_holds(self, classes, value_ranks) -> bool:
        if not len(classes):
            return True
        ranks = self.to_native(value_ranks)
        rows, _, lengths = self._columnar_classes(classes)
        values = ranks[rows].astype(np.int64)
        interior = self._interior_mask(lengths)
        return bool(np.all(np.diff(values)[interior] == 0))

    def oc_holds_batch(self, classes, rank_pairs) -> List[bool]:
        """Batched exact OC checks: one shared context, many rank pairs.

        The context's columnar view and interior mask are built once; per
        pair one fused-key sort orders every class and a single vectorised
        comparison detects any in-class descent — the same screening the
        batched count kernel runs, without the LNDS step.
        """
        num_pairs = len(rank_pairs)
        if num_pairs == 0:
            return []
        if not len(classes):
            return [True] * num_pairs
        rows, class_ids, lengths = self._columnar_classes(classes)
        if rows.size == 0:
            return [True] * num_pairs
        interior = self._interior_mask(lengths)
        results: List[bool] = []
        for a_ranks, b_ranks in rank_pairs:
            a_values = self.to_native(a_ranks)[rows].astype(np.int64)
            b_values = self.to_native(b_ranks)[rows].astype(np.int64)
            b_sorted = self._fused_b_sorted(
                lengths.size, class_ids, a_values, b_values
            )
            results.append(bool(np.all(np.diff(b_sorted)[interior] >= 0)))
        return results

    def ofd_holds_batch(self, classes, rhs_ranks) -> List[bool]:
        """Batched exact OFD checks: one shared context, many RHS columns.

        All RHS columns are stacked into one value matrix and the
        constant-within-class test runs over every column at once.
        """
        num_rhs = len(rhs_ranks)
        if num_rhs == 0:
            return []
        if not len(classes):
            return [True] * num_rhs
        rows, _, lengths = self._columnar_classes(classes)
        if rows.size < 2:
            return [True] * num_rhs
        # Gather each column down to the grouped rows *before* stacking:
        # stripped partitions usually cover a fraction of the table.
        values = np.stack(
            [self.to_native(ranks)[rows] for ranks in rhs_ranks]
        ).astype(np.int64)
        changed = (values[:, 1:] != values[:, :-1]) & self._interior_mask(
            lengths
        )[None, :]
        return [not bool(flag) for flag in np.any(changed, axis=1)]

    @staticmethod
    def _interior_mask(lengths: np.ndarray) -> np.ndarray:
        """Adjacent-pair mask that is ``False`` across class boundaries.

        Classes are concatenated contiguously, so the pair at flat position
        ``cumsum(lengths) - 1`` straddles two classes.
        """
        total = int(lengths.sum())
        interior = np.ones(max(total - 1, 0), dtype=bool)
        if lengths.size > 1:
            interior[np.cumsum(lengths)[:-1] - 1] = False
        return interior

    @staticmethod
    def _fused_b_sorted(
        num_classes: int, class_ids: np.ndarray,
        a_values: np.ndarray, b_values: np.ndarray,
    ) -> np.ndarray:
        """The ``B`` projection of every class ordered by ``[class, A ASC,
        B ASC]``.

        Counts and holds checks never need row identities, so the
        ``(class, A, B)`` triple is fused into one int64 key and
        value-sorted — cheaper than a two-pass lexsort followed by a
        gather.  Falls back to the lexsort when the fused key would
        overflow."""
        a_base = int(a_values.max(initial=0)) + 1
        b_base = int(b_values.max(initial=0)) + 1
        if num_classes * a_base * b_base < 1 << 62:
            key = (class_ids * a_base + a_values) * b_base + b_values
            key.sort()
            return key % b_base
        combined = class_ids * a_base + a_values  # pragma: no cover - needs ~2^62 keys
        order = np.lexsort((b_values, combined))
        return b_values[order]

    # -- removal-set kernels ---------------------------------------------------

    def oc_optimal_removal_rows(
        self, classes, a_ranks, b_ranks, limit: Optional[int] = None
    ) -> Tuple[List[int], bool]:
        return self._lnds_removal_rows(classes, a_ranks, b_ranks, limit,
                                       descending_b=False)

    def oc_optimal_removal_count(
        self, classes, a_ranks, b_ranks, limit: Optional[int] = None
    ) -> Tuple[int, bool]:
        """Count-only Algorithm 2 through the batched screening machinery.

        One fused-key sort orders every class and a single vectorised pass
        finds the *dirty* classes; the patience step then runs only on
        those, in class order.  Clean classes contribute zero removals, so
        the count observed at every early-exit check — and therefore the
        exceeded partial — is identical to the reference kernel's
        class-by-class accumulation.  (This is what makes the per-candidate
        NumPy schedule competitive: the previous per-class ``np.diff``
        screening loop drowned small classes in array overhead.)
        """
        from repro.validation.lnds import lnds_length

        if not len(classes):
            return 0, False
        rows, class_ids, lengths = self._columnar_classes(classes)
        if rows.size == 0:
            return 0, False
        a_values = self.to_native(a_ranks)[rows].astype(np.int64)
        b_values = self.to_native(b_ranks)[rows].astype(np.int64)
        b_sorted = self._fused_b_sorted(
            lengths.size, class_ids, a_values, b_values
        )
        starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        viol = np.zeros(b_sorted.size, dtype=bool)
        viol[:-1] = (np.diff(b_sorted) < 0) & self._interior_mask(lengths)
        dirty = np.add.reduceat(viol, starts) > 0
        if not dirty.any():
            return 0, False
        ends = starts + lengths
        count = 0
        for index in np.nonzero(dirty)[0]:
            values = b_sorted[starts[index]:ends[index]].tolist()
            count += len(values) - lnds_length(values)
            if limit is not None and count > limit:
                return count, True
        return count, False

    def oc_greedy_removal_rows(
        self, classes, a_ranks, b_ranks, limit: Optional[int] = None
    ) -> Tuple[List[int], bool]:
        # Algorithm 1 is the paper's quadratic baseline; its per-removal
        # update loop is inherently sequential, so it runs through the
        # reference implementation on materialised lists.
        from repro.validation.approx_oc_iterative import iterative_removal_rows

        return iterative_removal_rows(
            classes, self._as_list(a_ranks), self._as_list(b_ranks), limit
        )

    def od_removal_rows(
        self, classes, a_ranks, b_ranks, limit: Optional[int] = None
    ) -> Tuple[List[int], bool]:
        return self._lnds_removal_rows(classes, a_ranks, b_ranks, limit,
                                       descending_b=True)

    # -- batched removal kernels ------------------------------------------------

    #: Dirty segments longer than this bypass the padded patience DP: on one
    #: huge class the vectorised per-element binary search cannot beat the
    #: scalar C-level ``bisect`` loop, and the DP's step count is the longest
    #: segment, so one skewed class would stall every other lane.
    _DP_MAX_SEGMENT = 2048
    #: Minimum lanes per padded-DP call; below this the setup cost dominates.
    _DP_MIN_SEGMENTS = 32

    def oc_optimal_removal_count_batch(
        self, classes, rank_pairs, limit: Optional[int] = None
    ) -> List[Tuple[int, bool]]:
        """Batched Algorithm 2 counts: one shared context, many rank pairs.

        Per pair, one ``lexsort`` orders every class and a single vectorised
        pass finds the *dirty* classes (those whose ``B`` projection is not
        already non-decreasing — during discovery the vast majority are
        clean and contribute nothing).  The dirty segments of **all** pairs
        are then pushed through the segmented multi-class LNDS kernel
        together, so the patience step advances every class of every
        candidate simultaneously instead of looping per class in Python.
        """
        num_pairs = len(rank_pairs)
        if num_pairs == 0:
            return []
        if not len(classes):
            return [(0, False)] * num_pairs
        rows, class_ids, lengths = self._columnar_classes(classes)
        if rows.size == 0:
            return [(0, False)] * num_pairs
        starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        interior = self._interior_mask(lengths)
        counts = np.zeros(num_pairs, dtype=np.int64)
        exceeded = np.zeros(num_pairs, dtype=bool)
        seg_chunks: List[np.ndarray] = []
        len_chunks: List[np.ndarray] = []
        owner_chunks: List[np.ndarray] = []
        for pair_id, (a_ranks, b_ranks) in enumerate(rank_pairs):
            a_values = self.to_native(a_ranks)[rows].astype(np.int64)
            b_values = self.to_native(b_ranks)[rows].astype(np.int64)
            b_sorted = self._fused_b_sorted(
                lengths.size, class_ids, a_values, b_values
            )
            # One pass over all classes: a class is dirty iff it has an
            # in-class descent (boundary pairs are masked by `interior`).
            viol = np.zeros(b_sorted.size, dtype=bool)
            viol[:-1] = (np.diff(b_sorted) < 0) & interior
            dirty = np.add.reduceat(viol, starts) > 0
            if not dirty.any():
                continue
            seg_chunks.append(b_sorted[np.repeat(dirty, lengths)])
            dirty_lengths = lengths[dirty]
            len_chunks.append(dirty_lengths)
            owner_chunks.append(np.full(dirty_lengths.size, pair_id, dtype=np.int64))
        if seg_chunks:
            self._segmented_lnds_counts(
                np.concatenate(seg_chunks),
                np.concatenate(len_chunks),
                np.concatenate(owner_chunks),
                counts,
                exceeded,
                limit,
            )
        return [(int(c), bool(e)) for c, e in zip(counts, exceeded)]

    def _segmented_lnds_counts(
        self,
        seg_values: np.ndarray,
        seg_lengths: np.ndarray,
        seg_owners: np.ndarray,
        counts: np.ndarray,
        exceeded: np.ndarray,
        limit: Optional[int],
    ) -> None:
        """Removal counts for many dirty segments, accumulated per owner.

        ``seg_values`` concatenates the ``[A ASC, B ASC]``-sorted ``B``
        projections of every dirty segment; ``seg_lengths`` / ``seg_owners``
        describe them.  ``length - LNDS(length)`` is added into ``counts``
        indexed by owner.  Once an owner provably exceeds ``limit`` its
        ``exceeded`` flag is set, its count is pinned to ``limit + 1`` and
        its remaining segments are abandoned (see the contract in base.py).

        Segments are bucketed by length magnitude: short, numerous buckets
        run through the padded multi-lane patience DP; long or lonely ones
        fall back to the scalar ``bisect`` loop, which wins on big classes.
        Ascending bucket order lets cheap segments trigger the early exit
        before any expensive lane starts.
        """
        from repro.validation.lnds import lnds_length

        offsets = np.concatenate(([0], np.cumsum(seg_lengths)))
        # frexp's exponent is the bit length, i.e. the power-of-two bucket;
        # within a bucket max/min length differ by at most 2x, so no lane
        # idles through a long tail of steps sized by one skewed segment.
        buckets = np.frexp(seg_lengths.astype(np.float64))[1]
        for bucket in np.unique(buckets):
            members = np.nonzero(buckets == bucket)[0]
            members = members[~exceeded[seg_owners[members]]]
            if members.size == 0:
                continue
            max_len = int(seg_lengths[members].max())
            if members.size >= self._DP_MIN_SEGMENTS and max_len <= self._DP_MAX_SEGMENT:
                self._padded_patience_counts(
                    seg_values, offsets, members, seg_lengths, seg_owners,
                    counts, exceeded, limit,
                )
            else:
                for i in members:
                    owner = seg_owners[i]
                    if exceeded[owner]:
                        continue
                    values = seg_values[offsets[i]:offsets[i + 1]].tolist()
                    counts[owner] += len(values) - lnds_length(values)
                    if limit is not None and counts[owner] > limit:
                        exceeded[owner] = True
        if limit is not None:
            exceeded |= counts > limit

    def _padded_patience_counts(
        self,
        seg_values: np.ndarray,
        offsets: np.ndarray,
        members: np.ndarray,
        seg_lengths: np.ndarray,
        seg_owners: np.ndarray,
        counts: np.ndarray,
        exceeded: np.ndarray,
        limit: Optional[int],
    ) -> None:
        """One patience pass advancing all member segments simultaneously.

        Lane ``i`` holds one segment; at step ``t`` every active lane
        inserts its ``t``-th value into its tails row via a vectorised
        right-bisect, so the Python-level iteration count is the longest
        segment length instead of the total element count.
        """
        lengths = seg_lengths[members].astype(np.int64)
        owners = seg_owners[members]
        num = members.size
        max_len = int(lengths.max())
        total = int(lengths.sum())
        lane_idx = np.repeat(np.arange(num, dtype=np.int64), lengths)
        first = np.cumsum(lengths) - lengths
        col_idx = np.arange(total, dtype=np.int64) - np.repeat(first, lengths)
        flat = np.repeat(offsets[members], lengths) + col_idx
        padded = np.zeros((num, max_len), dtype=np.int64)
        padded[lane_idx, col_idx] = seg_values[flat]
        sentinel = np.iinfo(np.int64).max
        tails = np.full((num, max_len), sentinel, dtype=np.int64)
        tail_len = np.zeros(num, dtype=np.int64)
        alive = np.ones(num, dtype=bool)
        for t in range(max_len):
            act = np.nonzero(alive & (lengths > t))[0]
            if act.size == 0:
                break
            v = padded[act, t]
            # Vectorised bisect_right over each lane's tails[0:tail_len):
            # first position whose tail is strictly greater than v.
            lo = np.zeros(act.size, dtype=np.int64)
            hi = tail_len[act].copy()
            while True:
                open_ = lo < hi
                if not open_.any():
                    break
                mid = (lo + hi) >> 1
                right = open_ & (tails[act, np.minimum(mid, max_len - 1)] <= v)
                lo = np.where(right, mid + 1, lo)
                hi = np.where(open_ & ~right, mid, hi)
            tails[act, lo] = v
            tail_len[act] = np.maximum(tail_len[act], lo + 1)
            if limit is not None:
                # Lower bound on each lane's final removals: of the t+1
                # values consumed, at most tail_len are on any LNDS.  Owners
                # whose accumulated bound crosses the budget are certainly
                # invalid — retire all their lanes now.
                bound = np.minimum(lengths, t + 1) - tail_len
                pending = np.bincount(
                    owners[alive], weights=bound[alive], minlength=counts.size
                ).astype(np.int64)
                over = (counts + pending > limit) & ~exceeded
                if over.any():
                    exceeded |= over
                    counts[over] = limit + 1
                    alive &= ~exceeded[owners]
        if alive.any():
            removals = (lengths - tail_len)[alive]
            counts += np.bincount(
                owners[alive], weights=removals, minlength=counts.size
            ).astype(np.int64)

    def ofd_removal_batch(
        self, classes, rhs_ranks, limit: Optional[int] = None
    ) -> List[Tuple[List[int], bool]]:
        """Batched ``g3`` kernel: one shared context, many RHS columns.

        All RHS columns are stacked into one ``(num_rhs, total)`` value
        matrix and the per-class most-frequent-value selection (with the
        reference first-occurrence tie-break) runs over every column at
        once; only the final per-column row extraction loops in Python.
        """
        num_rhs = len(rhs_ranks)
        if num_rhs == 0:
            return []
        if not len(classes):
            return [([], False)] * num_rhs
        rows, class_ids, lengths = self._columnar_classes(classes)
        if rows.size == 0:
            return [([], False)] * num_rhs
        total = rows.size
        num_classes = lengths.size
        starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        stacked = np.stack([self.to_native(ranks) for ranks in rhs_ranks])
        values = stacked[:, rows].astype(np.int64)
        base = int(values.max()) + 1 if values.size else 1
        # Distinct (rhs, class, value) triples get distinct keys, so one
        # np.unique counts the frequencies of every column's class/value
        # combinations in a single sort.
        keys = (
            class_ids + np.arange(num_rhs, dtype=np.int64)[:, None] * num_classes
        ) * base + values
        _, inverse, key_counts = np.unique(
            keys.ravel(), return_inverse=True, return_counts=True
        )
        flat_counts = key_counts[inverse.reshape(-1)]
        flat_starts = (
            np.arange(num_rhs, dtype=np.int64)[:, None] * total + starts[None, :]
        ).ravel()
        lengths_tiled = np.tile(lengths, num_rhs)
        class_max = np.maximum.reduceat(flat_counts, flat_starts)
        positions = np.tile(np.arange(total, dtype=np.int64), num_rhs)
        candidates = np.where(
            flat_counts == np.repeat(class_max, lengths_tiled), positions, total
        )
        first_best = np.minimum.reduceat(candidates, flat_starts)
        keep_values = values[
            np.repeat(np.arange(num_rhs, dtype=np.int64), num_classes), first_best
        ]
        removal_mask = (
            values.ravel() != np.repeat(keep_values, lengths_tiled)
        ).reshape(num_rhs, total)
        results: List[Tuple[List[int], bool]] = []
        for r in range(num_rhs):
            mask = removal_mask[r]
            removed_per_class = np.add.reduceat(mask.astype(np.int64), starts)
            cumulative = np.cumsum(removed_per_class)
            if limit is not None and cumulative[-1] > int(limit):
                crossing = int(np.argmax(cumulative > int(limit)))
                cut = int(starts[crossing] + lengths[crossing])
                results.append((rows[:cut][mask[:cut]].tolist(), True))
            else:
                results.append((rows[mask].tolist(), False))
        return results

    def ofd_removal_rows(
        self, classes, value_ranks, limit: Optional[int] = None
    ) -> Tuple[List[int], bool]:
        if not len(classes):
            return [], False
        ranks = self.to_native(value_ranks)
        rows, class_ids, lengths = self._columnar_classes(classes)
        values = ranks[rows].astype(np.int64)
        starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        # Per-row frequency of (class, value), then per class keep the value
        # with the highest frequency, ties broken by first occurrence within
        # the class — exactly Counter.most_common(1)'s insertion-order rule.
        keys = class_ids * (int(values.max()) + 1 if values.size else 1) + values
        _, inverse, counts = np.unique(keys, return_inverse=True, return_counts=True)
        row_counts = counts[inverse.reshape(-1)]
        class_max = np.maximum.reduceat(row_counts, starts)
        positions = np.arange(rows.size, dtype=np.int64)
        candidates = np.where(row_counts == np.repeat(class_max, lengths),
                              positions, rows.size)
        first_best = np.minimum.reduceat(candidates, starts)
        keep_values = values[first_best]
        removal_mask = values != np.repeat(keep_values, lengths)
        removed_per_class = np.add.reduceat(removal_mask.astype(np.int64), starts)
        cumulative = np.cumsum(removed_per_class)
        if limit is not None and cumulative[-1] > int(limit):
            crossing = int(np.argmax(cumulative > int(limit)))
            cut = int(starts[crossing] + lengths[crossing])
            return rows[:cut][removal_mask[:cut]].tolist(), True
        return rows[removal_mask].tolist(), False

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _as_list(ranks) -> List[int]:
        if isinstance(ranks, np.ndarray):
            return ranks.tolist()
        return ranks if isinstance(ranks, list) else list(ranks)
