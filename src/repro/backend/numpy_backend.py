"""The NumPy columnar backend.

Rank columns are dense ``int32`` arrays; the hot loops become vectorised
array operations:

* encoding via ``np.unique(return_inverse=True)`` on clean homogeneous
  columns (dirty mixed-type columns fall back to the reference encoder, so
  the semantics — including first-appearance tie-breaks for values whose
  sort keys collide — are preserved exactly);
* partition construction/refinement via stable argsort / lexsort over rank
  columns, splitting on group boundaries;
* the LNDS removal-set kernels order *all* equivalence classes of a context
  with one ``lexsort`` and then run the (inherently sequential) patience
  step per class through the exact same :mod:`repro.validation.lnds`
  routines the reference backend uses, so the chosen subsequence — and
  therefore the removal rows — are identical by construction.

Parity contract: every method returns the same values, in the same order,
with the same early-exit points as :class:`PythonBackend`.  One documented
exception: for float columns containing both ``-0.0`` and ``0.0`` the
*representative* stored in the decode dictionary may differ (the ranks are
still identical); such columns behave identically in all discovery and
validation code, which only ever touches ranks.
"""

from __future__ import annotations

from itertools import chain
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.backend.base import ComputeBackend, EncodedColumn
from repro.dataset.partition import Partition
from repro.dataset.schema import AttributeType

#: Largest magnitude at which ``float(int)`` is still injective; beyond it
#: the reference encoder's float sort keys collide and break ties by first
#: appearance, which a numeric sort cannot reproduce — so we fall back.
_FLOAT_SAFE_INT = 1 << 53

_NUMERIC_TYPES = (AttributeType.INTEGER, AttributeType.FLOAT)


class NumpyBackend(ComputeBackend):
    """Vectorised backend over ``int32`` rank arrays."""

    name = "numpy"

    # -- columns ---------------------------------------------------------------

    def to_native(self, ranks: Sequence[int]):
        if isinstance(ranks, np.ndarray):
            return ranks
        return np.asarray(ranks, dtype=np.int32)

    def encode_column(
        self, values: Sequence[object], attr_type: AttributeType = AttributeType.STRING
    ) -> EncodedColumn:
        encoded = self._encode_fast(values, attr_type)
        if encoded is not None:
            return encoded
        from repro.dataset.encoding import encode_column

        ranks, dictionary = encode_column(values, attr_type)
        return ranks, dictionary, np.asarray(ranks, dtype=np.int32)

    def _encode_fast(self, values: Sequence[object], attr_type) -> Optional[EncodedColumn]:
        """Vectorised encoding for homogeneous columns; ``None`` → fall back.

        The reference encoder sorts by per-type sort keys with equality
        dedup and first-appearance tie-breaks.  Those semantics reduce to a
        plain value sort exactly when the column is homogeneously typed
        (all ``int``, all ``float`` or all ``str`` — ``bool`` excluded
        because ``True == 1`` merges across types) and the sort key is
        injective on the values (no NaN, ints within float precision).
        """
        all_int = all_float = all_str = True
        present: List[object] = []
        for value in values:
            if value is None:
                continue
            kind = type(value)
            if kind is int:
                all_float = all_str = False
            elif kind is float:
                all_int = all_str = False
            elif kind is str:
                all_int = all_float = False
                if "\0" in value:
                    # NumPy's fixed-width unicode dtype ignores trailing NUL
                    # characters in comparisons, which would merge strings
                    # the reference encoder keeps distinct.
                    return None
            else:
                return None
            if not (all_int or all_float or all_str):
                return None
            present.append(value)
        if not present:
            return None  # empty / all-None columns: let the reference handle it
        if all_int and attr_type in _NUMERIC_TYPES:
            try:
                array = np.array(present, dtype=np.int64)
            except OverflowError:
                return None
            if int(np.abs(array).max()) >= _FLOAT_SAFE_INT:
                return None
        elif all_float and attr_type in _NUMERIC_TYPES:
            array = np.array(present, dtype=np.float64)
            if np.isnan(array).any():
                return None
        elif all_str and attr_type not in _NUMERIC_TYPES:
            array = np.array(present, dtype=np.str_)
        else:
            return None  # type/declared-type mismatch: reference coercion rules apply
        uniques, inverse = np.unique(array, return_inverse=True)
        inverse = inverse.astype(np.int32).reshape(-1)
        if len(present) == len(values):
            native = inverse
            dictionary = uniques.tolist()
        else:
            mask = np.fromiter(
                (v is not None for v in values), dtype=bool, count=len(values)
            )
            native = np.zeros(len(values), dtype=np.int32)
            native[mask] = inverse + 1
            dictionary = [None] + uniques.tolist()
        # ranks=None: the canonical list is derived lazily from `native` by
        # EncodedRelation on first access, so hot paths that only touch the
        # columnar form never pay for a Python list.
        return None, dictionary, native

    # -- partitions ------------------------------------------------------------

    def partition_single(self, native_ranks, num_rows: int) -> Partition:
        ranks = self.to_native(native_ranks)
        if ranks.size == 0:
            return Partition([], num_rows)
        order = np.argsort(ranks, kind="stable")
        return Partition(
            self._split_segments(order, (ranks[order].astype(np.int64),)), num_rows
        )

    def partition_refine(self, partition: Partition, native_ranks) -> Partition:
        ranks = self.to_native(native_ranks)
        if not partition.classes:
            return Partition([], partition.num_rows)
        rows, class_ids, _ = self._columnar_classes(partition)
        values = ranks[rows].astype(np.int64)
        order = np.lexsort((values, class_ids))
        rows_sorted = rows[order]
        return Partition(
            self._split_segments(rows_sorted, (class_ids[order], values[order])),
            partition.num_rows,
        )

    def partition_product(self, left: Partition, right: Partition) -> Partition:
        if left.num_rows != right.num_rows:
            raise ValueError("partitions are over relations of different sizes")
        if not left.classes or not right.classes:
            return Partition([], left.num_rows)
        class_of = np.full(left.num_rows, -1, dtype=np.int64)
        right_rows, right_ids, _ = self._columnar_classes(right)
        class_of[right_rows] = right_ids
        rows, class_ids, _ = self._columnar_classes(left)
        other = class_of[rows]
        grouped = other >= 0  # singletons of `right` stay singletons in the product
        rows, class_ids, other = rows[grouped], class_ids[grouped], other[grouped]
        if rows.size == 0:
            return Partition([], left.num_rows)
        order = np.lexsort((other, class_ids))
        return Partition(
            self._split_segments(rows[order], (class_ids[order], other[order])),
            left.num_rows,
        )

    @staticmethod
    def _columnar_classes(classes) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flatten class row-lists into ``(rows, class_ids, lengths)`` arrays.

        When ``classes`` is a :class:`Partition` the result is cached on the
        partition object: candidates share contexts heavily during the
        level-wise search, so the concatenation cost is paid once per
        context instead of once per candidate.
        """
        if isinstance(classes, Partition):
            cached = classes._columnar
            if cached is not None:
                return cached
            class_lists = classes.classes
        else:
            class_lists = list(classes)
        lengths = np.fromiter(
            (len(c) for c in class_lists), dtype=np.int64, count=len(class_lists)
        )
        total = int(lengths.sum())
        rows = np.fromiter(chain.from_iterable(class_lists), dtype=np.int64, count=total)
        class_ids = np.repeat(np.arange(len(class_lists), dtype=np.int64), lengths)
        columnar = (rows, class_ids, lengths)
        if isinstance(classes, Partition):
            classes._columnar = columnar
        return columnar

    @staticmethod
    def _split_segments(sorted_rows: np.ndarray, key_arrays) -> List[List[int]]:
        """Split ``sorted_rows`` at key changes; keep segments of size ≥ 2."""
        n = sorted_rows.size
        change = np.zeros(n - 1, dtype=bool)
        for key in key_arrays:
            change |= np.diff(key) != 0
        boundaries = np.concatenate(([0], np.nonzero(change)[0] + 1, [n]))
        classes: List[List[int]] = []
        for i in range(boundaries.size - 1):
            start, end = int(boundaries[i]), int(boundaries[i + 1])
            if end - start >= 2:
                classes.append(sorted_rows[start:end].tolist())
        return classes

    # -- shared kernel plumbing ------------------------------------------------

    def _sorted_class_segments(self, classes, a_ranks, b_ranks, descending_b: bool):
        """One ``lexsort`` over all classes → per-class ``(rows, b_values)``.

        Classes come back in input order, each ordered by ``[A ASC, B ASC]``
        (or ``B DESC`` ties when ``descending_b``), with ties falling back
        to ascending row order — matching the stable reference sorts.
        """
        a = self.to_native(a_ranks)
        b = self.to_native(b_ranks)
        rows, class_ids, lengths = self._columnar_classes(classes)
        a_values = a[rows]
        b_values = b[rows].astype(np.int64)
        # Fold (class, A) into one int64 key: ranks are non-negative and
        # bounded by the row count, so class_id * (max_a + 1) + a cannot
        # overflow and sorts exactly like the (class, A) pair.
        combined = class_ids * (int(a_values.max(initial=0)) + 1) + a_values
        tie_break = -b_values if descending_b else b_values
        order = np.lexsort((tie_break, combined))
        rows_sorted = rows[order]
        b_sorted = b_values[order]
        offsets = np.concatenate(([0], np.cumsum(lengths))).tolist()
        for i in range(lengths.size):
            start, end = offsets[i], offsets[i + 1]
            yield rows_sorted[start:end], b_sorted[start:end]

    def _lnds_removal_rows(
        self, classes, a_ranks, b_ranks, limit: Optional[int], descending_b: bool
    ) -> Tuple[List[int], bool]:
        from repro.validation.lnds import lnds_indices

        if not len(classes):
            return [], False
        removal: List[int] = []
        for seg_rows, seg_values in self._sorted_class_segments(
            classes, a_ranks, b_ranks, descending_b
        ):
            # Clean classes (the common case during discovery) have a fully
            # non-decreasing projection: the LNDS is the whole class and the
            # removal contribution is empty — no need to run the patience DP.
            if seg_values.size < 2 or bool(np.all(np.diff(seg_values) >= 0)):
                continue
            values = seg_values.tolist()
            kept = set(lnds_indices(values))
            removal.extend(
                row
                for position, row in enumerate(seg_rows.tolist())
                if position not in kept
            )
            if limit is not None and len(removal) > limit:
                return removal, True
        return removal, False

    # -- exact checks ----------------------------------------------------------

    def oc_holds(self, classes, a_ranks, b_ranks) -> bool:
        if not len(classes):
            return True
        a = self.to_native(a_ranks)
        b = self.to_native(b_ranks)
        rows, class_ids, lengths = self._columnar_classes(classes)
        a_values = a[rows]
        b_values = b[rows].astype(np.int64)
        combined = class_ids * (int(a_values.max(initial=0)) + 1) + a_values
        order = np.lexsort((b_values, combined))
        b_sorted = b_values[order]
        interior = self._interior_mask(lengths)
        return bool(np.all(np.diff(b_sorted)[interior] >= 0))

    def ofd_holds(self, classes, value_ranks) -> bool:
        if not len(classes):
            return True
        ranks = self.to_native(value_ranks)
        rows, _, lengths = self._columnar_classes(classes)
        values = ranks[rows].astype(np.int64)
        interior = self._interior_mask(lengths)
        return bool(np.all(np.diff(values)[interior] == 0))

    @staticmethod
    def _interior_mask(lengths: np.ndarray) -> np.ndarray:
        """Adjacent-pair mask that is ``False`` across class boundaries.

        Classes are concatenated contiguously, so the pair at flat position
        ``cumsum(lengths) - 1`` straddles two classes.
        """
        total = int(lengths.sum())
        interior = np.ones(max(total - 1, 0), dtype=bool)
        if lengths.size > 1:
            interior[np.cumsum(lengths)[:-1] - 1] = False
        return interior

    # -- removal-set kernels ---------------------------------------------------

    def oc_optimal_removal_rows(
        self, classes, a_ranks, b_ranks, limit: Optional[int] = None
    ) -> Tuple[List[int], bool]:
        return self._lnds_removal_rows(classes, a_ranks, b_ranks, limit,
                                       descending_b=False)

    def oc_optimal_removal_count(
        self, classes, a_ranks, b_ranks, limit: Optional[int] = None
    ) -> Tuple[int, bool]:
        from repro.validation.lnds import lnds_length

        if not len(classes):
            return 0, False
        count = 0
        for _, seg_values in self._sorted_class_segments(
            classes, a_ranks, b_ranks, descending_b=False
        ):
            if seg_values.size < 2 or bool(np.all(np.diff(seg_values) >= 0)):
                continue  # non-decreasing projection: nothing to remove
            values = seg_values.tolist()
            count += len(values) - lnds_length(values)
            if limit is not None and count > limit:
                return count, True
        return count, False

    def oc_greedy_removal_rows(
        self, classes, a_ranks, b_ranks, limit: Optional[int] = None
    ) -> Tuple[List[int], bool]:
        # Algorithm 1 is the paper's quadratic baseline; its per-removal
        # update loop is inherently sequential, so it runs through the
        # reference implementation on materialised lists.
        from repro.validation.approx_oc_iterative import iterative_removal_rows

        return iterative_removal_rows(
            classes, self._as_list(a_ranks), self._as_list(b_ranks), limit
        )

    def od_removal_rows(
        self, classes, a_ranks, b_ranks, limit: Optional[int] = None
    ) -> Tuple[List[int], bool]:
        return self._lnds_removal_rows(classes, a_ranks, b_ranks, limit,
                                       descending_b=True)

    def ofd_removal_rows(
        self, classes, value_ranks, limit: Optional[int] = None
    ) -> Tuple[List[int], bool]:
        if not len(classes):
            return [], False
        ranks = self.to_native(value_ranks)
        rows, class_ids, lengths = self._columnar_classes(classes)
        values = ranks[rows].astype(np.int64)
        starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        # Per-row frequency of (class, value), then per class keep the value
        # with the highest frequency, ties broken by first occurrence within
        # the class — exactly Counter.most_common(1)'s insertion-order rule.
        keys = class_ids * (int(values.max()) + 1 if values.size else 1) + values
        _, inverse, counts = np.unique(keys, return_inverse=True, return_counts=True)
        row_counts = counts[inverse.reshape(-1)]
        class_max = np.maximum.reduceat(row_counts, starts)
        positions = np.arange(rows.size, dtype=np.int64)
        candidates = np.where(row_counts == np.repeat(class_max, lengths),
                              positions, rows.size)
        first_best = np.minimum.reduceat(candidates, starts)
        keep_values = values[first_best]
        removal_mask = values != np.repeat(keep_values, lengths)
        removed_per_class = np.add.reduceat(removal_mask.astype(np.int64), starts)
        cumulative = np.cumsum(removed_per_class)
        if limit is not None and cumulative[-1] > int(limit):
            crossing = int(np.argmax(cumulative > int(limit)))
            cut = int(starts[crossing] + lengths[crossing])
            return rows[:cut][removal_mask[:cut]].tolist(), True
        return rows[removal_mask].tolist(), False

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _as_list(ranks) -> List[int]:
        if isinstance(ranks, np.ndarray):
            return ranks.tolist()
        return ranks if isinstance(ranks, list) else list(ranks)
