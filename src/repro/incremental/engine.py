"""Candidate-set repair: classify, revalidate, reconcile.

The heart of the incremental subsystem.  After one or more appends, the
previous run's knowledge splits three ways — and the split rests on a
monotonicity argument worth spelling out:

*Appending rows never removes violations.*  An equivalence class of any
context over the concatenated table restricted to the old rows is exactly
the old class (appends never split classes), and the per-class minimal
removal count of every kernel (LNDS for OCs, mode counting for OFDs, the
exact checks) is non-decreasing when a class gains rows.  Hence

* a candidate whose context classes the delta did **not** touch has exactly
  its old removal count — its memoised outcome is still the truth
  (*still-valid* when that outcome passes the new budget, which it always
  does for previously valid candidates since the budget only grows with
  the row count);
* a candidate whose context classes changed may have grown its count in
  either direction relative to the (also grown) budget — it *must be
  revalidated*;
* a previously *pruned* candidate can never silently become a minimal
  dependency: it can enter the result only through revalidation, either
  because its context was touched or because the grown removal budget
  un-rejects it (*newly-possible* — an "over budget" verdict recorded under
  a smaller budget transfers only downward, the same rule
  :func:`repro.discovery.engine.memo_outcome` applies).

:class:`IncrementalEngine` therefore never re-derives what the delta cannot
have changed: :meth:`Profiler.extend` already purged exactly the memo
entries of touched contexts, so driving the ordinary level-wise engine over
the surviving memo revalidates only the affected candidates through the
existing batch kernels — and produces a result byte-identical to a cold
discovery over the concatenated table, because the memo rules are sound and
the engine is otherwise unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.discovery.config import DiscoveryRequest
from repro.discovery.engine import (
    memo_outcome,
    oc_memo_key,
    oc_validator_tag,
    ofd_memo_key,
)
from repro.discovery.events import (
    DatasetExtended,
    DependencyRevoked,
    DiscoveryEvent,
    RunCompleted,
)
from repro.discovery.results import DiscoveredOC, DiscoveredOFD, DiscoveryResult
from repro.incremental.delta import DeltaSummary
from repro.validation.common import removal_limit


@dataclass
class RepairPlan:
    """Classification of the previous run's candidates after appends.

    ``still_valid`` / ``must_revalidate`` partition the previous result's
    dependencies by whether their recorded validation outcome provably
    transfers to the extended table (see the module docstring);
    ``newly_possible`` lists the memo keys of previously *rejected*
    candidates whose rejection no longer transfers (the budget grew past
    the limit they were rejected under, or their verdict now passes it).
    Candidates of touched contexts whose memo entries were purged are
    accounted for by ``invalidated_entries``.
    """

    still_valid_ocs: List[DiscoveredOC]
    still_valid_ofds: List[DiscoveredOFD]
    revalidate_ocs: List[DiscoveredOC]
    revalidate_ofds: List[DiscoveredOFD]
    newly_possible: List[tuple]
    invalidated_entries: int
    old_removal_limit: Optional[int]
    new_removal_limit: Optional[int]

    @property
    def num_still_valid(self) -> int:
        return len(self.still_valid_ocs) + len(self.still_valid_ofds)

    @property
    def num_must_revalidate(self) -> int:
        return len(self.revalidate_ocs) + len(self.revalidate_ofds)

    @property
    def num_newly_possible(self) -> int:
        return len(self.newly_possible) + self.invalidated_entries

    def to_dict(self) -> Dict[str, object]:
        return {
            "still_valid": self.num_still_valid,
            "must_revalidate": self.num_must_revalidate,
            "newly_possible": self.num_newly_possible,
            "invalidated_entries": self.invalidated_entries,
            "old_removal_limit": self.old_removal_limit,
            "new_removal_limit": self.new_removal_limit,
        }


@dataclass
class IncrementalOutcome:
    """The reconciled result of one incremental discovery.

    ``result`` is the full :class:`~repro.discovery.results.DiscoveryResult`
    over the extended table (byte-identical to a cold run); the revoked /
    added lists diff it against the previous baseline by dependency
    statement.  ``previous`` / ``plan`` are ``None`` when the session had no
    completed baseline for this request (the run was effectively cold).
    """

    result: DiscoveryResult
    previous: Optional[DiscoveryResult]
    plan: Optional[RepairPlan]
    deltas: Tuple[DeltaSummary, ...]
    revoked_ocs: List[DiscoveredOC]
    revoked_ofds: List[DiscoveredOFD]
    added_ocs: List[DiscoveredOC]
    added_ofds: List[DiscoveredOFD]

    @property
    def num_revoked(self) -> int:
        return len(self.revoked_ocs) + len(self.revoked_ofds)

    @property
    def num_added(self) -> int:
        return len(self.added_ocs) + len(self.added_ofds)

    def to_dict(self) -> Dict[str, object]:
        return {
            "result": self.result.to_dict(),
            "deltas": [delta.to_dict() for delta in self.deltas],
            "plan": None if self.plan is None else self.plan.to_dict(),
            "revoked_ocs": [found.to_dict() for found in self.revoked_ocs],
            "revoked_ofds": [found.to_dict() for found in self.revoked_ofds],
            "added_ocs": [found.to_dict() for found in self.added_ocs],
            "added_ofds": [found.to_dict() for found in self.added_ofds],
        }


def diff_results(
    previous: DiscoveryResult, current: DiscoveryResult
) -> Tuple[List[DiscoveredOC], List[DiscoveredOFD],
           List[DiscoveredOC], List[DiscoveredOFD]]:
    """Statement-level diff: ``(revoked_ocs, revoked_ofds, added_ocs,
    added_ofds)``.  Revoked entries carry the *previous* run's metadata,
    added entries the current run's."""
    old_ocs = {found.oc for found in previous.ocs}
    old_ofds = {found.ofd for found in previous.ofds}
    new_ocs = {found.oc for found in current.ocs}
    new_ofds = {found.ofd for found in current.ofds}
    return (
        [found for found in previous.ocs if found.oc not in new_ocs],
        [found for found in previous.ofds if found.ofd not in new_ofds],
        [found for found in current.ocs if found.oc not in old_ocs],
        [found for found in current.ofds if found.ofd not in old_ofds],
    )


class IncrementalEngine:
    """Drives incremental rediscovery for one request on a warm session.

    Thin, stateless driver over a :class:`~repro.discovery.session.Profiler`:
    the session owns the warm assets (extended encoding, patched partitions,
    purged memo, per-request baselines and the delta log); the engine reads
    them to classify, stream and reconcile.  Construct one per call — or
    use the :meth:`Profiler.discover_incremental` convenience wrapper.
    """

    def __init__(self, profiler, request: Optional[DiscoveryRequest] = None,
                 **overrides) -> None:
        # One resolution rule for the whole session API: the profiler's.
        self.profiler = profiler
        self.request = profiler._resolve_request(request, overrides)
        self.request_key = self.request.to_json()

    # -- classification ----------------------------------------------------------

    def classify(self) -> Optional[RepairPlan]:
        """Classify the baseline's candidates; ``None`` without a baseline."""
        baseline = self.profiler._baseline(self.request_key)
        if baseline is None:
            return None
        deltas = self.pending_deltas()
        config = self.request.to_config()
        memo = self.profiler.validation_memo
        old_limit = removal_limit(baseline.num_rows, self.request.threshold)
        new_limit = removal_limit(
            self.profiler.relation.num_rows, self.request.threshold
        )

        def transfers(key, context) -> bool:
            # `extend` already repaired the memo: surviving entries are
            # sound for the extended table by construction (unaffected
            # contexts verbatim, affected contexts adjusted per class), so
            # presence plus budget soundness is the whole check.  Purged or
            # evicted entries must re-run their kernels.
            if memo is None:
                return False
            entry = memo.get(key)
            if entry is None:
                return False
            outcome = memo_outcome(entry, new_limit)
            return outcome is not None and outcome[1]

        still_ocs: List[DiscoveredOC] = []
        reval_ocs: List[DiscoveredOC] = []
        for found in baseline.result.ocs:
            key = oc_memo_key(config, found.oc.context, found.oc.a, found.oc.b)
            (still_ocs if transfers(key, found.oc.context) else reval_ocs).append(
                found
            )
        still_ofds: List[DiscoveredOFD] = []
        reval_ofds: List[DiscoveredOFD] = []
        for found in baseline.result.ofds:
            key = ofd_memo_key(config, found.ofd.context, found.ofd.attribute)
            (still_ofds if transfers(key, found.ofd.context)
             else reval_ofds).append(found)

        newly_possible: List[tuple] = []
        if memo is not None:
            # Only entries this request's engine will actually consult: the
            # memo is session-wide, and keys tagged for another validator
            # cannot turn into candidates of this run.
            tags = {
                "oc": oc_validator_tag(config),
                "ofd": "exact" if config.is_exact else "approx",
            }
            for key, entry in memo.items():
                if tags.get(key[0]) != key[1]:
                    continue
                new_outcome = memo_outcome(entry, new_limit)
                if new_outcome is None:
                    # Rejected under a smaller budget than today's: unknown.
                    newly_possible.append(key)
                    continue
                old_outcome = memo_outcome(entry, old_limit)
                was_valid = old_outcome is not None and old_outcome[1]
                if new_outcome[1] and not was_valid:
                    newly_possible.append(key)
        return RepairPlan(
            still_valid_ocs=still_ocs,
            still_valid_ofds=still_ofds,
            revalidate_ocs=reval_ocs,
            revalidate_ofds=reval_ofds,
            newly_possible=newly_possible,
            invalidated_entries=sum(
                delta.invalidated_memo_entries for delta in deltas
            ),
            old_removal_limit=old_limit,
            new_removal_limit=new_limit,
        )

    def pending_deltas(self) -> Tuple[DeltaSummary, ...]:
        """Appends applied since this request's baseline (all of them when
        no baseline exists)."""
        baseline = self.profiler._baseline(self.request_key)
        start = 0 if baseline is None else baseline.delta_index
        return tuple(self.profiler.delta_log[start:])

    # -- execution ---------------------------------------------------------------

    def iter_events(
        self, *, progress_callback=None, cancellation=None, _sink=None
    ) -> Iterator[DiscoveryEvent]:
        """Stream the incremental run: a :class:`DatasetExtended` header
        (when appends are pending against a baseline), the ordinary level
        events, then one :class:`DependencyRevoked` per dependency that
        fell out, and finally :class:`RunCompleted`.  A completed run
        becomes the new baseline for this request.

        ``_sink`` lets :meth:`discover` collect the plan/deltas/diff this
        stream computes anyway without recomputing them (classification
        scans the whole memo)."""
        baseline = self.profiler._baseline(self.request_key)
        previous = baseline.result if baseline is not None else None
        plan = self.classify()
        deltas = self.pending_deltas()
        if _sink is not None:
            _sink["previous"] = previous
            _sink["plan"] = plan
            _sink["deltas"] = deltas
        if deltas and previous is not None:
            yield DatasetExtended(
                old_num_rows=deltas[0].old_num_rows,
                new_num_rows=self.profiler.relation.num_rows,
                appended_rows=sum(delta.num_appended for delta in deltas),
                dataset_version=self.profiler.dataset_version,
                affected_contexts=len({
                    context
                    for delta in deltas
                    for context in
                    delta.affected_contexts + delta.dropped_contexts
                }),
                still_valid=plan.num_still_valid,
                must_revalidate=plan.num_must_revalidate,
                newly_possible=plan.num_newly_possible,
            )
        stream = self.profiler.iter_events(
            self.request,
            progress_callback=progress_callback,
            cancellation=cancellation,
        )
        for event in stream:
            if not isinstance(event, RunCompleted):
                yield event
                continue
            # The profiler's stream has already recorded the completed run
            # as the new baseline for this request by the time the event
            # reaches us; the diff below still runs against the `previous`
            # snapshot taken before the run started.
            result = event.result
            if (previous is not None
                    and not result.cancelled and not result.timed_out):
                diff = diff_results(previous, result)
                if _sink is not None:
                    _sink["diff"] = diff
                for found in diff[0]:
                    yield DependencyRevoked(kind="oc", dependency=found)
                for found in diff[1]:
                    yield DependencyRevoked(kind="ofd", dependency=found)
            yield event

    def discover(
        self, *, progress_callback=None, cancellation=None
    ) -> IncrementalOutcome:
        """Run the incremental discovery and reconcile against the baseline."""
        sink: dict = {}
        result: Optional[DiscoveryResult] = None
        for event in self.iter_events(
            progress_callback=progress_callback,
            cancellation=cancellation,
            _sink=sink,
        ):
            if isinstance(event, RunCompleted):
                result = event.result
        assert result is not None  # iter_events always ends with RunCompleted
        revoked_ocs, revoked_ofds, added_ocs, added_ofds = sink.get(
            "diff", ([], [], [], [])
        )
        return IncrementalOutcome(
            result=result,
            previous=sink.get("previous"),
            plan=sink.get("plan"),
            deltas=sink.get("deltas", ()),
            revoked_ocs=revoked_ocs,
            revoked_ofds=revoked_ofds,
            added_ocs=added_ocs,
            added_ofds=added_ofds,
        )
