"""Delta descriptions for incremental maintenance.

A :class:`DeltaSummary` records what one append did to a session's warm
state: how the relation grew, how each column's encoding absorbed the new
values, which cached contexts' stripped classes changed (the only contexts
whose validation outcomes the append can have altered), and how the
validation memo was purged.  Summaries are plain data — they serialise for
the service boundary and accumulate in the session's delta log so a later
:meth:`~repro.discovery.session.Profiler.discover_incremental` can repair
exactly what every append since its baseline may have broken.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Sequence, Tuple


@dataclass(frozen=True)
class DeltaSummary:
    """What one :meth:`Profiler.extend` call changed.

    ``affected_contexts`` / ``dropped_contexts`` hold attribute-*name* sets:
    contexts whose stripped equivalence classes changed, respectively whose
    cached partitions had to be dropped (effect unknown — treated as
    affected by every consumer).  A context absent from both sets kept
    identical classes, so memoised validation outcomes for it remain exact.
    """

    old_num_rows: int
    new_num_rows: int
    #: The session's dataset version after this append (bumped by every
    #: :meth:`Profiler.extend`; also stamps the worker pool's resident
    #: columns, so stale worker state can never serve a newer version).
    dataset_version: int = 0
    #: Attribute name -> ``"appended"`` / ``"remapped"`` (see
    #: :meth:`repro.dataset.encoding.EncodedRelation.extend`).
    column_modes: Dict[str, str] = field(default_factory=dict)
    affected_contexts: Tuple[FrozenSet[str], ...] = ()
    dropped_contexts: Tuple[FrozenSet[str], ...] = ()
    #: Cached partitions brought up to date by per-context merge.
    patched_partitions: int = 0
    #: Validation-memo entries purged because the delta may have changed them.
    invalidated_memo_entries: int = 0
    #: Validation-memo entries repaired in place by re-running kernels on
    #: only the classes the delta changed (see :mod:`repro.incremental.repair`).
    adjusted_memo_entries: int = 0
    #: Validation-memo entries kept untouched: contexts the delta did not
    #: affect, plus verdicts that are final under appends by monotonicity.
    retained_memo_entries: int = 0

    @property
    def num_appended(self) -> int:
        """Number of rows this delta appended."""
        return self.new_num_rows - self.old_num_rows

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for the JSON service boundary."""
        return {
            "old_num_rows": self.old_num_rows,
            "new_num_rows": self.new_num_rows,
            "num_appended": self.num_appended,
            "dataset_version": self.dataset_version,
            "column_modes": dict(self.column_modes),
            "affected_contexts": sorted(
                sorted(context) for context in self.affected_contexts
            ),
            "dropped_contexts": sorted(
                sorted(context) for context in self.dropped_contexts
            ),
            "patched_partitions": self.patched_partitions,
            "invalidated_memo_entries": self.invalidated_memo_entries,
            "adjusted_memo_entries": self.adjusted_memo_entries,
            "retained_memo_entries": self.retained_memo_entries,
        }


def rows_to_columns(
    schema, rows: Sequence[object]
) -> Dict[str, List[object]]:
    """Turn appended rows into schema-ordered columns.

    Each row is either a sequence of cell values in schema order or a
    mapping from attribute name to value (missing keys become ``None``,
    unknown keys are rejected — appends are a typed boundary, so a
    misspelled attribute must not be silently dropped).
    """
    names = schema.names
    columns: Dict[str, List[object]] = {name: [] for name in names}
    known = set(names)
    for position, row in enumerate(rows):
        if isinstance(row, Mapping):
            unknown = sorted(set(row) - known)
            if unknown:
                raise ValueError(
                    f"row {position} has attributes not in the schema: "
                    f"{unknown} (known: {names})"
                )
            for name in names:
                columns[name].append(row.get(name))
        else:
            try:
                if isinstance(row, (str, bytes)):
                    raise TypeError  # a bare string would split into chars
                values = list(row)
            except TypeError:
                raise ValueError(
                    f"row {position} must be a sequence of cell values or "
                    f"a mapping, got {row!r}"
                )
            if len(values) != len(names):
                raise ValueError(
                    f"row {position} has {len(values)} values, "
                    f"expected {len(names)}"
                )
            for name, value in zip(names, values):
                columns[name].append(value)
    return columns
