"""Incremental discovery: maintain AODs as rows are appended.

A warm :class:`~repro.discovery.session.Profiler` session traditionally
went cold the moment its dataset grew — every append forced a from-scratch
re-discovery.  This subsystem keeps the session's three warm assets
consistent under row appends instead:

* **delta encoding** — :meth:`repro.dataset.encoding.EncodedRelation.extend`
  appends codes, growing each dictionary monotonically so existing codes
  stay valid (columns whose new values sort into the middle of the domain
  are remapped by an order-preserving bijection, which no kernel can
  observe);
* **partition patching** —
  :meth:`repro.dataset.partition.PartitionCache.apply_delta` merges the
  appended row ids into every cached stripped partition per context
  (smallest contexts first, re-splitting only the base classes the delta
  touched) and reports exactly which contexts' classes changed;
* **candidate-set repair** — :class:`IncrementalEngine` classifies the
  previous run's candidates into still-valid / must-revalidate /
  newly-possible using the append monotonicity argument (appending rows can
  only *increase* a candidate's minimal removal count, so a recorded
  non-exceeded count stays exact while its context's classes are
  untouched), purges only the memo entries the delta can actually have
  changed, and drives the affected candidates back through the existing
  batch kernels.  The maintained dependency set is byte-identical to a cold
  discovery over the concatenated table.

Entry points: :meth:`Profiler.extend` / :meth:`Profiler.discover_incremental`
on the session, ``POST /datasets/<name>/append`` on ``repro serve``, and the
``repro extend`` CLI subcommand.
"""

from repro.incremental.delta import DeltaSummary, rows_to_columns
from repro.incremental.engine import (
    IncrementalEngine,
    IncrementalOutcome,
    RepairPlan,
)

__all__ = [
    "DeltaSummary",
    "IncrementalEngine",
    "IncrementalOutcome",
    "RepairPlan",
    "rows_to_columns",
]
