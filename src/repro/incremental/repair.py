"""Per-class repair of memoised validation outcomes after an append.

Context-level invalidation alone is too blunt for real data: with
low-cardinality attributes, a handful of appended rows lands inside *some*
class of nearly every context, and purging every touched context would
throw away almost the whole memo.  The saving grace is that every kernel
the engine memoises is **class-additive** — a context's removal count is
the sum of independent per-class contributions (exactly the property the
distributed validators shard on) — and
:meth:`~repro.dataset.partition.PartitionCache.apply_delta` reports the
precise classes a delta removed and added per context.  So instead of
dropping an affected entry we *adjust* it::

    new_count = old_count - kernel(removed_classes) + kernel(added_classes)

running the kernel only over the few classes that actually changed.
Monotonicity handles the rest outright: a failing exact check can never
start holding again under appends (a violation inside a class survives the
class growing), so failing booleans are kept and only previously-passing
ones re-check the added classes; an "over budget ``limit_used``" verdict is
a lower bound that appends can only reinforce, so it is kept verbatim —
the engine recomputes it only once the growing removal budget passes
``limit_used`` (sessions pre-empt that with the early-exit slack in
:data:`repro.discovery.engine.MEMO_LIMIT_SLACK`).

Byte-identity is preserved because adjusted counts equal what a full
kernel over the patched context would return (same per-class sums), and
the engine's memo soundness rules treat them exactly like freshly computed
outcomes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

#: (invalidated, adjusted, retained) counters returned by :func:`repair_memo`.
RepairCounts = Tuple[int, int, int]


def repair_memo(
    memo,
    encoded,
    patches_by_context: Dict[FrozenSet[str], Tuple[list, list]],
    unsafe_contexts: Sequence[FrozenSet[str]],
    cached_contexts: Sequence[FrozenSet[str]],
) -> RepairCounts:
    """Bring a session's validation memo in line with an applied delta.

    ``patches_by_context`` maps affected contexts (attribute-*name* sets) to
    their ``(removed_classes, added_classes)`` patch; ``unsafe_contexts``
    are contexts whose delta effect is unknown (dropped partitions);
    ``cached_contexts`` are the contexts still present in the partition
    cache (entries for anything else cannot be proven unchanged and are
    dropped).  Mutates ``memo`` in place and returns
    ``(invalidated, adjusted, retained)``.
    """
    unsafe = set(unsafe_contexts)
    cached = set(cached_contexts)
    # Adjusting costs two full (no-early-exit) kernel runs over the patch
    # classes; once a patch spans about the whole relation — the unit
    # context always does, its single class is every row — letting the
    # engine recompute the entry once, batched and with early exit, is
    # cheaper.  Verdict-only entries (exceeded / failing exact) are exempt:
    # monotonicity keeps them for free at any patch size.
    oversized = {
        context
        for context, (removed, added) in patches_by_context.items()
        if sum(len(rows) for rows in removed)
        + sum(len(rows) for rows in added) >= encoded.num_rows
    }
    invalidated = adjusted = retained = 0
    #: context -> list of memo keys whose counts await batched adjustment.
    pending: Dict[FrozenSet[str], List[tuple]] = {}
    for key in list(memo):
        context = key[2]
        patch = patches_by_context.get(context)
        if patch is not None:
            entry = memo[key]
            count, exceeded, limit_used = entry
            if exceeded:
                # Failing exact checks and "over budget" counts are final
                # under appends (counts only grow): kept verbatim, no
                # kernel runs — that is "retained", not "adjusted".
                retained += 1
            elif limit_used is None:
                # Passing exact check: re-check only the added classes.
                memo[key] = (0, not _holds(key[0], key, patch[1], encoded),
                             None)
                adjusted += 1
            elif context in oversized:
                del memo[key]
                invalidated += 1
            else:
                pending.setdefault(context, []).append(key)
        elif context in unsafe or context not in cached:
            del memo[key]
            invalidated += 1
        else:
            retained += 1
    for context, keys in pending.items():
        _adjust_counts_batched(
            memo, keys, patches_by_context[context], encoded
        )
        adjusted += len(keys)
    return invalidated, adjusted, retained


def _adjust_counts_batched(memo, keys, patch, encoded) -> None:
    """Adjust the exact-count entries of one context in batch kernel calls.

    All candidates of a context share the patch classes, so the removed and
    added contributions come out of two batched kernel dispatches per kind
    instead of two kernel calls per candidate.
    """
    removed, added = patch
    backend = encoded.backend
    oc_optimal = [key for key in keys if key[0] == "oc" and key[1] == "optimal"]
    if oc_optimal:
        pairs = [
            (encoded.native_ranks(key[3]), encoded.native_ranks(key[4]))
            for key in oc_optimal
        ]
        deltas = _batched_oc_counts(backend, removed, added, pairs)
        for key, delta in zip(oc_optimal, deltas):
            count, _, limit_used = memo[key]
            memo[key] = (count + delta, False, limit_used)
    ofd_approx = [key for key in keys if key[0] == "ofd"]
    if ofd_approx:
        columns = [encoded.native_ranks(key[3]) for key in ofd_approx]
        removed_counts = (
            [len(rows) for rows, _ in backend.ofd_removal_batch(
                removed, columns, None)]
            if removed else [0] * len(columns)
        )
        added_counts = (
            [len(rows) for rows, _ in backend.ofd_removal_batch(
                added, columns, None)]
            if added else [0] * len(columns)
        )
        for key, r, a in zip(ofd_approx, removed_counts, added_counts):
            count, _, limit_used = memo[key]
            memo[key] = (count - r + a, False, limit_used)
    # The greedy (iterative) validator has no batch kernel; loop.
    for key in keys:
        if key[0] == "oc" and key[1] == "iterative":
            count, _, limit_used = memo[key]
            adjusted_count = (
                count
                - _count("oc", key, removed, encoded)
                + _count("oc", key, added, encoded)
            )
            memo[key] = (adjusted_count, False, limit_used)


def _batched_oc_counts(backend, removed, added, pairs) -> List[int]:
    """Per-pair count deltas ``added - removed`` via the batch kernel."""
    if removed:
        removed_counts = [
            count for count, _ in backend.oc_optimal_removal_count_batch(
                removed, pairs, None
            )
        ]
    else:
        removed_counts = [0] * len(pairs)
    if added:
        added_counts = [
            count for count, _ in backend.oc_optimal_removal_count_batch(
                added, pairs, None
            )
        ]
    else:
        added_counts = [0] * len(pairs)
    return [a - r for r, a in zip(removed_counts, added_counts)]


def _holds(kind, key, classes, encoded) -> bool:
    backend = encoded.backend
    if kind == "oc":
        return backend.oc_holds(
            classes, encoded.native_ranks(key[3]), encoded.native_ranks(key[4])
        )
    return backend.ofd_holds(classes, encoded.native_ranks(key[3]))


def _count(kind, key, classes, encoded) -> int:
    """A candidate's exact removal contribution over ``classes`` alone."""
    if not classes:
        return 0
    backend = encoded.backend
    if kind == "oc":
        tag = key[1]
        if tag == "optimal":
            count, _ = backend.oc_optimal_removal_count(
                classes,
                encoded.native_ranks(key[3]),
                encoded.native_ranks(key[4]),
                None,
            )
            return count
        # Algorithm 1 (greedy) is per-class independent as well; it runs on
        # canonical rank lists, mirroring the engine's dispatch.
        removal, _ = backend.oc_greedy_removal_rows(
            classes, encoded.ranks(key[3]), encoded.ranks(key[4]), None
        )
        return len(removal)
    removal, _ = backend.ofd_removal_rows(
        classes, encoded.native_ranks(key[3]), None
    )
    return len(removal)
