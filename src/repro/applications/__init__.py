"""Downstream applications of discovered (approximate) order dependencies.

Figure 1 of the paper ends with "Error Repair / Outlier Detection": once
AODs have been discovered, ranked and (optionally) vetted by a domain
expert, the tuples in their removal sets point at likely data-quality
problems.  These modules implement that last mile:

* :mod:`repro.applications.outlier_detection` — score tuples by how many
  high-interest dependencies they violate,
* :mod:`repro.applications.error_repair` — propose minimal repairs
  (tuple removals or value corrections) that restore a chosen set of
  dependencies,
* :mod:`repro.applications.profiling` — a one-call profiling report
  combining discovery, ranking and violation summaries.
"""

from repro.applications.outlier_detection import OutlierReport, detect_outliers
from repro.applications.error_repair import RepairPlan, propose_repairs
from repro.applications.profiling import ProfilingReport, profile_relation

__all__ = [
    "OutlierReport",
    "RepairPlan",
    "ProfilingReport",
    "detect_outliers",
    "profile_relation",
    "propose_repairs",
]
