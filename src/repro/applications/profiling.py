"""One-call dataset profiling combining discovery, ranking and diagnostics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dataset.relation import Relation
from repro.dataset.schema import AttributeType
from repro.discovery.api import discover_aods
from repro.discovery.results import DiscoveryResult


@dataclass
class ColumnProfile:
    """Light-weight statistics of one column."""

    name: str
    inferred_type: str
    distinct_values: int
    null_count: int
    total_rows: int = 0

    @property
    def is_candidate_key(self) -> bool:
        """A column whose values are all distinct and non-null."""
        return (
            self.total_rows > 0
            and self.null_count == 0
            and self.distinct_values == self.total_rows
        )


@dataclass
class ProfilingReport:
    """The combined output of :func:`profile_relation`."""

    num_rows: int
    columns: List[ColumnProfile] = field(default_factory=list)
    discovery: Optional[DiscoveryResult] = None

    def render(self, top_k: int = 10) -> str:
        """Human-readable multi-section report (used by the CLI)."""
        lines = [f"Rows: {self.num_rows}", "", "Columns:"]
        for column in self.columns:
            marker = " (candidate key)" if column.is_candidate_key else ""
            lines.append(
                f"  {column.name}: {column.inferred_type}, "
                f"{column.distinct_values} distinct, {column.null_count} nulls{marker}"
            )
        if self.discovery is not None:
            lines.append("")
            lines.append(self.discovery.summary())
            lines.append("")
            lines.append(f"Top {top_k} order compatibilities by interestingness:")
            for found in self.discovery.ranked_ocs(top_k):
                lines.append(f"  {found}")
        return "\n".join(lines)


def profile_relation(
    relation: Relation,
    threshold: float = 0.1,
    attributes: Optional[Sequence[str]] = None,
    max_level: Optional[int] = None,
    run_discovery: bool = True,
) -> ProfilingReport:
    """Profile a relation: column statistics plus AOD discovery.

    ``run_discovery=False`` limits the report to the cheap column statistics
    (useful as a first look at very wide tables before committing to the
    exponential lattice search).
    """
    columns = []
    for attribute in relation.schema:
        values = relation.column(attribute.name)
        non_null = [value for value in values if value is not None]
        columns.append(
            ColumnProfile(
                name=attribute.name,
                inferred_type=AttributeType.infer(values).value,
                distinct_values=len(set(non_null)),
                null_count=len(values) - len(non_null),
                total_rows=relation.num_rows,
            )
        )
    discovery = None
    if run_discovery:
        discovery = discover_aods(
            relation,
            threshold=threshold,
            attributes=attributes,
            max_level=max_level,
        )
    return ProfilingReport(
        num_rows=relation.num_rows, columns=columns, discovery=discovery
    )
