"""Outlier detection driven by discovered approximate dependencies.

Every valid AOC/AOFD comes with a minimal removal set: the tuples that stand
between the data and the dependency holding exactly.  Tuples that appear in
the removal sets of *many* high-interest dependencies are much more likely
to be genuinely erroneous than tuples flagged by a single dependency; the
outlier score aggregates exactly that evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataset.relation import Relation
from repro.discovery.results import DiscoveryResult
from repro.validation.approx_oc_optimal import validate_aoc_optimal
from repro.validation.approx_ofd import validate_aofd


@dataclass
class OutlierReport:
    """Per-tuple outlier evidence."""

    scores: Dict[int, float] = field(default_factory=dict)
    evidence: Dict[int, List[str]] = field(default_factory=dict)
    num_dependencies_used: int = 0

    def top(self, k: int = 10) -> List[Tuple[int, float]]:
        """The ``k`` most suspicious row indices with their scores."""
        ranked = sorted(self.scores.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]

    def rows_above(self, score: float) -> List[int]:
        """Row indices whose outlier score is at least ``score``."""
        return sorted(row for row, value in self.scores.items() if value >= score)


def detect_outliers(
    relation: Relation,
    discovery_result: DiscoveryResult,
    top_dependencies: Optional[int] = 20,
    include_ofds: bool = True,
) -> OutlierReport:
    """Score tuples by the interestingness-weighted dependencies they violate.

    Parameters
    ----------
    relation:
        The profiled relation (the same one the discovery ran on).
    discovery_result:
        Output of :func:`repro.discovery.discover_aods`.
    top_dependencies:
        Use only the ``k`` most interesting OCs (and OFDs); ``None`` uses
        all of them.  Restricting to the top of the ranking mirrors the
        expert-verification step of Figure 1.
    include_ofds:
        Whether approximate OFDs contribute evidence as well.
    """
    report = OutlierReport()

    def add_evidence(rows, weight: float, label: str) -> None:
        for row in rows:
            report.scores[row] = report.scores.get(row, 0.0) + weight
            report.evidence.setdefault(row, []).append(label)

    for found in discovery_result.ranked_ocs(top_dependencies):
        if found.is_exact:
            continue  # exact dependencies flag nothing
        result = validate_aoc_optimal(relation, found.oc)
        add_evidence(result.removal_rows, found.interestingness, repr(found.oc))
        report.num_dependencies_used += 1

    if include_ofds:
        for found in discovery_result.ranked_ofds(top_dependencies):
            if found.is_exact:
                continue
            result = validate_aofd(relation, found.ofd)
            add_evidence(result.removal_rows, found.interestingness, repr(found.ofd))
            report.num_dependencies_used += 1

    return report
