"""Minimal-removal error repair based on discovered dependencies.

The simplest consistent repair w.r.t. a set of order dependencies is to drop
the union of their minimal removal sets (tuple deletion repair); a gentler
alternative keeps the tuples but proposes per-cell corrections for OFD
violations (replace the offending value with the majority value of its
equivalence class).  Both strategies are implemented; the deletion repair is
guaranteed to restore every dependency it was given, and the tests verify
that by re-validating on the repaired relation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dataset.relation import Relation
from repro.dependencies.oc import CanonicalOC
from repro.dependencies.ofd import OFD
from repro.validation.approx_oc_optimal import validate_aoc_optimal
from repro.validation.approx_ofd import validate_aofd
from repro.validation.common import context_classes


@dataclass
class CellCorrection:
    """A proposed single-cell repair."""

    row: int
    attribute: str
    old_value: object
    new_value: object


@dataclass
class RepairPlan:
    """The outcome of :func:`propose_repairs`."""

    rows_to_remove: Set[int] = field(default_factory=set)
    cell_corrections: List[CellCorrection] = field(default_factory=list)
    dependencies_repaired: int = 0

    @property
    def num_removals(self) -> int:
        return len(self.rows_to_remove)

    def apply_removals(self, relation: Relation) -> Relation:
        """Return the relation with the removal repair applied."""
        return relation.drop_rows(self.rows_to_remove)

    def apply_corrections(self, relation: Relation) -> Relation:
        """Return the relation with the cell corrections applied."""
        columns = {name: list(relation.column(name)) for name in relation.attribute_names}
        for correction in self.cell_corrections:
            columns[correction.attribute][correction.row] = correction.new_value
        return Relation(relation.schema, columns)


def propose_repairs(
    relation: Relation,
    ocs: Sequence[CanonicalOC] = (),
    ofds: Sequence[OFD] = (),
    correct_ofd_cells: bool = True,
) -> RepairPlan:
    """Build a repair plan for the given dependencies.

    * Every OC contributes its minimal removal set (Algorithm 2) to
      ``rows_to_remove``.
    * Every OFD contributes either removals or, when
      ``correct_ofd_cells`` is set, per-cell corrections replacing minority
      values by their equivalence class's majority value.
    """
    plan = RepairPlan()

    for oc in ocs:
        result = validate_aoc_optimal(relation, oc)
        plan.rows_to_remove |= set(result.removal_rows)
        plan.dependencies_repaired += 1

    for ofd in ofds:
        plan.dependencies_repaired += 1
        if not correct_ofd_cells:
            result = validate_aofd(relation, ofd)
            plan.rows_to_remove |= set(result.removal_rows)
            continue
        classes = context_classes(relation, ofd.context)
        column = relation.column(ofd.attribute)
        for class_rows in classes:
            frequencies = Counter(column[row] for row in class_rows)
            majority, _ = frequencies.most_common(1)[0]
            for row in class_rows:
                if column[row] != majority:
                    plan.cell_corrections.append(
                        CellCorrection(
                            row=row,
                            attribute=ofd.attribute,
                            old_value=column[row],
                            new_value=majority,
                        )
                    )
    return plan
