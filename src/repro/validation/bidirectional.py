"""Validation of bidirectional (mixed asc/desc) order compatibilities.

See :mod:`repro.dependencies.bidirectional`.  A descending side is handled
by negating that attribute's ranks: reversing a domain's order maps the
non-decreasing-subsequence criterion of Algorithm 2 onto the reversed
domain, so the unchanged LNDS kernel still produces a minimal removal set.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.dataset.partition import PartitionCache
from repro.dataset.relation import Relation
from repro.dependencies.bidirectional import BidirectionalOC
from repro.validation.approx_oc_optimal import optimal_removal_rows
from repro.validation.common import context_classes, removal_limit
from repro.validation.result import ValidationResult


def _oriented_ranks(ranks: Sequence[int], ascending: bool) -> List[int]:
    """Return the ranks, negated when the side is descending."""
    if ascending:
        return list(ranks)
    return [-rank for rank in ranks]


def validate_aboc_optimal(
    relation: Relation,
    boc: BidirectionalOC,
    threshold: Optional[float] = None,
    partition_cache: Optional[PartitionCache] = None,
) -> ValidationResult:
    """Validate an approximate bidirectional OC with the LNDS method.

    Examples
    --------
    >>> from repro.dataset.relation import Relation
    >>> from repro.dependencies.bidirectional import BidirectionalOC
    >>> table = Relation.from_columns({"year": [1990, 1995, 2001], "age": [30, 25, 19]})
    >>> boc = BidirectionalOC([], "year", "age", a_ascending=True, b_ascending=False)
    >>> validate_aboc_optimal(table, boc).holds_exactly
    True
    """
    encoded = relation.encoded()
    a_ranks = _oriented_ranks(encoded.ranks(boc.a), boc.a_ascending)
    b_ranks = _oriented_ranks(encoded.ranks(boc.b), boc.b_ascending)
    classes = context_classes(relation, boc.context, partition_cache)
    limit = removal_limit(relation.num_rows, threshold)
    removal, exceeded = optimal_removal_rows(classes, a_ranks, b_ranks, limit)
    return ValidationResult(
        dependency=boc,
        num_rows=relation.num_rows,
        removal_rows=frozenset(removal),
        threshold=threshold,
        exceeded_threshold=exceeded,
    )


def best_polarity(
    relation: Relation,
    context,
    a: str,
    b: str,
    partition_cache: Optional[PartitionCache] = None,
) -> ValidationResult:
    """Validate both polarities of ``a ~ b`` and return the better one.

    Bidirectional discovery effectively asks "are these attributes
    co-ordered in either direction?"; this helper answers that question for
    a single pair by comparing the minimal removal sets of the ascending-
    ascending and ascending-descending orientations.
    """
    same = validate_aboc_optimal(
        relation, BidirectionalOC(context, a, b, True, True), None, partition_cache
    )
    opposite = validate_aboc_optimal(
        relation, BidirectionalOC(context, a, b, True, False), None, partition_cache
    )
    return same if same.removal_size <= opposite.removal_size else opposite
