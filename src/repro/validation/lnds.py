"""Longest (non-)decreasing subsequence kernels.

Algorithm 2 of the paper reduces minimal-removal-set computation to the
longest non-decreasing subsequence (LNDS) problem, solved with the classic
patience / Fredman dynamic programming approach in ``O(m log m)``:

* maintain ``tails[k]`` = the smallest possible last element of a
  non-decreasing subsequence of length ``k+1`` seen so far,
* for each new element binary-search the first tail *strictly greater* than
  it (``bisect_right``) and replace it (or extend),
* parent pointers allow reconstructing one optimal subsequence, which is
  what yields the removal set (the complement of the LNDS).

The strictly-increasing variant (LIS, ``bisect_left``) is included because
the optimality proof (Theorem 3.4) reduces from Fredman's LIS-DEC decision
problem, which the tests replay.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Sequence


def lnds_length(sequence: Sequence) -> int:
    """Length of a longest non-decreasing subsequence of ``sequence``."""
    tails: List = []
    for value in sequence:
        position = bisect_right(tails, value)
        if position == len(tails):
            tails.append(value)
        else:
            tails[position] = value
    return len(tails)


def lis_length(sequence: Sequence) -> int:
    """Length of a longest strictly increasing subsequence of ``sequence``."""
    tails: List = []
    for value in sequence:
        position = bisect_left(tails, value)
        if position == len(tails):
            tails.append(value)
        else:
            tails[position] = value
    return len(tails)


def _subsequence_indices(sequence: Sequence, strict: bool) -> List[int]:
    """Indices of one optimal (non-decreasing or strictly increasing)
    subsequence, via patience DP with parent pointers."""
    if not sequence:
        return []
    bisect = bisect_left if strict else bisect_right
    tails: List = []          # tails[k] = value ending an optimal length-(k+1) subsequence
    tail_indices: List[int] = []   # index in `sequence` of tails[k]
    parents: List[int] = [-1] * len(sequence)
    for index, value in enumerate(sequence):
        position = bisect(tails, value)
        if position > 0:
            parents[index] = tail_indices[position - 1]
        if position == len(tails):
            tails.append(value)
            tail_indices.append(index)
        else:
            tails[position] = value
            tail_indices[position] = index
    # Walk back from the end of the longest subsequence.
    result: List[int] = []
    cursor = tail_indices[-1]
    while cursor != -1:
        result.append(cursor)
        cursor = parents[cursor]
    result.reverse()
    return result


def lnds_indices(sequence: Sequence) -> List[int]:
    """Indices (ascending) of one longest non-decreasing subsequence.

    This is ``computeLNDS`` of Algorithm 2, line 4; the removal set is the
    complement of the returned index set.
    """
    return _subsequence_indices(sequence, strict=False)


def lis_indices(sequence: Sequence) -> List[int]:
    """Indices (ascending) of one longest strictly increasing subsequence."""
    return _subsequence_indices(sequence, strict=True)


def lnds_complement(sequence: Sequence) -> List[int]:
    """Indices *not* on a longest non-decreasing subsequence.

    Convenience wrapper used by the AOC validator: these are the positions
    that must be removed from the class.
    """
    kept = set(lnds_indices(sequence))
    return [index for index in range(len(sequence)) if index not in kept]


def lnds_length_quadratic(sequence: Sequence) -> int:
    """Reference ``O(m^2)`` dynamic program for the LNDS length.

    Exists purely as an oracle for property-based tests of the
    ``O(m log m)`` implementation.
    """
    if not sequence:
        return 0
    best = [1] * len(sequence)
    for j in range(len(sequence)):
        for i in range(j):
            if sequence[i] <= sequence[j]:
                best[j] = max(best[j], best[i] + 1)
    return max(best)


def is_non_decreasing_subsequence(sequence: Sequence, indices: Sequence[int]) -> bool:
    """Check that ``indices`` are ascending positions whose values are
    non-decreasing — the well-formedness predicate used in tests."""
    for previous, current in zip(indices, list(indices)[1:]):
        if previous >= current:
            return False
        if sequence[previous] > sequence[current]:
            return False
    return True
