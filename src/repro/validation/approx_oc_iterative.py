"""Algorithm 1 — the iterative (greedy) AOC validator from prior work.

This is the baseline the paper improves on.  To validate ``X: A ~ B`` with
threshold ``ε`` it repeatedly removes, within each equivalence class of the
context, a tuple with the largest number of swaps, updating the remaining
tuples' swap counts after every removal, until no swaps remain or more than
``ε·|r|`` tuples have been removed (in which case the candidate is declared
invalid).

Two well-documented weaknesses (Section 3.2):

* the runtime is ``O(n log n + ε·n²)`` — quadratic in the class size once
  removals start, which is what makes AOD discovery with this validator
  infeasible on larger datasets, and
* the removal set is **not** guaranteed minimal, so the approximation factor
  can be overestimated and borderline-valid AOCs are missed (Example 3.1:
  on Table 1 and ``sal ~ tax`` it removes 5 tuples where 4 suffice).

The implementation mirrors the paper's pseudo-code: initial swap counts come
from an ``O(m log m)`` Fenwick-tree sweep (the paper's inversion counting),
and each removal triggers an ``O(m)`` update pass over the remaining tuples.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.dataset.partition import PartitionCache
from repro.dataset.relation import Relation
from repro.dataset.sorting import projection, sort_class_asc_asc
from repro.dependencies.oc import CanonicalOC
from repro.validation.common import context_classes, removal_limit, validation_backend
from repro.validation.inversions import per_position_swap_counts
from repro.validation.result import ValidationResult


def _is_swap(a_first: int, b_first: int, a_second: int, b_second: int) -> bool:
    """Swap predicate on raw rank pairs: strictly opposite orders on A and B."""
    if a_first == a_second or b_first == b_second:
        return False
    return (a_first < a_second) != (b_first < b_second)


def class_greedy_removal(
    class_rows: Sequence[int],
    a_ranks: Sequence[int],
    b_ranks: Sequence[int],
    budget: Optional[int] = None,
) -> Tuple[List[int], bool]:
    """Greedy removal within one equivalence class (Algorithm 1, lines 3-15).

    Returns ``(removed_rows, exceeded)``: ``exceeded`` is set when the
    number of removals in this class alone would push the global removal set
    past ``budget`` (the caller passes the remaining global budget).
    """
    ordered = sort_class_asc_asc(class_rows, a_ranks, b_ranks)
    a_values = projection(ordered, a_ranks)
    b_values = projection(ordered, b_ranks)
    swap_counts = per_position_swap_counts(a_values, b_values)

    alive = list(range(len(ordered)))
    removed: List[int] = []
    while alive:
        # Pick the position with the largest swap count (the paper sorts
        # ascending and drops the last element; ties may be broken
        # arbitrarily — we take the last maximal position for determinism).
        best = max(alive, key=lambda position: (swap_counts[position], position))
        if swap_counts[best] == 0:
            break  # no swaps remain in this class (line 8)
        alive.remove(best)
        removed.append(ordered[best])
        if budget is not None and len(removed) > budget:
            return removed, True
        # Update swap counts of the remaining tuples (lines 9-11).
        for position in alive:
            if _is_swap(a_values[best], b_values[best],
                        a_values[position], b_values[position]):
                swap_counts[position] -= 1
    return removed, False


def iterative_removal_rows(
    classes: Sequence[Sequence[int]],
    a_ranks: Sequence[int],
    b_ranks: Sequence[int],
    limit: Optional[int] = None,
) -> Tuple[List[int], bool]:
    """Greedy removal rows for an AOC over pre-built context classes.

    ``limit`` is the global budget ``⌊ε·|r|⌋``; crossing it aborts with the
    ``exceeded`` flag set (the candidate is "INVALID"), exactly as in the
    paper's line 14.
    """
    removal: List[int] = []
    for class_rows in classes:
        budget = None if limit is None else limit - len(removal)
        removed, exceeded = class_greedy_removal(
            class_rows, a_ranks, b_ranks, budget
        )
        removal.extend(removed)
        if exceeded:
            return removal, True
    return removal, False


def validate_aoc_iterative(
    relation: Relation,
    oc: CanonicalOC,
    threshold: Optional[float] = None,
    partition_cache: Optional[PartitionCache] = None,
    backend=None,
) -> ValidationResult:
    """Validate an approximate OC with the iterative greedy baseline.

    The reported removal set makes the OC hold but may be larger than
    minimal, so the approximation factor may be overestimated (see
    Example 3.1 and Exp-4 of the paper).

    Examples
    --------
    >>> from repro.dataset.examples import employee_salary_table
    >>> from repro.dependencies import CanonicalOC
    >>> table = employee_salary_table()
    >>> result = validate_aoc_iterative(table, CanonicalOC([], "sal", "tax"))
    >>> result.removal_size  # the optimal validator removes only 4
    5
    """
    backend = validation_backend(backend, partition_cache)
    encoded = relation.encoded(backend)
    # Algorithm 1 is row-at-a-time on every backend: hand it the canonical
    # (cached) rank lists rather than converting native arrays per call.
    a_ranks = encoded.ranks(oc.a)
    b_ranks = encoded.ranks(oc.b)
    classes = context_classes(relation, oc.context, partition_cache, backend)
    limit = removal_limit(relation.num_rows, threshold)
    removal, exceeded = backend.oc_greedy_removal_rows(
        classes, a_ranks, b_ranks, limit
    )
    return ValidationResult(
        dependency=oc,
        num_rows=relation.num_rows,
        removal_rows=frozenset(removal),
        threshold=threshold,
        exceeded_threshold=exceeded,
    )
