"""Simulated distributed AOC validation (the paper's future work, §5).

The conclusions propose extending approximate OC discovery "to distributed
settings, similar to [Saxena, Golab, Ilyas, PVLDB 2019]".  The key
observation that makes this easy for canonical OCs is that equivalence
classes of the context are completely independent: each worker can validate
its share of the classes locally and ship only a removal *count* (or the
removal rows, for repair) to the coordinator, which adds them up and applies
the global threshold.

Because there is no real cluster in this reproduction, the workers are
simulated in-process: the point of the module is to exercise and test the
partitioning / merging logic (which classes go where, how counts combine,
when the coordinator can stop early), which is exactly the logic a real
deployment would need — only the transport is missing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.dataset.partition import PartitionCache
from repro.dataset.relation import Relation
from repro.dependencies.oc import CanonicalOC
from repro.validation.approx_oc_optimal import class_removal_rows
from repro.validation.common import context_classes, removal_limit
from repro.validation.result import ValidationResult


@dataclass
class WorkerReport:
    """What one simulated worker sends back to the coordinator."""

    worker_id: int
    num_classes: int
    num_rows: int
    removal_rows: List[int] = field(default_factory=list)

    @property
    def removal_count(self) -> int:
        return len(self.removal_rows)


@dataclass
class DistributedValidationOutcome:
    """Coordinator-side result of a distributed validation."""

    result: ValidationResult
    worker_reports: List[WorkerReport]

    @property
    def num_workers(self) -> int:
        return len(self.worker_reports)

    @property
    def max_worker_share(self) -> float:
        """Largest fraction of grouped rows assigned to a single worker —
        the load-balance metric a real deployment would monitor."""
        total = sum(report.num_rows for report in self.worker_reports)
        if total == 0:
            return 0.0
        return max(report.num_rows for report in self.worker_reports) / total


def assign_classes_to_workers(
    classes: Sequence[Sequence[int]], num_workers: int
) -> List[List[Sequence[int]]]:
    """Greedy longest-processing-time assignment of classes to workers.

    Classes are handed out largest-first to the currently least-loaded
    worker, the standard makespan heuristic; load is measured in
    ``m log m`` validation cost units.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be at least 1")
    assignments: List[List[Sequence[int]]] = [[] for _ in range(num_workers)]
    loads = [0.0] * num_workers
    ordered = sorted(classes, key=len, reverse=True)
    for class_rows in ordered:
        size = len(class_rows)
        cost = size * (1 + max(size, 2).bit_length())
        target = loads.index(min(loads))
        assignments[target].append(class_rows)
        loads[target] += cost
    return assignments


def validate_aoc_distributed(
    relation: Relation,
    oc: CanonicalOC,
    num_workers: int = 4,
    threshold: Optional[float] = None,
    partition_cache: Optional[PartitionCache] = None,
) -> DistributedValidationOutcome:
    """Validate an AOC with simulated workers; equivalent to Algorithm 2.

    Every worker runs the per-class LNDS kernel on its assigned classes and
    reports its removal rows; the coordinator merges the reports, applies
    the threshold and produces the same :class:`ValidationResult` the
    centralised validator would.
    """
    encoded = relation.encoded()
    a_ranks = encoded.ranks(oc.a)
    b_ranks = encoded.ranks(oc.b)
    classes = context_classes(relation, oc.context, partition_cache)
    assignments = assign_classes_to_workers(classes, num_workers)

    reports: List[WorkerReport] = []
    for worker_id, assigned in enumerate(assignments):
        removal: List[int] = []
        for class_rows in assigned:
            removal.extend(class_removal_rows(class_rows, a_ranks, b_ranks))
        reports.append(
            WorkerReport(
                worker_id=worker_id,
                num_classes=len(assigned),
                num_rows=sum(len(c) for c in assigned),
                removal_rows=removal,
            )
        )

    merged = frozenset(
        row for report in reports for row in report.removal_rows
    )
    limit = removal_limit(relation.num_rows, threshold)
    exceeded = limit is not None and len(merged) > limit
    result = ValidationResult(
        dependency=oc,
        num_rows=relation.num_rows,
        removal_rows=merged,
        threshold=threshold,
        exceeded_threshold=exceeded,
    )
    return DistributedValidationOutcome(result=result, worker_reports=reports)
