"""Distributed AOC validation (the paper's future work, §5).

The conclusions propose extending approximate OC discovery "to distributed
settings, similar to [Saxena, Golab, Ilyas, PVLDB 2019]".  The key
observation that makes this easy for canonical OCs is that equivalence
classes of the context are completely independent: each worker can validate
its share of the classes locally and ship only a removal *count* (or the
removal rows, for repair) to the coordinator, which adds them up and applies
the global threshold.

Two execution modes are provided for the single-candidate entry point:

* ``"simulated"`` — workers run in-process.  This exercises and tests the
  partitioning / merging logic (which classes go where, how counts combine)
  without any transport, and is deterministic and dependency-free.
* ``"process"`` — workers are real OS processes behind a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Each worker runs the
  configured compute backend's per-class kernels on its shard; the
  coordinator merges the reports exactly as in the simulated mode, so both
  modes (and every worker count) produce identical results.

The worker-resident column plane
--------------------------------

:class:`ShardedValidationPool` is the engine-facing variant: persistent
worker processes, each running a small message loop, validate whole context
groups (one shared context, many candidate rank pairs).  Groups below a
cost floor run in-process; larger ones split into contiguous,
cost-balanced class shards (``_plan_shards``) dispatched to the
least-loaded workers.  The coordinator merges per-shard removal counts by
summation, which is order-independent, so results are identical for every
worker count and scheduling mode.

What makes the pool pay off below ~100k rows is that rank columns are
*worker-resident*: each worker process keeps a cache of rank columns keyed
by ``(plane, version, attribute)``, so a column crosses the process
boundary **at most once per worker per dataset version** — group dispatches
after the first send only compact column *references* plus the shard's
class offsets (:class:`ClassShard`).  A :class:`ColumnPlane` is the
coordinator-side handle for one dataset's columns: it tracks the current
:class:`~repro.dataset.encoding.EncodedRelation` and version, and its
:meth:`ColumnPlane.apply_delta` integrates with incremental maintenance —
after :meth:`repro.discovery.session.Profiler.extend` the workers receive
only the appended-row deltas (mirroring ``EncodedRelation.extend``'s
``"appended"`` fast path), never a full re-broadcast; remapped columns are
dropped and re-shipped lazily on next use.

Dispatch is asynchronous: :meth:`ColumnPlane.submit` enqueues a group's
shard jobs and returns a :class:`PendingGroup` immediately;
:meth:`ColumnPlane.harvest` blocks until the group's shards are merged.
The discovery engine uses this seam to overlap coordinator-side work
(OFD validation, partition building, memo bookkeeping) with in-flight
worker validation — see ``repro.discovery.engine``.

The pool is a context manager and :meth:`ShardedValidationPool.close` is
idempotent.  Its owner is whoever constructed it: a
:class:`~repro.discovery.session.Profiler` session keeps one pool warm
across runs and closes it in ``Profiler.close()``; a standalone engine
spawns its own and shuts it down in the ``finally`` of its event stream, so
worker processes never outlive the run that needed them — including runs
that raise, get cancelled, or hit their time limit.

Self-healing
------------

A worker process is expendable: the byte-identity invariant guarantees any
shard can be recomputed anywhere, so the pool recovers from worker deaths
without changing results.  The coordinator *supervises* its workers — a
liveness check while waiting for results plus an exitcode sweep on every
dispatch — and when one dies (OOM kill, segfault, or a per-job timeout
treated as death) it

1. invalidates the dead worker's resident-column bookkeeping (the cache
   died with the process; a replacement refills lazily via the ordinary
   ship-on-miss path),
2. respawns a replacement into the same slot, and
3. *requeues* the dead worker's in-flight shards onto surviving workers
   under fresh job ids — ids are never reused, so a late result from a
   presumed-dead worker is dropped through the ``_discarded`` set exactly
   like an abandoned job's.

A shard that kills workers twice is *quarantined*: the coordinator
validates it in-process (the ``num_workers=1`` path), so a poison shard
degrades to serial execution instead of crash-looping the pool.  If
respawning fails repeatedly (the host refuses new processes), the pool
flips to in-process execution for the rest of its life (``degraded``).
Every recovery action is counted in ``stats`` (``worker_deaths``,
``respawns``, ``requeued_shards``, ``inline_fallbacks``,
``quarantined_shards``, ``worker_timeouts``) and surfaced per-run on
:class:`~repro.discovery.stats.DiscoveryStatistics` and on ``repro
serve``'s ``/healthz``.

:class:`FaultPlan` is the test-only fault-injection hook powering the
differential suite in ``tests/validation/test_fault_tolerance.py``: it can
kill a worker before or after its *k*-th job, drop a result message (the
worker stays alive and the job recovers through the timeout path), delay a
respawn, or refuse respawns outright.
"""

from __future__ import annotations

import os
import queue as queue_module
import time as time_module
import traceback
from dataclasses import dataclass, field
from itertools import chain
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.backend import BackendSpec, resolve_backend
from repro.dataset.encoding import EXTEND_APPENDED
from repro.dataset.partition import PartitionCache
from repro.dataset.relation import Relation
from repro.dependencies.oc import CanonicalOC
from repro.obs import get_logger, get_metrics, get_tracer
from repro.validation.common import context_classes, removal_limit, validation_backend
from repro.validation.result import ValidationResult

_log = get_logger("validation.pool")

#: Execution modes accepted by :func:`validate_aoc_distributed`.
EXECUTION_MODES = ("simulated", "process")

#: Exit code used by injected worker faults (recognisable in test output).
_FAULT_EXIT_CODE = 86

#: Worker tracebacks are truncated to this many characters before crossing
#: the result queue: a pathological repr (huge arrays in locals) must not
#: turn an error report into a multi-megabyte pickle.
MAX_TRACEBACK_CHARS = 8192

#: Default cost floor (in ``m log m`` units, see :func:`_class_cost`) below
#: which a whole context group is validated in-process at submission instead
#: of crossing the process boundary.  Overridable per pool (constructor),
#: per pool instance (attribute), or per submit (execution planner).
DEFAULT_INLINE_GROUP_COST = 32_768

#: Default minimum shard cost: a group splits into at most ``num_workers``
#: shards of no less than this.  Same three override channels as
#: :data:`DEFAULT_INLINE_GROUP_COST`.
DEFAULT_MIN_SHARD_COST = 65_536

#: Seconds a blocked harvest waits on the result queue between liveness
#: sweeps — the upper bound on how long a worker death can go unnoticed
#: while a coordinator thread is parked waiting for results.
LIVENESS_SWEEP_INTERVAL_SECONDS = 0.1

#: Pool recovery counters mirrored per-run onto
#: :class:`~repro.discovery.stats.DiscoveryStatistics` and aggregated on
#: ``/healthz``.
RESILIENCE_COUNTERS = (
    "worker_deaths",
    "respawns",
    "requeued_shards",
    "inline_fallbacks",
    "quarantined_shards",
    "worker_timeouts",
)


@dataclass
class WorkerFault:
    """Faults injected into one spawned worker process (test-only).

    Ordinals count the ``job`` messages the worker has processed, 0-based.
    ``exit_before_job`` hard-exits the process when that job arrives (the
    job is consumed and lost — the supervision path must requeue it);
    ``exit_after_job`` exits after the job's result has been flushed to the
    coordinator (death with no lost work — the dispatch sweep path);
    ``drop_result_for_job`` computes the job but never sends its result
    while the worker stays alive (a lost message — only the per-job
    timeout can recover it).
    """

    exit_before_job: Optional[int] = None
    exit_after_job: Optional[int] = None
    drop_result_for_job: Optional[int] = None


@dataclass
class FaultPlan:
    """Test-only fault injection for :class:`ShardedValidationPool`.

    ``worker_faults`` is keyed by *spawn sequence*: the initial workers are
    0..num_workers-1 and every respawn takes the next number, so a plan can
    deterministically target "the replacement of the first casualty"
    (needed to drive a shard into quarantine).  ``fail_respawns`` makes the
    first N respawn attempts raise (the degradation ladder);
    ``respawn_delay_seconds`` sleeps before each respawn.  ``on_event`` is
    an optional observer callback ``(event, detail)`` for tests that need
    to see supervision decisions as they happen.
    """

    worker_faults: Dict[int, WorkerFault] = field(default_factory=dict)
    respawn_delay_seconds: float = 0.0
    fail_respawns: int = 0
    on_event: Optional[Callable[[str, object], None]] = None

    def fault_for(self, seq: int) -> Optional[WorkerFault]:
        return self.worker_faults.get(seq)

    def notify(self, event: str, detail: object = None) -> None:
        if self.on_event is not None:
            self.on_event(event, detail)

    def on_respawn(self, slot: int) -> None:
        """Coordinator-side hook run before every respawn attempt."""
        if self.respawn_delay_seconds:
            time_module.sleep(self.respawn_delay_seconds)
        if self.fail_respawns > 0:
            self.fail_respawns -= 1
            raise RuntimeError(
                f"fault injection: respawn of worker slot {slot} refused"
            )


class WorkerJobError(RuntimeError):
    """A validation job failed inside a worker (or its inline fallback).

    Carries the structured error report the worker shipped across the
    result queue — plane id, dataset version, shard size, candidate pair
    names, and the (truncated) worker-side traceback — so callers can log
    and route the failure without parsing a string.
    """

    def __init__(self, report: Dict[str, object]) -> None:
        self.plane_id = report.get("plane_id")
        self.dataset_version = report.get("dataset_version")
        self.num_classes = report.get("num_classes")
        self.num_rows = report.get("num_rows")
        self.pair_names = report.get("pair_names")
        self.worker_traceback = report.get("traceback", "")
        super().__init__(
            "validation worker failed "
            f"(plane={self.plane_id}, dataset_version={self.dataset_version}, "
            f"shard={self.num_classes} classes / {self.num_rows} rows, "
            f"pairs={self.pair_names}):\n{self.worker_traceback}"
        )


def _error_report(plane_id, version, shard, pair_names) -> Dict[str, object]:
    """The structured payload of an ``("error", job_id, report)`` message."""
    formatted = traceback.format_exc()
    if len(formatted) > MAX_TRACEBACK_CHARS:
        formatted = (
            f"... ({len(formatted) - MAX_TRACEBACK_CHARS} chars truncated)\n"
            + formatted[-MAX_TRACEBACK_CHARS:]
        )
    try:
        num_classes = len(shard)
        num_rows = getattr(shard, "num_rows", None)
        if num_rows is None:
            num_rows = sum(len(rows) for rows in shard)
    except Exception:  # pragma: no cover - shard itself unusable
        num_classes = num_rows = -1
    return {
        "traceback": formatted,
        "plane_id": plane_id,
        "dataset_version": version,
        "num_classes": num_classes,
        "num_rows": num_rows,
        "pair_names": [tuple(pair) for pair in pair_names],
    }


@dataclass
class WorkerReport:
    """What one worker sends back to the coordinator."""

    worker_id: int
    num_classes: int
    num_rows: int
    removal_rows: List[int] = field(default_factory=list)

    @property
    def removal_count(self) -> int:
        return len(self.removal_rows)


@dataclass
class DistributedValidationOutcome:
    """Coordinator-side result of a distributed validation."""

    result: ValidationResult
    worker_reports: List[WorkerReport]

    @property
    def num_workers(self) -> int:
        return len(self.worker_reports)

    @property
    def max_worker_share(self) -> float:
        """Largest fraction of grouped rows assigned to a single worker —
        the load-balance metric a real deployment would monitor."""
        total = sum(report.num_rows for report in self.worker_reports)
        if total == 0:
            return 0.0
        return max(report.num_rows for report in self.worker_reports) / total


def _class_cost(class_rows: Sequence[int]) -> float:
    """Validation cost estimate of one class in ``m log m`` units."""
    size = len(class_rows)
    return size * (1 + max(size, 2).bit_length())


def assign_classes_to_workers(
    classes: Sequence[Sequence[int]], num_workers: int
) -> List[List[Sequence[int]]]:
    """Greedy longest-processing-time assignment of classes to workers.

    Classes are handed out largest-first to the currently least-loaded
    worker, the standard makespan heuristic; load is measured in
    ``m log m`` validation cost units.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be at least 1")
    assignments: List[List[Sequence[int]]] = [[] for _ in range(num_workers)]
    loads = [0.0] * num_workers
    ordered = sorted(classes, key=len, reverse=True)
    for class_rows in ordered:
        target = loads.index(min(loads))
        assignments[target].append(class_rows)
        loads[target] += _class_cost(class_rows)
    return assignments


# -- worker entry points (module-level so they pickle for process pools) --------


def _worker_removal_rows(backend, assigned, a_ranks, b_ranks) -> List[int]:
    """One worker's share of Algorithm 2: removal rows of its classes."""
    removal, _ = backend.oc_optimal_removal_rows(assigned, a_ranks, b_ranks, None)
    return removal


class ClassShard:
    """Compact, picklable transport of one worker's share of classes.

    The coordinator packs a shard's equivalence classes either as plain row
    lists (reference backend) or as two flat arrays — concatenated rows plus
    per-class lengths (*class offsets*) — whose binary pickle is a fraction
    of a list-of-lists'.  On the worker the shard quacks like a class
    sequence for the row-at-a-time kernels (``len`` / iteration) and exposes
    :meth:`columnar_view` for the vectorised NumPy kernels, which consume
    the flat arrays directly without ever materialising per-class lists.
    """

    __slots__ = ("_class_lists", "_rows", "_lengths", "_view")

    def __init__(self, class_lists=None, rows=None, lengths=None) -> None:
        self._class_lists = class_lists
        self._rows = rows
        self._lengths = lengths
        self._view = None

    @classmethod
    def pack(cls, class_lists: Sequence[Sequence[int]], as_arrays: bool) -> "ClassShard":
        """Pack classes for transport (``as_arrays`` for array backends)."""
        if not as_arrays:
            return cls(class_lists=[list(rows) for rows in class_lists])
        import numpy as np

        lengths = np.fromiter(
            (len(rows) for rows in class_lists), dtype=np.int64,
            count=len(class_lists),
        )
        total = int(lengths.sum())
        rows = np.fromiter(
            chain.from_iterable(class_lists), dtype=np.int32, count=total
        )
        return cls(rows=rows, lengths=lengths)

    def __len__(self) -> int:
        if self._class_lists is not None:
            return len(self._class_lists)
        return int(self._lengths.size)

    def __iter__(self):
        if self._class_lists is None:
            import numpy as np

            offsets = np.concatenate(([0], np.cumsum(self._lengths)))
            self._class_lists = [
                self._rows[offsets[i]:offsets[i + 1]].tolist()
                for i in range(self._lengths.size)
            ]
        return iter(self._class_lists)

    def columnar_view(self):
        """``(rows, class_ids, lengths)`` int64 arrays (the NumPy backend's
        flattened class layout — see ``NumpyBackend._columnar_classes``)."""
        if self._view is None:
            import numpy as np

            if self._rows is not None:
                rows = self._rows.astype(np.int64)
                lengths = self._lengths
            else:
                lengths = np.fromiter(
                    (len(rows) for rows in self._class_lists), dtype=np.int64,
                    count=len(self._class_lists),
                )
                rows = np.fromiter(
                    chain.from_iterable(self._class_lists), dtype=np.int64,
                    count=int(lengths.sum()),
                )
            class_ids = np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)
            self._view = (rows, class_ids, lengths)
        return self._view

    def __getstate__(self):
        return (self._class_lists, self._rows, self._lengths)

    def __setstate__(self, state) -> None:
        self._class_lists, self._rows, self._lengths = state
        self._view = None


def _extend_resident_column(column, appended_ranks):
    """Append delta ranks to a worker-resident column (list or ndarray)."""
    if isinstance(column, list):
        return column + list(appended_ranks)
    import numpy as np

    return np.concatenate(
        [column, np.asarray(appended_ranks, dtype=column.dtype)]
    )


def _materialize_column(column):
    """Decode a shipped column to its dense kernel form on the worker.

    Run-length transport (:class:`~repro.dataset.encoding.RunLengthColumn`)
    exists only on the wire: workers expand it on receipt, so the resident
    cache, the delta-append path and every kernel see dense columns only.
    """
    decode = getattr(column, "decode", None)
    if decode is not None and hasattr(column, "starts"):
        return decode()
    return column


class TracedOutcome:
    """A shard outcome with the worker's piggybacked timing spans.

    When a job message carries ``timing=True`` the worker wraps its result
    payload in one of these: ``outcome`` is the untouched kernel result
    (so merged counts — and therefore discovery results — are byte-identical
    with timing on or off), ``spans`` the plain span dicts
    (``{"name", "start", "end", "pid", ...}``) the coordinator re-parents
    under the dispatching span at harvest (see
    :meth:`repro.obs.trace.Tracer.attach_worker_spans`).
    """

    __slots__ = ("outcome", "spans")

    def __init__(self, outcome, spans) -> None:
        self.outcome = outcome
        self.spans = spans

    def __getstate__(self):
        return (self.outcome, self.spans)

    def __setstate__(self, state):
        self.outcome, self.spans = state


def _plane_worker_main(task_queue, result_queue, backend, fault=None) -> None:
    """Message loop of one persistent pool worker process.

    The worker keeps its column cache across jobs: ``columns`` maps
    ``(plane_id, attribute)`` to ``(version, column)``.  Job messages carry
    only the columns this worker does not already hold at the job's version;
    delta messages extend cached columns in place (the appended-rows fast
    path) or drop them (remapped / stale versions, re-shipped on next use).

    ``fault`` is a test-only :class:`WorkerFault` driving the
    fault-injection harness; production workers run with ``fault=None`` and
    pay only a ``None``-check per job.
    """
    columns: Dict[Tuple[int, str], Tuple[int, object]] = {}
    ordinal = 0
    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "stop":
            break
        if kind == "job":
            (_, job_id, plane_id, version, shard, pair_names, limit, shipped,
             timing) = message
            drop_result = exit_after = False
            if fault is not None:
                if fault.exit_before_job == ordinal:
                    os._exit(_FAULT_EXIT_CODE)
                drop_result = fault.drop_result_for_job == ordinal
                exit_after = fault.exit_after_job == ordinal
            ordinal += 1
            try:
                if plane_id is None:
                    resolved = {
                        name: _materialize_column(column)
                        for name, column in shipped.items()
                    }
                else:
                    for name, column in shipped.items():
                        columns[(plane_id, name)] = (
                            version, _materialize_column(column)
                        )
                    resolved = {}
                    for name in set(chain.from_iterable(pair_names)):
                        entry = columns.get((plane_id, name))
                        if entry is None or entry[0] != version:
                            raise RuntimeError(
                                f"worker is missing column {name!r} at "
                                f"dataset version {version} (coordinator "
                                "bookkeeping out of sync)"
                            )
                        resolved[name] = entry[1]
                pairs = [(resolved[a], resolved[b]) for a, b in pair_names]
                kernel_started = time_module.time() if timing else 0.0
                outcome = backend.oc_optimal_removal_count_batch(
                    shard, pairs, limit
                )
                if timing:
                    outcome = TracedOutcome(outcome, [{
                        "name": "shard-kernel",
                        "start": kernel_started,
                        "end": time_module.time(),
                        "pid": os.getpid(),
                        "num_pairs": len(pair_names),
                    }])
                if not drop_result:
                    result_queue.put(("result", job_id, outcome))
            except BaseException:
                result_queue.put((
                    "error", job_id,
                    _error_report(plane_id, version, shard, pair_names),
                ))
            if exit_after:
                # Flush the feeder thread so the result actually crosses
                # before the process vanishes (the "died after finishing"
                # scenario: the coordinator must consume the result, or
                # discard-and-recompute it, without hanging either way).
                result_queue.close()
                result_queue.join_thread()
                os._exit(_FAULT_EXIT_CODE)
        elif kind == "delta":
            _, plane_id, old_version, new_version, appended, _dropped = message
            for key in [k for k in columns if k[0] == plane_id]:
                version, column = columns[key]
                name = key[1]
                if version == old_version and name in appended:
                    columns[key] = (
                        new_version,
                        _extend_resident_column(column, appended[name]),
                    )
                else:
                    del columns[key]
        elif kind == "release":
            plane_id = message[1]
            for key in [k for k in columns if k[0] == plane_id]:
                del columns[key]


class _WorkerHandle:
    """Coordinator-side handle for one persistent worker process."""

    __slots__ = ("process", "queue", "columns", "load", "slot", "seq", "dead")

    def __init__(self, ctx, backend, result_queue, slot=0, seq=0, fault=None) -> None:
        self.queue = ctx.Queue()
        self.process = ctx.Process(
            target=_plane_worker_main,
            args=(self.queue, result_queue, backend, fault),
            daemon=True,
        )
        self.process.start()
        #: ``(plane_id, attribute) -> version`` the worker holds resident.
        self.columns: Dict[Tuple[int, str], int] = {}
        #: Estimated cost of the worker's in-flight shards (load balancing).
        self.load = 0.0
        #: Position in the pool's worker list a replacement respawns into.
        self.slot = slot
        #: Spawn sequence number (never reused; fault plans key on it).
        self.seq = seq
        #: Set by the supervisor once the death has been processed, so a
        #: handle is reaped exactly once.
        self.dead = False


class _JobRecord:
    """Coordinator-side state of one dispatched shard job.

    Everything needed to *re*-dispatch (or inline-run) the shard after a
    worker death travels with the record: the packed shard, the candidate
    pair names and limit, and either the plane (columns re-resolved through
    the ordinary ship-on-miss path) or the ad-hoc column dict.  ``job_id``
    changes on every (re)dispatch — ids are never reused, so a late result
    from a presumed-dead worker can always be told apart and discarded.
    """

    __slots__ = (
        "job_id", "worker", "cost", "shard", "pair_names", "limit",
        "plane", "version", "needed_names", "columns", "deaths",
        "dispatched_at", "dispatched_wall", "trace_parent", "timeout",
    )

    def __init__(self, shard, cost, pair_names, limit, plane, version,
                 needed_names, columns, timeout) -> None:
        self.job_id = -1
        self.worker: Optional[_WorkerHandle] = None
        self.cost = cost
        self.shard = shard
        self.pair_names = pair_names
        self.limit = limit
        self.plane = plane
        self.version = version
        self.needed_names = needed_names
        self.columns = columns
        self.deaths = 0
        self.dispatched_at = 0.0
        #: Wall-clock twin of ``dispatched_at`` (monotonic drives timeouts;
        #: the wall clock lines dispatch spans up with worker-side spans).
        self.dispatched_wall = 0.0
        #: Span id active at submission — the parent for this shard's
        #: dispatch span (survives requeues; the *last* dispatch is traced).
        self.trace_parent: Optional[int] = None
        self.timeout = timeout


@dataclass
class PendingGroup:
    """One in-flight context group: harvest (or abandon) to settle it.

    ``jobs`` holds one :class:`_JobRecord` per dispatched shard; merging is
    summation per pair, so harvest order never affects results.  A group
    too small to be worth a process round-trip is validated in-process at
    submission and carries its finished ``inline`` result instead.
    """

    num_pairs: int
    limit: Optional[int]
    jobs: List[_JobRecord] = field(default_factory=list)
    inline: Optional[List[Tuple[int, bool]]] = None


class ColumnPlane:
    """Coordinator-side handle for one dataset's worker-resident columns.

    A plane names a namespace inside a pool's worker caches: columns are
    keyed by ``(plane_id, attribute)`` and stamped with the plane's current
    ``version``.  :meth:`bind` points the plane at an encoding (a no-op when
    unchanged); :meth:`apply_delta` bumps the version after a row append,
    shipping only the appended ranks; :meth:`release` frees the resident
    columns when the dataset's session closes while the (shared) pool lives
    on.
    """

    def __init__(self, pool: "ShardedValidationPool", encoded=None) -> None:
        self._pool = pool
        self.plane_id = pool._register_plane()
        self.version = 0
        self._encoded = encoded
        self._released = False

    @property
    def pool(self) -> "ShardedValidationPool":
        return self._pool

    @property
    def num_rows(self) -> int:
        return 0 if self._encoded is None else self._encoded.num_rows

    def bind(self, encoded) -> None:
        """Point the plane at ``encoded``.

        Binding the encoding object the plane already tracks is free; a
        *different* object means the resident columns describe some other
        table state, so they are invalidated wholesale (the per-row delta
        path is :meth:`apply_delta`).
        """
        if self._encoded is encoded:
            return
        if self._encoded is not None:
            self._pool.invalidate_plane(self.plane_id)
            self.version += 1
        self._encoded = encoded

    def column(self, name: str):
        """The current native rank column for ``name``."""
        if self._encoded is None:
            raise RuntimeError("ColumnPlane is not bound to an encoding")
        return self._encoded.native_ranks(name)

    def transport_column(self, name: str):
        """The column in its cheapest transport form for worker shipping.

        Low-cardinality clustered columns come back run-length encoded
        (fewer bytes on the wire); workers materialise the dense form on
        receipt.  Encodings without transport support fall back to the
        dense native column.
        """
        if self._encoded is None:
            raise RuntimeError("ColumnPlane is not bound to an encoding")
        getter = getattr(self._encoded, "transport_ranks", None)
        if getter is None:
            return self._encoded.native_ranks(name)
        return getter(name)

    def apply_delta(self, extended, modes: Dict[str, str], old_num_rows: int) -> None:
        """Advance the plane to a delta-extended encoding.

        ``extended`` / ``modes`` are :meth:`EncodedRelation.extend`'s
        outputs.  Columns the extend *appended* to ship only their appended
        ranks — each worker patches its resident copy in place; *remapped*
        columns (and columns a worker holds at the wrong version) are
        dropped and re-shipped in full on next use.
        """
        appended = {
            name: extended.ranks(name)[old_num_rows:]
            for name, mode in modes.items()
            if mode == EXTEND_APPENDED
        }
        dropped = sorted(
            name for name, mode in modes.items() if mode != EXTEND_APPENDED
        )
        old_version = self.version
        self.version += 1
        self._pool.apply_plane_delta(
            self.plane_id, old_version, self.version, appended, dropped
        )
        self._encoded = extended

    def submit(
        self, classes, pair_names, limit: Optional[int] = None,
        timeout: Optional[float] = None,
        min_shard_cost: Optional[float] = None,
        inline_group_cost: Optional[float] = None,
    ) -> PendingGroup:
        """Dispatch one context group asynchronously (see pool docs)."""
        return self._pool.submit_oc_group(self, classes, pair_names, limit,
                                          timeout=timeout,
                                          min_shard_cost=min_shard_cost,
                                          inline_group_cost=inline_group_cost)

    def harvest(self, pending: PendingGroup) -> List[Tuple[int, bool]]:
        """Block until ``pending``'s shards merged; returns per-pair counts."""
        return self._pool.harvest(pending)

    def abandon(self, pending: PendingGroup) -> None:
        """Drop an in-flight group's results (interrupted runs)."""
        self._pool.abandon(pending)

    def oc_counts_batch(
        self, classes, pair_names, limit: Optional[int] = None,
        timeout: Optional[float] = None,
        min_shard_cost: Optional[float] = None,
        inline_group_cost: Optional[float] = None,
    ) -> List[Tuple[int, bool]]:
        """Synchronous submit + harvest convenience."""
        return self.harvest(self.submit(
            classes, pair_names, limit, timeout,
            min_shard_cost=min_shard_cost,
            inline_group_cost=inline_group_cost,
        ))

    def release(self) -> None:
        """Free this plane's worker-resident columns (idempotent)."""
        if self._released:
            return
        self._released = True
        if not self._pool.closed:
            self._pool.invalidate_plane(self.plane_id)


class ShardedValidationPool:
    """Persistent worker processes sharding batched OC validation by class.

    The discovery engine (or a :class:`~repro.discovery.session.Profiler`
    session, or ``repro serve`` across *all* its datasets) feeds the pool
    whole context groups.  A group below :data:`INLINE_GROUP_COST` is
    validated in-process; a larger one is split by :meth:`_plan_shards`
    into at most ``num_workers`` contiguous, cost-balanced class shards (no
    shard below :data:`MIN_SHARD_COST`) dispatched to the currently
    least-loaded workers — :func:`assign_classes_to_workers`'s LPT
    assignment serves only the single-candidate
    :func:`validate_aoc_distributed` path.  Every shard runs the backend's
    :meth:`~repro.backend.base.ComputeBackend.oc_optimal_removal_count_batch`
    and the coordinator sums the per-shard counts.  Summation is
    order-independent, so results are identical for every worker count and
    shard composition.

    A shard that exceeds ``limit`` on its own proves the candidate invalid,
    so ``limit`` is forwarded to the workers as a per-shard early-exit
    budget; the merged count for such a candidate is then a partial value
    above ``limit`` (permitted by the batch-kernel contract in
    ``repro.backend.base``).

    Rank columns travel through :class:`ColumnPlane` namespaces and stay
    resident in the worker processes (see the module docstring); the
    ``stats`` dict counts ``columns_shipped`` vs ``column_refs`` so callers
    can observe the ship-once behaviour.  :meth:`oc_counts_batch` remains as
    the plane-less path for ad-hoc column pairs: columns ship with every
    dispatch, exactly like the pre-plane pool.

    Dispatch and bookkeeping are guarded by one coordinator-side lock, so
    multiple threads may drive the pool concurrently (``repro serve``
    shares one pool across its per-dataset handler threads); blocking
    result waits happen *outside* the lock, so one dataset's harvest never
    stalls another's dispatch.
    """

    #: A shard whose worker died this many times is quarantined: validated
    #: on the coordinator instead of being re-dispatched a third time.
    QUARANTINE_AFTER_DEATHS = 2
    #: Respawn attempts per dead worker before the pool gives up on
    #: processes entirely and degrades to in-process execution.
    MAX_RESPAWN_ATTEMPTS = 3
    #: Liveness sweep interval used by blocked harvests; class-level default
    #: is :data:`LIVENESS_SWEEP_INTERVAL_SECONDS`.
    SWEEP_INTERVAL_SECONDS = LIVENESS_SWEEP_INTERVAL_SECONDS

    def __init__(
        self,
        num_workers: int,
        backend: BackendSpec = None,
        worker_timeout: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        inline_group_cost: Optional[float] = None,
        min_shard_cost: Optional[float] = None,
        sweep_interval: Optional[float] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        import multiprocessing
        import threading

        ctx = multiprocessing.get_context()
        self._ctx = ctx
        self.num_workers = num_workers
        self.backend = resolve_backend(backend)
        self._pack_arrays = self.backend.name == "numpy"
        #: Default per-job deadline in seconds (``None`` = wait forever); a
        #: job past it is treated as a worker death.  Overridable per
        #: dispatch, see :meth:`submit_oc_group`.
        self.worker_timeout = worker_timeout
        # Cost knobs: explicit constructor values become instance attributes
        # shadowing the class-level defaults, so both existing override
        # styles (class monkeypatch before lazy construction, instance
        # assignment after) keep working unchanged.
        if inline_group_cost is not None:
            self.INLINE_GROUP_COST = inline_group_cost
        if min_shard_cost is not None:
            self.MIN_SHARD_COST = min_shard_cost
        if sweep_interval is not None:
            self.SWEEP_INTERVAL_SECONDS = sweep_interval
        self._fault_plan = fault_plan
        self._next_worker_seq = 0
        self._result_queue = ctx.Queue()
        self._workers: Optional[List[_WorkerHandle]] = [
            self._spawn_handle(slot) for slot in range(num_workers)
        ]
        #: Buffered results for jobs harvested out of completion order.
        self._results: Dict[int, Tuple[str, object]] = {}
        #: Abandoned job ids whose results are dropped on arrival.
        self._discarded: set = set()
        #: ``job_id -> _JobRecord`` for every dispatched, unfinished job —
        #: the supervisor's view of what a dead worker owes.
        self._inflight: Dict[int, _JobRecord] = {}
        self._degraded = False
        #: Serialises dispatch bookkeeping (job ids, per-worker column
        #: sets, load accounting, queue puts) across coordinator threads.
        self._lock = threading.Lock()
        self._next_job_id = 0
        self._next_plane_id = 0
        self.stats: Dict[str, int] = {
            "groups": 0,
            "jobs": 0,
            "inline_groups": 0,
            "columns_shipped": 0,
            "columns_rle": 0,
            "column_refs": 0,
            "deltas": 0,
            "worker_deaths": 0,
            "respawns": 0,
            "requeued_shards": 0,
            "inline_fallbacks": 0,
            "quarantined_shards": 0,
            "worker_timeouts": 0,
        }

    def _spawn_handle(self, slot: int) -> _WorkerHandle:
        seq = self._next_worker_seq
        self._next_worker_seq += 1
        fault = self._fault_plan.fault_for(seq) if self._fault_plan else None
        return _WorkerHandle(
            self._ctx, self.backend, self._result_queue,
            slot=slot, seq=seq, fault=fault,
        )

    @property
    def closed(self) -> bool:
        """Whether the worker processes have been shut down."""
        return self._workers is None

    @property
    def degraded(self) -> bool:
        """Whether the pool has fallen back to in-process execution for
        the rest of its life (repeated respawn failure)."""
        return self._degraded

    def resilience_stats(self) -> Dict[str, object]:
        """Snapshot of the recovery counters plus the degraded flag —
        the block ``repro serve`` reports on ``/healthz``."""
        with self._lock:
            snapshot: Dict[str, object] = {
                key: self.stats.get(key, 0) for key in RESILIENCE_COUNTERS
            }
            snapshot["degraded"] = self._degraded
        return snapshot

    def _require_open(self) -> None:
        if self._workers is None:
            raise RuntimeError("ShardedValidationPool is closed")

    # -- column planes -----------------------------------------------------------

    def _register_plane(self) -> int:
        with self._lock:
            self._next_plane_id += 1
            return self._next_plane_id

    def new_plane(self, encoded=None) -> ColumnPlane:
        """Create a :class:`ColumnPlane` namespace over this pool."""
        self._require_open()
        return ColumnPlane(self, encoded)

    def apply_plane_delta(
        self, plane_id: int, old_version: int, new_version: int,
        appended: Dict[str, Sequence[int]], dropped: Sequence[str],
    ) -> None:
        """Ship a dataset delta to every worker (see
        :meth:`ColumnPlane.apply_delta`) and patch the coordinator's
        per-worker bookkeeping to match what each worker will hold."""
        self._require_open()
        appended = {name: list(values) for name, values in appended.items()}
        message = ("delta", plane_id, old_version, new_version, appended,
                   list(dropped))
        with self._lock:
            self.stats["deltas"] += 1
            for worker in self._workers:
                for key in [k for k in worker.columns if k[0] == plane_id]:
                    if worker.columns[key] == old_version and key[1] in appended:
                        worker.columns[key] = new_version
                    else:
                        del worker.columns[key]
                worker.queue.put(message)

    def invalidate_plane(self, plane_id: int) -> None:
        """Drop a plane's resident columns on every worker (idempotent)."""
        if self._workers is None:
            return
        with self._lock:
            for worker in self._workers:
                for key in [k for k in worker.columns if k[0] == plane_id]:
                    del worker.columns[key]
                worker.queue.put(("release", plane_id))

    # -- group dispatch ----------------------------------------------------------

    #: Context groups cheaper than this (in ``m log m`` cost units) are
    #: validated in-process at submission: the process round-trip would
    #: cost more than the kernel itself.
    INLINE_GROUP_COST = DEFAULT_INLINE_GROUP_COST
    #: Minimum shard cost: a group splits into at most ``num_workers``
    #: shards of no less than this, so modest groups stay one message and
    #: parallelism comes from having many groups in flight.
    MIN_SHARD_COST = DEFAULT_MIN_SHARD_COST

    def submit_oc_group(
        self, plane: ColumnPlane, classes, pair_names,
        limit: Optional[int] = None, timeout: Optional[float] = None,
        min_shard_cost: Optional[float] = None,
        inline_group_cost: Optional[float] = None,
    ) -> PendingGroup:
        """Dispatch one context group's shards without waiting.

        ``pair_names`` lists ``(a_attribute, b_attribute)`` per candidate;
        the columns themselves are resolved through ``plane`` and ship only
        to workers that do not already hold them at the plane's version.
        Returns immediately with a :class:`PendingGroup`;
        :meth:`harvest` joins it.  Groups below :data:`INLINE_GROUP_COST`
        are validated in-process instead and return already settled.

        ``timeout`` overrides the pool's ``worker_timeout`` for this
        group's jobs (seconds per job; ``None`` inherits the pool default);
        ``min_shard_cost`` / ``inline_group_cost`` override the pool's cost
        knobs for this group only (the execution planner's channel).
        """
        self._require_open()
        pending = PendingGroup(num_pairs=len(pair_names), limit=limit)
        if pending.num_pairs == 0:
            return pending
        inline_floor = inline_group_cost if inline_group_cost is not None \
            else self.INLINE_GROUP_COST
        shards, total_cost, needed_row = self._plan_shards(
            classes, min_shard_cost=min_shard_cost
        )
        needed_names = sorted(set(chain.from_iterable(pair_names)))
        for name in needed_names:
            # The guard runs on the transport form: a RunLengthColumn's
            # length is its *decoded* row count, so a run-encoded column
            # captured before an append is refused exactly like a short
            # dense one (and re-shipped from the refreshed encoding).
            self._assert_column_covers(
                plane.transport_column(name), needed_row, name
            )
        if not shards:
            return pending
        if self._degraded or total_cost < inline_floor:
            pairs = [
                (plane.column(a), plane.column(b)) for a, b in pair_names
            ]
            pending.inline = self.backend.oc_optimal_removal_count_batch(
                classes, pairs, limit
            )
            if self._degraded and total_cost >= inline_floor:
                with self._lock:
                    self.stats["inline_fallbacks"] += 1
            else:
                self.stats["inline_groups"] += 1
            return pending
        resolved_timeout = timeout if timeout is not None else self.worker_timeout
        records = [
            _JobRecord(
                shard, cost, list(pair_names), limit, plane, plane.version,
                needed_names, None, resolved_timeout,
            )
            for shard, cost in shards
        ]
        self._dispatch_records(pending, records)
        return pending

    def oc_counts_batch(
        self,
        classes: Sequence[Sequence[int]],
        rank_pairs: Sequence[Tuple[object, object]],
        limit: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> List[Tuple[int, bool]]:
        """Batched minimal-removal counts for ad-hoc rank columns.

        The plane-less path: columns are deduplicated within the call but
        ship with every dispatch (and every group is dispatched, however
        small).  Kept for callers outside a discovery session, and as the
        reference for the plane path's results."""
        self._require_open()
        num_pairs = len(rank_pairs)
        if num_pairs == 0:
            return []
        self._check_column_freshness(classes, rank_pairs)
        columns: Dict[str, object] = {}
        name_of: Dict[int, str] = {}
        pair_names: List[Tuple[str, str]] = []
        for a_ranks, b_ranks in rank_pairs:
            refs = []
            for ranks in (a_ranks, b_ranks):
                key = id(ranks)
                if key not in name_of:
                    name_of[key] = f"c{len(name_of)}"
                    columns[name_of[key]] = ranks
                refs.append(name_of[key])
            pair_names.append((refs[0], refs[1]))
        pending = PendingGroup(num_pairs=num_pairs, limit=limit)
        shards, _, _ = self._plan_shards(list(classes))
        resolved_timeout = timeout if timeout is not None else self.worker_timeout
        records = [
            _JobRecord(
                shard, cost, pair_names, limit, None, 0,
                sorted(columns), columns, resolved_timeout,
            )
            for shard, cost in shards
        ]
        self._dispatch_records(pending, records)
        return self.harvest(pending)

    def _plan_shards(self, classes, min_shard_cost: Optional[float] = None):
        """Pack ``classes`` into cost-balanced contiguous shards.

        Returns ``(shards, total_cost, needed_row)`` where ``shards`` is a
        list of ``(ClassShard, cost)`` pairs and ``needed_row`` the largest
        row id any class touches (``-1`` for empty groups).  Contiguous
        class ranges — rather than the LPT assignment the per-candidate
        validator uses — keep the packing a pair of array slices on the
        columnar fast path; summation merging makes the composition
        invisible in results.  ``min_shard_cost`` overrides the pool's
        shard-cost floor for this plan only; any composition yields the
        same merged counts.
        """
        shard_floor = min_shard_cost if min_shard_cost is not None \
            else self.MIN_SHARD_COST
        if self._pack_arrays:
            return self._plan_shards_arrays(classes, shard_floor)
        class_lists = classes.classes if hasattr(classes, "classes") \
            else list(classes)
        if not class_lists:
            return [], 0.0, -1
        needed_row = -1
        costs = []
        for rows in class_lists:
            costs.append(_class_cost(rows))
            if len(rows) and rows[-1] > needed_row:
                needed_row = rows[-1]
        total = float(sum(costs))
        target = max(total / self.num_workers, float(shard_floor))
        shards: List[Tuple[ClassShard, float]] = []
        chunk: List[Sequence[int]] = []
        acc = 0.0
        for rows, cost in zip(class_lists, costs):
            chunk.append(rows)
            acc += cost
            if acc >= target and len(shards) < self.num_workers - 1:
                shards.append((ClassShard.pack(chunk, False), acc))
                chunk, acc = [], 0.0
        if chunk:
            shards.append((ClassShard.pack(chunk, False), acc))
        return shards, total, needed_row

    def _plan_shards_arrays(self, classes, shard_floor: float):
        """Columnar shard planning: two array slices per shard.

        Reuses (and caches) the partition's flattened columnar view, so
        planning a group is a handful of vector operations instead of a
        Python pass over every class.
        """
        import numpy as np

        # The backend's columnar view: for a CSR Partition this is derived
        # straight from (and cached on) the flat offset arrays, for a
        # ClassShard its pre-flattened arrays — no per-class Python lists
        # on any of the engine-facing paths.
        rows, _, lengths = self.backend._columnar_classes(classes)
        if lengths.size == 0:
            return [], 0.0, -1
        needed_row = int(rows.max()) if rows.size else -1
        # Vectorised _class_cost: m * (1 + bit_length(max(m, 2))).
        costs = lengths * (np.floor(np.log2(np.maximum(lengths, 2))) + 2.0)
        cum = np.cumsum(costs)
        total = float(cum[-1])
        num_shards = min(
            self.num_workers,
            max(1, -(-int(total) // max(int(shard_floor), 1))),
        )
        if num_shards > 1:
            targets = total * np.arange(1, num_shards) / num_shards
            cuts = np.unique(np.searchsorted(cum, targets, side="left") + 1)
            edges = [0] + [c for c in cuts.tolist() if c < lengths.size] \
                + [int(lengths.size)]
        else:
            edges = [0, int(lengths.size)]
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        shards: List[Tuple[ClassShard, float]] = []
        for a, b in zip(edges[:-1], edges[1:]):
            if a == b:
                continue
            shard = ClassShard(
                rows=rows[offsets[a]:offsets[b]].astype(np.int32),
                lengths=lengths[a:b].copy(),
            )
            cost = float(cum[b - 1] - (cum[a - 1] if a else 0.0))
            shards.append((shard, cost))
        return shards, total, needed_row

    def _dispatch_records(self, pending: PendingGroup, records) -> None:
        if not records:
            return
        # One critical section per group: the column bookkeeping below must
        # not interleave with another thread's dispatch, or a job could be
        # enqueued behind a "shipped" marker whose payload races it.  The
        # sweep runs first so no job is handed to an already-dead worker.
        tracer = get_tracer()
        if tracer.enabled:
            # Capture the submit-site span (oc-submit / oc-batch) as the
            # parent for every shard-dispatch span of this group.
            parent = tracer.current_span_id()
            for record in records:
                record.trace_parent = parent
        with self._lock:
            self._sweep_locked()
            self.stats["groups"] += 1
            get_metrics().counter("repro_pool_groups_total").inc()
            for record in records:
                pending.jobs.append(record)
                if self._degraded:
                    self._run_record_inline_locked(record)
                else:
                    self._dispatch_record_locked(record)

    def _dispatch_record_locked(self, record: _JobRecord) -> None:
        """Hand one shard job to the least-loaded live worker (lock held)."""
        worker = min(
            (w for w in self._workers if not w.dead), key=lambda w: w.load
        )
        if record.plane is not None:
            plane = record.plane
            plane_id = plane.plane_id
            shipped: Dict[str, object] = {}
            for name in record.needed_names:
                key = (plane_id, name)
                if worker.columns.get(key) != record.version:
                    column = plane.transport_column(name)
                    shipped[name] = column
                    worker.columns[key] = record.version
                    self.stats["columns_shipped"] += 1
                    if hasattr(column, "starts"):
                        self.stats["columns_rle"] += 1
                else:
                    self.stats["column_refs"] += 1
        else:
            plane_id = None
            shipped = record.columns
        job_id = self._next_job_id
        self._next_job_id += 1
        record.job_id = job_id
        record.worker = worker
        record.dispatched_at = time_module.monotonic()
        record.dispatched_wall = time_module.time()
        # Workers cannot see the coordinator's tracer/registry singletons
        # (no fork-state assumption), so the timing opt-in travels on the
        # job message itself.
        timing = get_tracer().enabled or get_metrics().enabled
        worker.queue.put((
            "job", job_id, plane_id, record.version, record.shard,
            record.pair_names, record.limit, shipped, timing,
        ))
        worker.load += record.cost
        self._inflight[job_id] = record
        self.stats["jobs"] += 1
        get_metrics().counter("repro_pool_jobs_total").inc()

    # -- supervision -------------------------------------------------------------

    def _sweep_locked(self) -> None:
        """Reap timed-out and dead workers; requeue their in-flight shards.

        Runs on every dispatch (the exitcode sweep) and on every idle tick
        of a result wait (the liveness check), always under the lock.
        """
        if self._workers is None:
            return
        now = time_module.monotonic()
        for record in list(self._inflight.values()):
            worker = record.worker
            if (
                record.timeout is not None
                and worker is not None
                and not worker.dead
                and now - record.dispatched_at > record.timeout
                and worker.process.is_alive()
            ):
                # A job past its deadline is indistinguishable from a
                # wedged worker (or a lost result message): retire the
                # process and let the death path below recover the shard.
                worker.process.terminate()
                worker.process.join(timeout=5.0)
                self.stats["worker_timeouts"] += 1
                get_metrics().counter("repro_pool_worker_timeouts_total").inc()
                _log.warning(
                    "pool worker seq=%s exceeded the %.1fs job timeout on "
                    "job %s; terminating it (the shard will be recovered)",
                    worker.seq, record.timeout, record.job_id,
                )
                if self._fault_plan is not None:
                    self._fault_plan.notify("timeout", record.job_id)
        for worker in list(self._workers):
            if not worker.dead and not worker.process.is_alive():
                self._handle_worker_death_locked(worker)

    def _handle_worker_death_locked(self, worker: _WorkerHandle) -> None:
        """Recover from one worker death: invalidate, respawn, requeue."""
        worker.dead = True
        worker.load = 0.0
        # The resident-column cache died with the process; a replacement
        # refills lazily through the ordinary ship-on-miss path.
        worker.columns.clear()
        self.stats["worker_deaths"] += 1
        get_metrics().counter("repro_pool_worker_deaths_total").inc()
        if self._fault_plan is not None:
            self._fault_plan.notify("worker_death", worker.seq)
        orphans = [r for r in self._inflight.values() if r.worker is worker]
        _log.warning(
            "pool worker seq=%s (slot %s) died with exitcode %s; "
            "recovering %d in-flight shard(s)",
            worker.seq, worker.slot, worker.process.exitcode, len(orphans),
        )
        for record in orphans:
            del self._inflight[record.job_id]
            # The dead worker may have flushed a result just before dying;
            # the fresh dispatch below gets a new id, so the stale one is
            # dropped on arrival exactly like an abandoned job's.
            self._discarded.add(record.job_id)
            record.worker = None
            record.deaths += 1
        if not self._degraded:
            self._respawn_locked(worker.slot)
        for record in orphans:
            if not self._degraded and record.deaths < self.QUARANTINE_AFTER_DEATHS:
                self._dispatch_record_locked(record)
                self.stats["requeued_shards"] += 1
                get_metrics().counter("repro_pool_requeued_shards_total").inc()
            else:
                self._run_record_inline_locked(
                    record,
                    quarantined=record.deaths >= self.QUARANTINE_AFTER_DEATHS,
                )

    def _respawn_locked(self, slot: int) -> Optional[_WorkerHandle]:
        """Respawn a replacement into ``slot``; degrade the pool if the
        host keeps refusing new processes."""
        for _attempt in range(self.MAX_RESPAWN_ATTEMPTS):
            try:
                if self._fault_plan is not None:
                    self._fault_plan.on_respawn(slot)
                handle = self._spawn_handle(slot)
            except BaseException:
                _log.warning(
                    "respawn attempt %d/%d for pool slot %s failed",
                    _attempt + 1, self.MAX_RESPAWN_ATTEMPTS, slot,
                )
                continue
            self._workers[slot] = handle
            self.stats["respawns"] += 1
            get_metrics().counter("repro_pool_respawns_total").inc()
            _log.info(
                "respawned pool worker into slot %s (seq=%s)",
                slot, handle.seq,
            )
            if self._fault_plan is not None:
                self._fault_plan.notify("respawn", handle.seq)
            return handle
        self._degrade_locked()
        return None

    def _degrade_locked(self) -> None:
        """Flip the pool to in-process execution for the rest of its life.

        Jobs already in flight on *surviving* workers are left to finish
        normally — only new dispatches (and the dead worker's orphans,
        handled by the caller) run on the coordinator.
        """
        if self._degraded:
            return
        self._degraded = True
        _log.warning(
            "validation pool degraded to in-process execution for the rest "
            "of its life (host kept refusing worker respawns)"
        )
        get_metrics().gauge("repro_pool_degraded").set(1)
        if self._fault_plan is not None:
            self._fault_plan.notify("degraded", None)

    def _run_record_inline_locked(
        self, record: _JobRecord, quarantined: bool = False
    ) -> None:
        """Validate one shard on the coordinator and buffer its result.

        The last rung of the recovery ladder: quarantined (twice-fatal)
        shards and every shard of a degraded pool take this path, which is
        exactly the ``num_workers=1`` computation — byte-identical results,
        just without the parallelism.
        """
        try:
            if record.plane is not None:
                resolved = {
                    name: record.plane.column(name)
                    for name in record.needed_names
                }
            else:
                resolved = {
                    name: _materialize_column(column)
                    for name, column in record.columns.items()
                }
            pairs = [(resolved[a], resolved[b]) for a, b in record.pair_names]
            outcome = self.backend.oc_optimal_removal_count_batch(
                record.shard, pairs, record.limit
            )
            payload: Tuple[str, object] = ("result", outcome)
        except BaseException:
            payload = ("error", _error_report(
                record.plane.plane_id if record.plane is not None else None,
                record.version, record.shard, record.pair_names,
            ))
        job_id = self._next_job_id
        self._next_job_id += 1
        record.job_id = job_id
        record.worker = None
        self._results[job_id] = payload
        self.stats["inline_fallbacks"] += 1
        get_metrics().counter("repro_pool_inline_fallbacks_total").inc()
        if quarantined:
            self.stats["quarantined_shards"] += 1
            get_metrics().counter("repro_pool_quarantined_shards_total").inc()
            _log.warning(
                "shard quarantined after %d worker death(s); validated on "
                "the coordinator instead of a third dispatch",
                record.deaths,
            )
            if self._fault_plan is not None:
                self._fault_plan.notify("quarantine", record.job_id)

    # -- harvesting --------------------------------------------------------------

    def harvest(self, pending: PendingGroup) -> List[Tuple[int, bool]]:
        """Merge one pending group's shard results (blocking).

        Per-pair counts are summed across shards; the exceeded flag is set
        when any shard proved the budget blown or the merged total does."""
        self._require_open()
        if pending.inline is not None:
            return pending.inline
        totals = [0] * pending.num_pairs
        exceeded = [False] * pending.num_pairs
        jobs, pending.jobs = pending.jobs, []
        for position, record in enumerate(jobs):
            try:
                payload = self._wait_result(record)
            except BaseException:
                # Settle the whole group before propagating: the failed
                # job's load, and every remaining job's load and eventual
                # result, must not leak into later runs on this pool.
                self._settle_jobs(jobs[position:])
                raise
            with self._lock:
                if record.worker is not None:
                    record.worker.load -= record.cost
                    record.worker = None
            payload = self._observe_harvest(record, payload)
            for index, (count, over) in enumerate(payload):
                totals[index] += count
                exceeded[index] = exceeded[index] or over
        if pending.limit is not None:
            exceeded = [
                over or total > pending.limit
                for total, over in zip(totals, exceeded)
            ]
        return list(zip(totals, exceeded))

    def _observe_harvest(self, record: _JobRecord, payload):
        """Unwrap piggybacked worker timing; record spans and latencies.

        Returns the bare kernel outcome either way — observability wraps
        the transport, never the numbers.  Shards recovered inline (their
        ``dispatched_wall`` is 0.0 unless a worker dispatch preceded the
        recovery) simply carry no worker spans.
        """
        spans = None
        if isinstance(payload, TracedOutcome):
            spans = payload.spans
            payload = payload.outcome
        if record.dispatched_wall:
            registry = get_metrics()
            if registry.enabled:
                registry.histogram("repro_pool_round_trip_seconds").observe(
                    time_module.monotonic() - record.dispatched_at
                )
                if spans:
                    registry.histogram(
                        "repro_pool_queue_wait_seconds"
                    ).observe(
                        max(0.0, spans[0]["start"] - record.dispatched_wall)
                    )
            tracer = get_tracer()
            if tracer.enabled:
                shard_span = tracer.record_span(
                    "shard-dispatch",
                    record.dispatched_wall, time_module.time(),
                    parent=record.trace_parent,
                    job_id=record.job_id,
                    cost=round(record.cost, 1),
                    deaths=record.deaths,
                )
                if spans:
                    tracer.attach_worker_spans(spans, shard_span)
        return payload

    def abandon(self, pending: PendingGroup) -> None:
        """Give up on a pending group (idempotent; interrupted runs).

        In-flight shard results are dropped when they arrive, so an
        abandoned level never poisons a later harvest."""
        jobs, pending.jobs = pending.jobs, []
        self._settle_jobs(jobs)

    def _settle_jobs(self, jobs) -> None:
        """Release load accounting and discard the eventual results of jobs
        that will never be (fully) harvested."""
        with self._lock:
            for record in jobs:
                if record.worker is not None:
                    record.worker.load -= record.cost
                    record.worker = None
                if record.job_id in self._results:
                    del self._results[record.job_id]
                elif record.job_id in self._inflight:
                    del self._inflight[record.job_id]
                    self._discarded.add(record.job_id)

    def _wait_result(self, record: _JobRecord):
        # Another harvesting thread may pull this job's message off the
        # shared result queue and buffer it, so the buffer is rechecked on
        # a short poll.  All buffer mutations happen under the lock, and
        # the discarded-check runs at *store* time inside it, so a result
        # arriving concurrently with abandon() is either dropped here or
        # deleted by _settle_jobs — never leaked.
        #
        # ``record.job_id`` is re-read under the lock on every pass: a
        # supervision sweep may requeue (or inline-run) the job under a
        # fresh id while this thread waits, in which case the result shows
        # up in the buffer like any out-of-order arrival.
        kind = payload = None
        found = False
        while not found:
            with self._lock:
                if record.job_id in self._results:
                    kind, payload = self._results.pop(record.job_id)
                    break
            try:
                arrived = self._result_queue.get(
                    timeout=self.SWEEP_INTERVAL_SECONDS
                )
            except queue_module.Empty:
                # Idle tick: the liveness check.  A dead worker's shards
                # are requeued (or run inline) by the sweep, so this wait
                # always terminates — through a replacement worker, the
                # coordinator itself, or a raised respawn failure.
                with self._lock:
                    self._sweep_locked()
                continue
            with self._lock:
                arrived_kind, arrived_id, arrived_payload = arrived
                self._inflight.pop(arrived_id, None)
                if arrived_id in self._discarded:
                    self._discarded.discard(arrived_id)
                elif arrived_id == record.job_id:
                    kind, payload = arrived_kind, arrived_payload
                    found = True
                else:
                    self._results[arrived_id] = (arrived_kind, arrived_payload)
        if kind == "error":
            if isinstance(payload, dict):
                raise WorkerJobError(payload)
            raise RuntimeError(f"validation worker failed:\n{payload}")
        return payload

    # -- freshness guards --------------------------------------------------------

    @staticmethod
    def _needed_row(classes) -> int:
        flat = getattr(classes, "row_indices", None)
        if flat is not None:
            # CSR partition: one pass over the flat row vector (classes are
            # first-row ordered, so the last *element* is not the maximum).
            if len(flat) == 0:
                return -1
            return int(flat.max()) if hasattr(flat, "max") else max(flat)
        needed = -1
        for rows in classes:
            if len(rows) and rows[-1] > needed:
                needed = rows[-1]
        return needed

    @staticmethod
    def _assert_column_covers(column, needed_row: int, name: str = "") -> None:
        """The single stale-column rule both dispatch paths enforce."""
        if needed_row < 0 or len(column) > needed_row:
            return
        label = f" {name!r}" if name else ""
        raise RuntimeError(
            f"stale rank column{label}: {len(column)} entries cannot "
            f"cover row {needed_row}; the encoded relation grew "
            "after this column was captured — refresh columns "
            "from the current encoding before revalidating"
        )

    @staticmethod
    def _check_column_freshness(classes, rank_pairs) -> None:
        """Refuse to ship rank columns shorter than the rows they must cover.

        A pool outlives discovery runs — and, with incremental maintenance,
        dataset *versions*: after ``Profiler.extend`` the encoded relation
        has more rows, and any stale column captured before the append
        would silently index out of range (or worse, wrap around) on the
        workers.  Class row lists are sorted, so the last row of each class
        is its maximum; every column must cover the overall maximum.
        """
        needed = ShardedValidationPool._needed_row(classes)
        for a_ranks, b_ranks in rank_pairs:
            for ranks in (a_ranks, b_ranks):
                ShardedValidationPool._assert_column_covers(ranks, needed)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut the worker processes down (idempotent).

        Bounded by construction: stop messages are non-blocking, the
        result-queue drain and every join carry a timeout, stragglers are
        terminated (then killed), and the queues' feeder threads are
        detached — a wedged worker can never hang interpreter shutdown.
        """
        if self._workers is None:
            return
        workers, self._workers = self._workers, None
        for worker in workers:
            try:
                worker.queue.put_nowait(("stop",))
            except (OSError, ValueError, queue_module.Full):
                pass  # pragma: no cover - teardown race / wedged queue
        # Drain straggling results so worker feeder threads never block on a
        # full pipe while trying to exit (abandoned jobs still produce
        # results nobody reads).
        deadline = time_module.monotonic() + 10.0
        while any(w.process.is_alive() for w in workers):
            if time_module.monotonic() > deadline:
                break
            try:
                self._result_queue.get(timeout=0.05)
            except queue_module.Empty:
                pass
        for worker in workers:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - unkillable
                kill = getattr(worker.process, "kill", None)
                if kill is not None:
                    kill()
                    worker.process.join(timeout=1.0)
            worker.queue.close()
            worker.queue.cancel_join_thread()
        self._result_queue.close()
        self._result_queue.cancel_join_thread()
        self._results.clear()
        self._discarded.clear()
        self._inflight.clear()

    def __enter__(self) -> "ShardedValidationPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def validate_aoc_distributed(
    relation: Relation,
    oc: CanonicalOC,
    num_workers: int = 4,
    threshold: Optional[float] = None,
    partition_cache: Optional[PartitionCache] = None,
    backend: BackendSpec = None,
    execution: str = "simulated",
) -> DistributedValidationOutcome:
    """Validate an AOC with distributed workers; equivalent to Algorithm 2.

    Every worker runs the per-class LNDS kernel on its assigned classes and
    reports its removal rows; the coordinator merges the reports, applies
    the threshold and produces the same :class:`ValidationResult` the
    centralised validator would.

    ``backend`` selects the compute backend the workers run on; like
    :func:`~repro.validation.common.validation_backend`, it defaults to the
    supplied partition cache's backend so discovery-driven validations stay
    on one backend.  ``execution`` picks the transport: ``"simulated"``
    (in-process workers) or ``"process"`` (a real
    :class:`~concurrent.futures.ProcessPoolExecutor`); both produce
    identical outcomes.
    """
    if execution not in EXECUTION_MODES:
        raise ValueError(
            f"execution must be one of {EXECUTION_MODES}, got {execution!r}"
        )
    resolved = validation_backend(backend, partition_cache)
    encoded = relation.encoded(resolved)
    a_ranks = encoded.native_ranks(oc.a)
    b_ranks = encoded.native_ranks(oc.b)
    classes = context_classes(relation, oc.context, partition_cache, resolved)
    assignments = assign_classes_to_workers(list(classes), num_workers)

    if execution == "process":
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=num_workers) as executor:
            futures = [
                executor.submit(
                    _worker_removal_rows, resolved, assigned, a_ranks, b_ranks
                )
                for assigned in assignments
            ]
            removals = [future.result() for future in futures]
    else:
        removals = [
            _worker_removal_rows(resolved, assigned, a_ranks, b_ranks)
            for assigned in assignments
        ]

    reports = [
        WorkerReport(
            worker_id=worker_id,
            num_classes=len(assigned),
            num_rows=sum(len(c) for c in assigned),
            removal_rows=removal,
        )
        for worker_id, (assigned, removal) in enumerate(zip(assignments, removals))
    ]

    merged = frozenset(
        row for report in reports for row in report.removal_rows
    )
    limit = removal_limit(relation.num_rows, threshold)
    exceeded = limit is not None and len(merged) > limit
    result = ValidationResult(
        dependency=oc,
        num_rows=relation.num_rows,
        removal_rows=merged,
        threshold=threshold,
        exceeded_threshold=exceeded,
    )
    return DistributedValidationOutcome(result=result, worker_reports=reports)
