"""Distributed AOC validation (the paper's future work, §5).

The conclusions propose extending approximate OC discovery "to distributed
settings, similar to [Saxena, Golab, Ilyas, PVLDB 2019]".  The key
observation that makes this easy for canonical OCs is that equivalence
classes of the context are completely independent: each worker can validate
its share of the classes locally and ship only a removal *count* (or the
removal rows, for repair) to the coordinator, which adds them up and applies
the global threshold.

Two execution modes are provided for the single-candidate entry point:

* ``"simulated"`` — workers run in-process.  This exercises and tests the
  partitioning / merging logic (which classes go where, how counts combine)
  without any transport, and is deterministic and dependency-free.
* ``"process"`` — workers are real OS processes behind a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Each worker runs the
  configured compute backend's per-class kernels on its shard; the
  coordinator merges the reports exactly as in the simulated mode, so both
  modes (and every worker count) produce identical results.

The worker-resident column plane
--------------------------------

:class:`ShardedValidationPool` is the engine-facing variant: persistent
worker processes, each running a small message loop, validate whole context
groups (one shared context, many candidate rank pairs).  Groups below a
cost floor run in-process; larger ones split into contiguous,
cost-balanced class shards (``_plan_shards``) dispatched to the
least-loaded workers.  The coordinator merges per-shard removal counts by
summation, which is order-independent, so results are identical for every
worker count and scheduling mode.

What makes the pool pay off below ~100k rows is that rank columns are
*worker-resident*: each worker process keeps a cache of rank columns keyed
by ``(plane, version, attribute)``, so a column crosses the process
boundary **at most once per worker per dataset version** — group dispatches
after the first send only compact column *references* plus the shard's
class offsets (:class:`ClassShard`).  A :class:`ColumnPlane` is the
coordinator-side handle for one dataset's columns: it tracks the current
:class:`~repro.dataset.encoding.EncodedRelation` and version, and its
:meth:`ColumnPlane.apply_delta` integrates with incremental maintenance —
after :meth:`repro.discovery.session.Profiler.extend` the workers receive
only the appended-row deltas (mirroring ``EncodedRelation.extend``'s
``"appended"`` fast path), never a full re-broadcast; remapped columns are
dropped and re-shipped lazily on next use.

Dispatch is asynchronous: :meth:`ColumnPlane.submit` enqueues a group's
shard jobs and returns a :class:`PendingGroup` immediately;
:meth:`ColumnPlane.harvest` blocks until the group's shards are merged.
The discovery engine uses this seam to overlap coordinator-side work
(OFD validation, partition building, memo bookkeeping) with in-flight
worker validation — see ``repro.discovery.engine``.

The pool is a context manager and :meth:`ShardedValidationPool.close` is
idempotent.  Its owner is whoever constructed it: a
:class:`~repro.discovery.session.Profiler` session keeps one pool warm
across runs and closes it in ``Profiler.close()``; a standalone engine
spawns its own and shuts it down in the ``finally`` of its event stream, so
worker processes never outlive the run that needed them — including runs
that raise, get cancelled, or hit their time limit.
"""

from __future__ import annotations

import queue as queue_module
import time as time_module
import traceback
from dataclasses import dataclass, field
from itertools import chain
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backend import BackendSpec, resolve_backend
from repro.dataset.encoding import EXTEND_APPENDED
from repro.dataset.partition import PartitionCache
from repro.dataset.relation import Relation
from repro.dependencies.oc import CanonicalOC
from repro.validation.common import context_classes, removal_limit, validation_backend
from repro.validation.result import ValidationResult

#: Execution modes accepted by :func:`validate_aoc_distributed`.
EXECUTION_MODES = ("simulated", "process")


@dataclass
class WorkerReport:
    """What one worker sends back to the coordinator."""

    worker_id: int
    num_classes: int
    num_rows: int
    removal_rows: List[int] = field(default_factory=list)

    @property
    def removal_count(self) -> int:
        return len(self.removal_rows)


@dataclass
class DistributedValidationOutcome:
    """Coordinator-side result of a distributed validation."""

    result: ValidationResult
    worker_reports: List[WorkerReport]

    @property
    def num_workers(self) -> int:
        return len(self.worker_reports)

    @property
    def max_worker_share(self) -> float:
        """Largest fraction of grouped rows assigned to a single worker —
        the load-balance metric a real deployment would monitor."""
        total = sum(report.num_rows for report in self.worker_reports)
        if total == 0:
            return 0.0
        return max(report.num_rows for report in self.worker_reports) / total


def _class_cost(class_rows: Sequence[int]) -> float:
    """Validation cost estimate of one class in ``m log m`` units."""
    size = len(class_rows)
    return size * (1 + max(size, 2).bit_length())


def assign_classes_to_workers(
    classes: Sequence[Sequence[int]], num_workers: int
) -> List[List[Sequence[int]]]:
    """Greedy longest-processing-time assignment of classes to workers.

    Classes are handed out largest-first to the currently least-loaded
    worker, the standard makespan heuristic; load is measured in
    ``m log m`` validation cost units.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be at least 1")
    assignments: List[List[Sequence[int]]] = [[] for _ in range(num_workers)]
    loads = [0.0] * num_workers
    ordered = sorted(classes, key=len, reverse=True)
    for class_rows in ordered:
        target = loads.index(min(loads))
        assignments[target].append(class_rows)
        loads[target] += _class_cost(class_rows)
    return assignments


# -- worker entry points (module-level so they pickle for process pools) --------


def _worker_removal_rows(backend, assigned, a_ranks, b_ranks) -> List[int]:
    """One worker's share of Algorithm 2: removal rows of its classes."""
    removal, _ = backend.oc_optimal_removal_rows(assigned, a_ranks, b_ranks, None)
    return removal


class ClassShard:
    """Compact, picklable transport of one worker's share of classes.

    The coordinator packs a shard's equivalence classes either as plain row
    lists (reference backend) or as two flat arrays — concatenated rows plus
    per-class lengths (*class offsets*) — whose binary pickle is a fraction
    of a list-of-lists'.  On the worker the shard quacks like a class
    sequence for the row-at-a-time kernels (``len`` / iteration) and exposes
    :meth:`columnar_view` for the vectorised NumPy kernels, which consume
    the flat arrays directly without ever materialising per-class lists.
    """

    __slots__ = ("_class_lists", "_rows", "_lengths", "_view")

    def __init__(self, class_lists=None, rows=None, lengths=None) -> None:
        self._class_lists = class_lists
        self._rows = rows
        self._lengths = lengths
        self._view = None

    @classmethod
    def pack(cls, class_lists: Sequence[Sequence[int]], as_arrays: bool) -> "ClassShard":
        """Pack classes for transport (``as_arrays`` for array backends)."""
        if not as_arrays:
            return cls(class_lists=[list(rows) for rows in class_lists])
        import numpy as np

        lengths = np.fromiter(
            (len(rows) for rows in class_lists), dtype=np.int64,
            count=len(class_lists),
        )
        total = int(lengths.sum())
        rows = np.fromiter(
            chain.from_iterable(class_lists), dtype=np.int32, count=total
        )
        return cls(rows=rows, lengths=lengths)

    def __len__(self) -> int:
        if self._class_lists is not None:
            return len(self._class_lists)
        return int(self._lengths.size)

    def __iter__(self):
        if self._class_lists is None:
            import numpy as np

            offsets = np.concatenate(([0], np.cumsum(self._lengths)))
            self._class_lists = [
                self._rows[offsets[i]:offsets[i + 1]].tolist()
                for i in range(self._lengths.size)
            ]
        return iter(self._class_lists)

    def columnar_view(self):
        """``(rows, class_ids, lengths)`` int64 arrays (the NumPy backend's
        flattened class layout — see ``NumpyBackend._columnar_classes``)."""
        if self._view is None:
            import numpy as np

            if self._rows is not None:
                rows = self._rows.astype(np.int64)
                lengths = self._lengths
            else:
                lengths = np.fromiter(
                    (len(rows) for rows in self._class_lists), dtype=np.int64,
                    count=len(self._class_lists),
                )
                rows = np.fromiter(
                    chain.from_iterable(self._class_lists), dtype=np.int64,
                    count=int(lengths.sum()),
                )
            class_ids = np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)
            self._view = (rows, class_ids, lengths)
        return self._view

    def __getstate__(self):
        return (self._class_lists, self._rows, self._lengths)

    def __setstate__(self, state) -> None:
        self._class_lists, self._rows, self._lengths = state
        self._view = None


def _extend_resident_column(column, appended_ranks):
    """Append delta ranks to a worker-resident column (list or ndarray)."""
    if isinstance(column, list):
        return column + list(appended_ranks)
    import numpy as np

    return np.concatenate(
        [column, np.asarray(appended_ranks, dtype=column.dtype)]
    )


def _materialize_column(column):
    """Decode a shipped column to its dense kernel form on the worker.

    Run-length transport (:class:`~repro.dataset.encoding.RunLengthColumn`)
    exists only on the wire: workers expand it on receipt, so the resident
    cache, the delta-append path and every kernel see dense columns only.
    """
    decode = getattr(column, "decode", None)
    if decode is not None and hasattr(column, "starts"):
        return decode()
    return column


def _plane_worker_main(task_queue, result_queue, backend) -> None:
    """Message loop of one persistent pool worker process.

    The worker keeps its column cache across jobs: ``columns`` maps
    ``(plane_id, attribute)`` to ``(version, column)``.  Job messages carry
    only the columns this worker does not already hold at the job's version;
    delta messages extend cached columns in place (the appended-rows fast
    path) or drop them (remapped / stale versions, re-shipped on next use).
    """
    columns: Dict[Tuple[int, str], Tuple[int, object]] = {}
    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "stop":
            break
        if kind == "job":
            _, job_id, plane_id, version, shard, pair_names, limit, shipped = message
            try:
                if plane_id is None:
                    resolved = {
                        name: _materialize_column(column)
                        for name, column in shipped.items()
                    }
                else:
                    for name, column in shipped.items():
                        columns[(plane_id, name)] = (
                            version, _materialize_column(column)
                        )
                    resolved = {}
                    for name in set(chain.from_iterable(pair_names)):
                        entry = columns.get((plane_id, name))
                        if entry is None or entry[0] != version:
                            raise RuntimeError(
                                f"worker is missing column {name!r} at "
                                f"dataset version {version} (coordinator "
                                "bookkeeping out of sync)"
                            )
                        resolved[name] = entry[1]
                pairs = [(resolved[a], resolved[b]) for a, b in pair_names]
                outcome = backend.oc_optimal_removal_count_batch(
                    shard, pairs, limit
                )
                result_queue.put(("result", job_id, outcome))
            except BaseException:
                result_queue.put(("error", job_id, traceback.format_exc()))
        elif kind == "delta":
            _, plane_id, old_version, new_version, appended, _dropped = message
            for key in [k for k in columns if k[0] == plane_id]:
                version, column = columns[key]
                name = key[1]
                if version == old_version and name in appended:
                    columns[key] = (
                        new_version,
                        _extend_resident_column(column, appended[name]),
                    )
                else:
                    del columns[key]
        elif kind == "release":
            plane_id = message[1]
            for key in [k for k in columns if k[0] == plane_id]:
                del columns[key]


class _WorkerHandle:
    """Coordinator-side handle for one persistent worker process."""

    __slots__ = ("process", "queue", "columns", "load")

    def __init__(self, ctx, backend, result_queue) -> None:
        self.queue = ctx.Queue()
        self.process = ctx.Process(
            target=_plane_worker_main,
            args=(self.queue, result_queue, backend),
            daemon=True,
        )
        self.process.start()
        #: ``(plane_id, attribute) -> version`` the worker holds resident.
        self.columns: Dict[Tuple[int, str], int] = {}
        #: Estimated cost of the worker's in-flight shards (load balancing).
        self.load = 0.0


@dataclass
class PendingGroup:
    """One in-flight context group: harvest (or abandon) to settle it.

    ``jobs`` holds ``(job_id, worker, cost)`` per dispatched shard; merging
    is summation per pair, so harvest order never affects results.  A group
    too small to be worth a process round-trip is validated in-process at
    submission and carries its finished ``inline`` result instead.
    """

    num_pairs: int
    limit: Optional[int]
    jobs: List[Tuple[int, _WorkerHandle, float]] = field(default_factory=list)
    inline: Optional[List[Tuple[int, bool]]] = None


class ColumnPlane:
    """Coordinator-side handle for one dataset's worker-resident columns.

    A plane names a namespace inside a pool's worker caches: columns are
    keyed by ``(plane_id, attribute)`` and stamped with the plane's current
    ``version``.  :meth:`bind` points the plane at an encoding (a no-op when
    unchanged); :meth:`apply_delta` bumps the version after a row append,
    shipping only the appended ranks; :meth:`release` frees the resident
    columns when the dataset's session closes while the (shared) pool lives
    on.
    """

    def __init__(self, pool: "ShardedValidationPool", encoded=None) -> None:
        self._pool = pool
        self.plane_id = pool._register_plane()
        self.version = 0
        self._encoded = encoded
        self._released = False

    @property
    def pool(self) -> "ShardedValidationPool":
        return self._pool

    @property
    def num_rows(self) -> int:
        return 0 if self._encoded is None else self._encoded.num_rows

    def bind(self, encoded) -> None:
        """Point the plane at ``encoded``.

        Binding the encoding object the plane already tracks is free; a
        *different* object means the resident columns describe some other
        table state, so they are invalidated wholesale (the per-row delta
        path is :meth:`apply_delta`).
        """
        if self._encoded is encoded:
            return
        if self._encoded is not None:
            self._pool.invalidate_plane(self.plane_id)
            self.version += 1
        self._encoded = encoded

    def column(self, name: str):
        """The current native rank column for ``name``."""
        if self._encoded is None:
            raise RuntimeError("ColumnPlane is not bound to an encoding")
        return self._encoded.native_ranks(name)

    def transport_column(self, name: str):
        """The column in its cheapest transport form for worker shipping.

        Low-cardinality clustered columns come back run-length encoded
        (fewer bytes on the wire); workers materialise the dense form on
        receipt.  Encodings without transport support fall back to the
        dense native column.
        """
        if self._encoded is None:
            raise RuntimeError("ColumnPlane is not bound to an encoding")
        getter = getattr(self._encoded, "transport_ranks", None)
        if getter is None:
            return self._encoded.native_ranks(name)
        return getter(name)

    def apply_delta(self, extended, modes: Dict[str, str], old_num_rows: int) -> None:
        """Advance the plane to a delta-extended encoding.

        ``extended`` / ``modes`` are :meth:`EncodedRelation.extend`'s
        outputs.  Columns the extend *appended* to ship only their appended
        ranks — each worker patches its resident copy in place; *remapped*
        columns (and columns a worker holds at the wrong version) are
        dropped and re-shipped in full on next use.
        """
        appended = {
            name: extended.ranks(name)[old_num_rows:]
            for name, mode in modes.items()
            if mode == EXTEND_APPENDED
        }
        dropped = sorted(
            name for name, mode in modes.items() if mode != EXTEND_APPENDED
        )
        old_version = self.version
        self.version += 1
        self._pool.apply_plane_delta(
            self.plane_id, old_version, self.version, appended, dropped
        )
        self._encoded = extended

    def submit(self, classes, pair_names, limit: Optional[int] = None) -> PendingGroup:
        """Dispatch one context group asynchronously (see pool docs)."""
        return self._pool.submit_oc_group(self, classes, pair_names, limit)

    def harvest(self, pending: PendingGroup) -> List[Tuple[int, bool]]:
        """Block until ``pending``'s shards merged; returns per-pair counts."""
        return self._pool.harvest(pending)

    def abandon(self, pending: PendingGroup) -> None:
        """Drop an in-flight group's results (interrupted runs)."""
        self._pool.abandon(pending)

    def oc_counts_batch(
        self, classes, pair_names, limit: Optional[int] = None
    ) -> List[Tuple[int, bool]]:
        """Synchronous submit + harvest convenience."""
        return self.harvest(self.submit(classes, pair_names, limit))

    def release(self) -> None:
        """Free this plane's worker-resident columns (idempotent)."""
        if self._released:
            return
        self._released = True
        if not self._pool.closed:
            self._pool.invalidate_plane(self.plane_id)


class ShardedValidationPool:
    """Persistent worker processes sharding batched OC validation by class.

    The discovery engine (or a :class:`~repro.discovery.session.Profiler`
    session, or ``repro serve`` across *all* its datasets) feeds the pool
    whole context groups.  A group below :data:`INLINE_GROUP_COST` is
    validated in-process; a larger one is split by :meth:`_plan_shards`
    into at most ``num_workers`` contiguous, cost-balanced class shards (no
    shard below :data:`MIN_SHARD_COST`) dispatched to the currently
    least-loaded workers — :func:`assign_classes_to_workers`'s LPT
    assignment serves only the single-candidate
    :func:`validate_aoc_distributed` path.  Every shard runs the backend's
    :meth:`~repro.backend.base.ComputeBackend.oc_optimal_removal_count_batch`
    and the coordinator sums the per-shard counts.  Summation is
    order-independent, so results are identical for every worker count and
    shard composition.

    A shard that exceeds ``limit`` on its own proves the candidate invalid,
    so ``limit`` is forwarded to the workers as a per-shard early-exit
    budget; the merged count for such a candidate is then a partial value
    above ``limit`` (permitted by the batch-kernel contract in
    ``repro.backend.base``).

    Rank columns travel through :class:`ColumnPlane` namespaces and stay
    resident in the worker processes (see the module docstring); the
    ``stats`` dict counts ``columns_shipped`` vs ``column_refs`` so callers
    can observe the ship-once behaviour.  :meth:`oc_counts_batch` remains as
    the plane-less path for ad-hoc column pairs: columns ship with every
    dispatch, exactly like the pre-plane pool.

    Dispatch and bookkeeping are guarded by one coordinator-side lock, so
    multiple threads may drive the pool concurrently (``repro serve``
    shares one pool across its per-dataset handler threads); blocking
    result waits happen *outside* the lock, so one dataset's harvest never
    stalls another's dispatch.
    """

    def __init__(self, num_workers: int, backend: BackendSpec = None) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        import multiprocessing
        import threading

        ctx = multiprocessing.get_context()
        self.num_workers = num_workers
        self.backend = resolve_backend(backend)
        self._pack_arrays = self.backend.name == "numpy"
        self._result_queue = ctx.Queue()
        self._workers: Optional[List[_WorkerHandle]] = [
            _WorkerHandle(ctx, self.backend, self._result_queue)
            for _ in range(num_workers)
        ]
        #: Buffered results for jobs harvested out of completion order.
        self._results: Dict[int, Tuple[str, object]] = {}
        #: Abandoned job ids whose results are dropped on arrival.
        self._discarded: set = set()
        #: Serialises dispatch bookkeeping (job ids, per-worker column
        #: sets, load accounting, queue puts) across coordinator threads.
        self._lock = threading.Lock()
        self._next_job_id = 0
        self._next_plane_id = 0
        self.stats: Dict[str, int] = {
            "groups": 0,
            "jobs": 0,
            "inline_groups": 0,
            "columns_shipped": 0,
            "columns_rle": 0,
            "column_refs": 0,
            "deltas": 0,
        }

    @property
    def closed(self) -> bool:
        """Whether the worker processes have been shut down."""
        return self._workers is None

    def _require_open(self) -> None:
        if self._workers is None:
            raise RuntimeError("ShardedValidationPool is closed")

    # -- column planes -----------------------------------------------------------

    def _register_plane(self) -> int:
        with self._lock:
            self._next_plane_id += 1
            return self._next_plane_id

    def new_plane(self, encoded=None) -> ColumnPlane:
        """Create a :class:`ColumnPlane` namespace over this pool."""
        self._require_open()
        return ColumnPlane(self, encoded)

    def apply_plane_delta(
        self, plane_id: int, old_version: int, new_version: int,
        appended: Dict[str, Sequence[int]], dropped: Sequence[str],
    ) -> None:
        """Ship a dataset delta to every worker (see
        :meth:`ColumnPlane.apply_delta`) and patch the coordinator's
        per-worker bookkeeping to match what each worker will hold."""
        self._require_open()
        appended = {name: list(values) for name, values in appended.items()}
        message = ("delta", plane_id, old_version, new_version, appended,
                   list(dropped))
        with self._lock:
            self.stats["deltas"] += 1
            for worker in self._workers:
                for key in [k for k in worker.columns if k[0] == plane_id]:
                    if worker.columns[key] == old_version and key[1] in appended:
                        worker.columns[key] = new_version
                    else:
                        del worker.columns[key]
                worker.queue.put(message)

    def invalidate_plane(self, plane_id: int) -> None:
        """Drop a plane's resident columns on every worker (idempotent)."""
        if self._workers is None:
            return
        with self._lock:
            for worker in self._workers:
                for key in [k for k in worker.columns if k[0] == plane_id]:
                    del worker.columns[key]
                worker.queue.put(("release", plane_id))

    # -- group dispatch ----------------------------------------------------------

    #: Context groups cheaper than this (in ``m log m`` cost units) are
    #: validated in-process at submission: the process round-trip would
    #: cost more than the kernel itself.
    INLINE_GROUP_COST = 32_768
    #: Minimum shard cost: a group splits into at most ``num_workers``
    #: shards of no less than this, so modest groups stay one message and
    #: parallelism comes from having many groups in flight.
    MIN_SHARD_COST = 65_536

    def submit_oc_group(
        self, plane: ColumnPlane, classes, pair_names, limit: Optional[int] = None
    ) -> PendingGroup:
        """Dispatch one context group's shards without waiting.

        ``pair_names`` lists ``(a_attribute, b_attribute)`` per candidate;
        the columns themselves are resolved through ``plane`` and ship only
        to workers that do not already hold them at the plane's version.
        Returns immediately with a :class:`PendingGroup`;
        :meth:`harvest` joins it.  Groups below :data:`INLINE_GROUP_COST`
        are validated in-process instead and return already settled.
        """
        self._require_open()
        pending = PendingGroup(num_pairs=len(pair_names), limit=limit)
        if pending.num_pairs == 0:
            return pending
        shards, total_cost, needed_row = self._plan_shards(classes)
        needed_names = sorted(set(chain.from_iterable(pair_names)))
        for name in needed_names:
            # The guard runs on the transport form: a RunLengthColumn's
            # length is its *decoded* row count, so a run-encoded column
            # captured before an append is refused exactly like a short
            # dense one (and re-shipped from the refreshed encoding).
            self._assert_column_covers(
                plane.transport_column(name), needed_row, name
            )
        if not shards:
            return pending
        if total_cost < self.INLINE_GROUP_COST:
            pairs = [
                (plane.column(a), plane.column(b)) for a, b in pair_names
            ]
            pending.inline = self.backend.oc_optimal_removal_count_batch(
                classes, pairs, limit
            )
            self.stats["inline_groups"] += 1
            return pending

        def columns_for(worker: _WorkerHandle) -> Dict[str, object]:
            shipped: Dict[str, object] = {}
            for name in needed_names:
                key = (plane.plane_id, name)
                if worker.columns.get(key) != plane.version:
                    column = plane.transport_column(name)
                    shipped[name] = column
                    worker.columns[key] = plane.version
                    self.stats["columns_shipped"] += 1
                    if hasattr(column, "starts"):
                        self.stats["columns_rle"] += 1
                else:
                    self.stats["column_refs"] += 1
            return shipped

        self._dispatch_shards(
            pending, shards, plane.plane_id, plane.version,
            list(pair_names), limit, columns_for,
        )
        return pending

    def oc_counts_batch(
        self,
        classes: Sequence[Sequence[int]],
        rank_pairs: Sequence[Tuple[object, object]],
        limit: Optional[int] = None,
    ) -> List[Tuple[int, bool]]:
        """Batched minimal-removal counts for ad-hoc rank columns.

        The plane-less path: columns are deduplicated within the call but
        ship with every dispatch (and every group is dispatched, however
        small).  Kept for callers outside a discovery session, and as the
        reference for the plane path's results."""
        self._require_open()
        num_pairs = len(rank_pairs)
        if num_pairs == 0:
            return []
        self._check_column_freshness(classes, rank_pairs)
        columns: Dict[str, object] = {}
        name_of: Dict[int, str] = {}
        pair_names: List[Tuple[str, str]] = []
        for a_ranks, b_ranks in rank_pairs:
            refs = []
            for ranks in (a_ranks, b_ranks):
                key = id(ranks)
                if key not in name_of:
                    name_of[key] = f"c{len(name_of)}"
                    columns[name_of[key]] = ranks
                refs.append(name_of[key])
            pair_names.append((refs[0], refs[1]))
        pending = PendingGroup(num_pairs=num_pairs, limit=limit)
        shards, _, _ = self._plan_shards(list(classes))
        self._dispatch_shards(
            pending, shards, None, 0, pair_names, limit,
            lambda worker: columns,
        )
        return self.harvest(pending)

    def _plan_shards(self, classes):
        """Pack ``classes`` into cost-balanced contiguous shards.

        Returns ``(shards, total_cost, needed_row)`` where ``shards`` is a
        list of ``(ClassShard, cost)`` pairs and ``needed_row`` the largest
        row id any class touches (``-1`` for empty groups).  Contiguous
        class ranges — rather than the LPT assignment the per-candidate
        validator uses — keep the packing a pair of array slices on the
        columnar fast path; summation merging makes the composition
        invisible in results.
        """
        if self._pack_arrays:
            return self._plan_shards_arrays(classes)
        class_lists = classes.classes if hasattr(classes, "classes") \
            else list(classes)
        if not class_lists:
            return [], 0.0, -1
        needed_row = -1
        costs = []
        for rows in class_lists:
            costs.append(_class_cost(rows))
            if len(rows) and rows[-1] > needed_row:
                needed_row = rows[-1]
        total = float(sum(costs))
        target = max(total / self.num_workers, float(self.MIN_SHARD_COST))
        shards: List[Tuple[ClassShard, float]] = []
        chunk: List[Sequence[int]] = []
        acc = 0.0
        for rows, cost in zip(class_lists, costs):
            chunk.append(rows)
            acc += cost
            if acc >= target and len(shards) < self.num_workers - 1:
                shards.append((ClassShard.pack(chunk, False), acc))
                chunk, acc = [], 0.0
        if chunk:
            shards.append((ClassShard.pack(chunk, False), acc))
        return shards, total, needed_row

    def _plan_shards_arrays(self, classes):
        """Columnar shard planning: two array slices per shard.

        Reuses (and caches) the partition's flattened columnar view, so
        planning a group is a handful of vector operations instead of a
        Python pass over every class.
        """
        import numpy as np

        # The backend's columnar view: for a CSR Partition this is derived
        # straight from (and cached on) the flat offset arrays, for a
        # ClassShard its pre-flattened arrays — no per-class Python lists
        # on any of the engine-facing paths.
        rows, _, lengths = self.backend._columnar_classes(classes)
        if lengths.size == 0:
            return [], 0.0, -1
        needed_row = int(rows.max()) if rows.size else -1
        # Vectorised _class_cost: m * (1 + bit_length(max(m, 2))).
        costs = lengths * (np.floor(np.log2(np.maximum(lengths, 2))) + 2.0)
        cum = np.cumsum(costs)
        total = float(cum[-1])
        num_shards = min(
            self.num_workers,
            max(1, -(-int(total) // self.MIN_SHARD_COST)),
        )
        if num_shards > 1:
            targets = total * np.arange(1, num_shards) / num_shards
            cuts = np.unique(np.searchsorted(cum, targets, side="left") + 1)
            edges = [0] + [c for c in cuts.tolist() if c < lengths.size] \
                + [int(lengths.size)]
        else:
            edges = [0, int(lengths.size)]
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        shards: List[Tuple[ClassShard, float]] = []
        for a, b in zip(edges[:-1], edges[1:]):
            if a == b:
                continue
            shard = ClassShard(
                rows=rows[offsets[a]:offsets[b]].astype(np.int32),
                lengths=lengths[a:b].copy(),
            )
            cost = float(cum[b - 1] - (cum[a - 1] if a else 0.0))
            shards.append((shard, cost))
        return shards, total, needed_row

    def _dispatch_shards(
        self, pending: PendingGroup, shards, plane_id, version,
        pair_names, limit, columns_for,
    ) -> None:
        if not shards:
            return
        # One critical section per group: the column bookkeeping below must
        # not interleave with another thread's dispatch, or a job could be
        # enqueued behind a "shipped" marker whose payload races it.
        with self._lock:
            self.stats["groups"] += 1
            for shard, cost in shards:
                worker = min(self._workers, key=lambda w: w.load)
                shipped = columns_for(worker)
                job_id = self._next_job_id
                self._next_job_id += 1
                worker.queue.put((
                    "job", job_id, plane_id, version, shard,
                    pair_names, limit, shipped,
                ))
                worker.load += cost
                pending.jobs.append((job_id, worker, cost))
                self.stats["jobs"] += 1

    # -- harvesting --------------------------------------------------------------

    def harvest(self, pending: PendingGroup) -> List[Tuple[int, bool]]:
        """Merge one pending group's shard results (blocking).

        Per-pair counts are summed across shards; the exceeded flag is set
        when any shard proved the budget blown or the merged total does."""
        self._require_open()
        if pending.inline is not None:
            return pending.inline
        totals = [0] * pending.num_pairs
        exceeded = [False] * pending.num_pairs
        jobs, pending.jobs = pending.jobs, []
        for position, (job_id, worker, cost) in enumerate(jobs):
            try:
                payload = self._wait_result(job_id)
            except BaseException:
                # Settle the whole group before propagating: the failed
                # job's load, and every remaining job's load and eventual
                # result, must not leak into later runs on this pool.
                self._settle_jobs(jobs[position:])
                raise
            with self._lock:
                worker.load -= cost
            for index, (count, over) in enumerate(payload):
                totals[index] += count
                exceeded[index] = exceeded[index] or over
        if pending.limit is not None:
            exceeded = [
                over or total > pending.limit
                for total, over in zip(totals, exceeded)
            ]
        return list(zip(totals, exceeded))

    def abandon(self, pending: PendingGroup) -> None:
        """Give up on a pending group (idempotent; interrupted runs).

        In-flight shard results are dropped when they arrive, so an
        abandoned level never poisons a later harvest."""
        jobs, pending.jobs = pending.jobs, []
        self._settle_jobs(jobs)

    def _settle_jobs(self, jobs) -> None:
        """Release load accounting and discard the eventual results of jobs
        that will never be (fully) harvested."""
        with self._lock:
            for job_id, worker, cost in jobs:
                worker.load -= cost
                if job_id in self._results:
                    del self._results[job_id]
                else:
                    self._discarded.add(job_id)

    def _wait_result(self, job_id: int):
        # Another harvesting thread may pull this job's message off the
        # shared result queue and buffer it, so the buffer is rechecked on
        # a short poll.  All buffer mutations happen under the lock, and
        # the discarded-check runs at *store* time inside it, so a result
        # arriving concurrently with abandon() is either dropped here or
        # deleted by _settle_jobs — never leaked.
        kind = payload = None
        found = False
        while not found:
            with self._lock:
                if job_id in self._results:
                    kind, payload = self._results.pop(job_id)
                    break
            try:
                arrived = self._result_queue.get(timeout=0.1)
            except queue_module.Empty:
                for worker in self._workers:
                    if not worker.process.is_alive():
                        raise RuntimeError(
                            "a validation worker process died unexpectedly; "
                            "close the pool and retry"
                        )
                continue
            with self._lock:
                arrived_kind, arrived_id, arrived_payload = arrived
                if arrived_id in self._discarded:
                    self._discarded.discard(arrived_id)
                elif arrived_id == job_id:
                    kind, payload = arrived_kind, arrived_payload
                    found = True
                else:
                    self._results[arrived_id] = (arrived_kind, arrived_payload)
        if kind == "error":
            raise RuntimeError(f"validation worker failed:\n{payload}")
        return payload

    # -- freshness guards --------------------------------------------------------

    @staticmethod
    def _needed_row(classes) -> int:
        flat = getattr(classes, "row_indices", None)
        if flat is not None:
            # CSR partition: one pass over the flat row vector (classes are
            # first-row ordered, so the last *element* is not the maximum).
            if len(flat) == 0:
                return -1
            return int(flat.max()) if hasattr(flat, "max") else max(flat)
        needed = -1
        for rows in classes:
            if len(rows) and rows[-1] > needed:
                needed = rows[-1]
        return needed

    @staticmethod
    def _assert_column_covers(column, needed_row: int, name: str = "") -> None:
        """The single stale-column rule both dispatch paths enforce."""
        if needed_row < 0 or len(column) > needed_row:
            return
        label = f" {name!r}" if name else ""
        raise RuntimeError(
            f"stale rank column{label}: {len(column)} entries cannot "
            f"cover row {needed_row}; the encoded relation grew "
            "after this column was captured — refresh columns "
            "from the current encoding before revalidating"
        )

    @staticmethod
    def _check_column_freshness(classes, rank_pairs) -> None:
        """Refuse to ship rank columns shorter than the rows they must cover.

        A pool outlives discovery runs — and, with incremental maintenance,
        dataset *versions*: after ``Profiler.extend`` the encoded relation
        has more rows, and any stale column captured before the append
        would silently index out of range (or worse, wrap around) on the
        workers.  Class row lists are sorted, so the last row of each class
        is its maximum; every column must cover the overall maximum.
        """
        needed = ShardedValidationPool._needed_row(classes)
        for a_ranks, b_ranks in rank_pairs:
            for ranks in (a_ranks, b_ranks):
                ShardedValidationPool._assert_column_covers(ranks, needed)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._workers is None:
            return
        workers, self._workers = self._workers, None
        for worker in workers:
            try:
                worker.queue.put(("stop",))
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass
        # Drain straggling results so worker feeder threads never block on a
        # full pipe while trying to exit (abandoned jobs still produce
        # results nobody reads).
        deadline = time_module.monotonic() + 10.0
        while any(w.process.is_alive() for w in workers):
            if time_module.monotonic() > deadline:
                break
            try:
                self._result_queue.get(timeout=0.05)
            except queue_module.Empty:
                pass
        for worker in workers:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            worker.queue.close()
        self._result_queue.close()
        self._results.clear()
        self._discarded.clear()

    def __enter__(self) -> "ShardedValidationPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def validate_aoc_distributed(
    relation: Relation,
    oc: CanonicalOC,
    num_workers: int = 4,
    threshold: Optional[float] = None,
    partition_cache: Optional[PartitionCache] = None,
    backend: BackendSpec = None,
    execution: str = "simulated",
) -> DistributedValidationOutcome:
    """Validate an AOC with distributed workers; equivalent to Algorithm 2.

    Every worker runs the per-class LNDS kernel on its assigned classes and
    reports its removal rows; the coordinator merges the reports, applies
    the threshold and produces the same :class:`ValidationResult` the
    centralised validator would.

    ``backend`` selects the compute backend the workers run on; like
    :func:`~repro.validation.common.validation_backend`, it defaults to the
    supplied partition cache's backend so discovery-driven validations stay
    on one backend.  ``execution`` picks the transport: ``"simulated"``
    (in-process workers) or ``"process"`` (a real
    :class:`~concurrent.futures.ProcessPoolExecutor`); both produce
    identical outcomes.
    """
    if execution not in EXECUTION_MODES:
        raise ValueError(
            f"execution must be one of {EXECUTION_MODES}, got {execution!r}"
        )
    resolved = validation_backend(backend, partition_cache)
    encoded = relation.encoded(resolved)
    a_ranks = encoded.native_ranks(oc.a)
    b_ranks = encoded.native_ranks(oc.b)
    classes = context_classes(relation, oc.context, partition_cache, resolved)
    assignments = assign_classes_to_workers(list(classes), num_workers)

    if execution == "process":
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=num_workers) as executor:
            futures = [
                executor.submit(
                    _worker_removal_rows, resolved, assigned, a_ranks, b_ranks
                )
                for assigned in assignments
            ]
            removals = [future.result() for future in futures]
    else:
        removals = [
            _worker_removal_rows(resolved, assigned, a_ranks, b_ranks)
            for assigned in assignments
        ]

    reports = [
        WorkerReport(
            worker_id=worker_id,
            num_classes=len(assigned),
            num_rows=sum(len(c) for c in assigned),
            removal_rows=removal,
        )
        for worker_id, (assigned, removal) in enumerate(zip(assignments, removals))
    ]

    merged = frozenset(
        row for report in reports for row in report.removal_rows
    )
    limit = removal_limit(relation.num_rows, threshold)
    exceeded = limit is not None and len(merged) > limit
    result = ValidationResult(
        dependency=oc,
        num_rows=relation.num_rows,
        removal_rows=merged,
        threshold=threshold,
        exceeded_threshold=exceeded,
    )
    return DistributedValidationOutcome(result=result, worker_reports=reports)
