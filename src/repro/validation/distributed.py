"""Distributed AOC validation (the paper's future work, §5).

The conclusions propose extending approximate OC discovery "to distributed
settings, similar to [Saxena, Golab, Ilyas, PVLDB 2019]".  The key
observation that makes this easy for canonical OCs is that equivalence
classes of the context are completely independent: each worker can validate
its share of the classes locally and ship only a removal *count* (or the
removal rows, for repair) to the coordinator, which adds them up and applies
the global threshold.

Two execution modes are provided:

* ``"simulated"`` — workers run in-process.  This exercises and tests the
  partitioning / merging logic (which classes go where, how counts combine)
  without any transport, and is deterministic and dependency-free.
* ``"process"`` — workers are real OS processes behind a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Each worker runs the
  configured compute backend's per-class kernels on its shard; the
  coordinator merges the reports exactly as in the simulated mode, so both
  modes (and every worker count) produce identical results.

:class:`ShardedValidationPool` is the engine-facing variant: the
level-synchronous scheduler hands it whole context groups (one shared
context, many candidate rank pairs) and it shards the context's classes
across a persistent process pool with :func:`assign_classes_to_workers`,
merging per-shard removal counts by summation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backend import BackendSpec, resolve_backend
from repro.dataset.partition import PartitionCache
from repro.dataset.relation import Relation
from repro.dependencies.oc import CanonicalOC
from repro.validation.common import context_classes, removal_limit, validation_backend
from repro.validation.result import ValidationResult

#: Execution modes accepted by :func:`validate_aoc_distributed`.
EXECUTION_MODES = ("simulated", "process")


@dataclass
class WorkerReport:
    """What one worker sends back to the coordinator."""

    worker_id: int
    num_classes: int
    num_rows: int
    removal_rows: List[int] = field(default_factory=list)

    @property
    def removal_count(self) -> int:
        return len(self.removal_rows)


@dataclass
class DistributedValidationOutcome:
    """Coordinator-side result of a distributed validation."""

    result: ValidationResult
    worker_reports: List[WorkerReport]

    @property
    def num_workers(self) -> int:
        return len(self.worker_reports)

    @property
    def max_worker_share(self) -> float:
        """Largest fraction of grouped rows assigned to a single worker —
        the load-balance metric a real deployment would monitor."""
        total = sum(report.num_rows for report in self.worker_reports)
        if total == 0:
            return 0.0
        return max(report.num_rows for report in self.worker_reports) / total


def assign_classes_to_workers(
    classes: Sequence[Sequence[int]], num_workers: int
) -> List[List[Sequence[int]]]:
    """Greedy longest-processing-time assignment of classes to workers.

    Classes are handed out largest-first to the currently least-loaded
    worker, the standard makespan heuristic; load is measured in
    ``m log m`` validation cost units.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be at least 1")
    assignments: List[List[Sequence[int]]] = [[] for _ in range(num_workers)]
    loads = [0.0] * num_workers
    ordered = sorted(classes, key=len, reverse=True)
    for class_rows in ordered:
        size = len(class_rows)
        cost = size * (1 + max(size, 2).bit_length())
        target = loads.index(min(loads))
        assignments[target].append(class_rows)
        loads[target] += cost
    return assignments


# -- worker entry points (module-level so they pickle for process pools) --------


def _worker_removal_rows(backend, assigned, a_ranks, b_ranks) -> List[int]:
    """One worker's share of Algorithm 2: removal rows of its classes."""
    removal, _ = backend.oc_optimal_removal_rows(assigned, a_ranks, b_ranks, None)
    return removal


def _shard_oc_counts(backend, shard, columns, pair_refs, limit):
    """One worker's share of the batched count kernel over a class shard."""
    rank_pairs = [(columns[a], columns[b]) for a, b in pair_refs]
    return backend.oc_optimal_removal_count_batch(shard, rank_pairs, limit)


class ShardedValidationPool:
    """Persistent process pool sharding batched OC validation by class.

    The discovery engine creates one pool per run (``num_workers > 1``) and
    feeds it whole context groups.  Classes are sharded with
    :func:`assign_classes_to_workers`; every shard runs the backend's
    :meth:`~repro.backend.base.ComputeBackend.oc_optimal_removal_count_batch`
    and the coordinator sums the per-shard counts.  Summation is
    order-independent, so results are identical for every worker count.

    A shard that exceeds ``limit`` on its own proves the candidate invalid,
    so ``limit`` is forwarded to the workers as a per-shard early-exit
    budget; the merged count for such a candidate is then a partial value
    above ``limit`` (permitted by the batch-kernel contract in
    ``repro.backend.base``).

    The pool is a context manager and :meth:`close` is idempotent.  Its
    owner is whoever constructed it: a
    :class:`~repro.discovery.session.Profiler` session keeps one pool warm
    across runs and closes it in ``Profiler.close()``; a standalone engine
    spawns its own and shuts it down in the ``finally`` of its event
    stream, so worker processes never outlive the run that needed them —
    including runs that raise, get cancelled, or hit their time limit.
    """

    def __init__(self, num_workers: int, backend: BackendSpec = None) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        from concurrent.futures import ProcessPoolExecutor

        self.num_workers = num_workers
        self.backend = resolve_backend(backend)
        self._executor: Optional[object] = ProcessPoolExecutor(
            max_workers=num_workers
        )

    @property
    def closed(self) -> bool:
        """Whether the worker processes have been shut down."""
        return self._executor is None

    def oc_counts_batch(
        self,
        classes: Sequence[Sequence[int]],
        rank_pairs: Sequence[Tuple[object, object]],
        limit: Optional[int] = None,
    ) -> List[Tuple[int, bool]]:
        """Batched minimal-removal counts, sharded across the pool."""
        if self._executor is None:
            raise RuntimeError("ShardedValidationPool is closed")
        num_pairs = len(rank_pairs)
        if num_pairs == 0:
            return []
        self._check_column_freshness(classes, rank_pairs)
        shards = [
            shard
            for shard in assign_classes_to_workers(list(classes), self.num_workers)
            if shard
        ]
        if not shards:
            return [(0, False)] * num_pairs
        # Ship each distinct rank column once per shard, not once per pair.
        columns: List[object] = []
        column_index: Dict[int, int] = {}
        pair_refs: List[Tuple[int, int]] = []
        for a_ranks, b_ranks in rank_pairs:
            refs = []
            for ranks in (a_ranks, b_ranks):
                key = id(ranks)
                if key not in column_index:
                    column_index[key] = len(columns)
                    columns.append(ranks)
                refs.append(column_index[key])
            pair_refs.append((refs[0], refs[1]))
        futures = [
            self._executor.submit(
                _shard_oc_counts, self.backend, shard, columns, pair_refs, limit
            )
            for shard in shards
        ]
        totals = [0] * num_pairs
        exceeded = [False] * num_pairs
        for future in futures:
            for index, (count, over) in enumerate(future.result()):
                totals[index] += count
                exceeded[index] = exceeded[index] or over
        if limit is not None:
            exceeded = [
                over or total > limit for total, over in zip(totals, exceeded)
            ]
        return list(zip(totals, exceeded))

    @staticmethod
    def _check_column_freshness(classes, rank_pairs) -> None:
        """Refuse to ship rank columns shorter than the rows they must cover.

        A pool outlives discovery runs — and, with incremental maintenance,
        dataset *versions*: after ``Profiler.extend`` the encoded relation
        has more rows, and any stale column captured before the append
        would silently index out of range (or worse, wrap around) on the
        workers.  Class row lists are sorted, so the last row of each class
        is its maximum; every column must cover the overall maximum.
        """
        needed = -1
        for rows in classes:
            if len(rows) and rows[-1] > needed:
                needed = rows[-1]
        if needed < 0:
            return
        for a_ranks, b_ranks in rank_pairs:
            for ranks in (a_ranks, b_ranks):
                if len(ranks) <= needed:
                    raise RuntimeError(
                        f"stale rank column: {len(ranks)} entries cannot "
                        f"cover row {needed}; the encoded relation grew "
                        "after this column was captured — refresh columns "
                        "from the current encoding before revalidating"
                    )

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "ShardedValidationPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def validate_aoc_distributed(
    relation: Relation,
    oc: CanonicalOC,
    num_workers: int = 4,
    threshold: Optional[float] = None,
    partition_cache: Optional[PartitionCache] = None,
    backend: BackendSpec = None,
    execution: str = "simulated",
) -> DistributedValidationOutcome:
    """Validate an AOC with distributed workers; equivalent to Algorithm 2.

    Every worker runs the per-class LNDS kernel on its assigned classes and
    reports its removal rows; the coordinator merges the reports, applies
    the threshold and produces the same :class:`ValidationResult` the
    centralised validator would.

    ``backend`` selects the compute backend the workers run on; like
    :func:`~repro.validation.common.validation_backend`, it defaults to the
    supplied partition cache's backend so discovery-driven validations stay
    on one backend.  ``execution`` picks the transport: ``"simulated"``
    (in-process workers) or ``"process"`` (a real
    :class:`~concurrent.futures.ProcessPoolExecutor`); both produce
    identical outcomes.
    """
    if execution not in EXECUTION_MODES:
        raise ValueError(
            f"execution must be one of {EXECUTION_MODES}, got {execution!r}"
        )
    resolved = validation_backend(backend, partition_cache)
    encoded = relation.encoded(resolved)
    a_ranks = encoded.native_ranks(oc.a)
    b_ranks = encoded.native_ranks(oc.b)
    classes = context_classes(relation, oc.context, partition_cache, resolved)
    assignments = assign_classes_to_workers(list(classes), num_workers)

    if execution == "process":
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=num_workers) as executor:
            futures = [
                executor.submit(
                    _worker_removal_rows, resolved, assigned, a_ranks, b_ranks
                )
                for assigned in assignments
            ]
            removals = [future.result() for future in futures]
    else:
        removals = [
            _worker_removal_rows(resolved, assigned, a_ranks, b_ranks)
            for assigned in assignments
        ]

    reports = [
        WorkerReport(
            worker_id=worker_id,
            num_classes=len(assigned),
            num_rows=sum(len(c) for c in assigned),
            removal_rows=removal,
        )
        for worker_id, (assigned, removal) in enumerate(zip(assignments, removals))
    ]

    merged = frozenset(
        row for report in reports for row in report.removal_rows
    )
    limit = removal_limit(relation.num_rows, threshold)
    exceeded = limit is not None and len(merged) > limit
    result = ValidationResult(
        dependency=oc,
        num_rows=relation.num_rows,
        removal_rows=merged,
        threshold=threshold,
        exceeded_threshold=exceeded,
    )
    return DistributedValidationOutcome(result=result, worker_reports=reports)
