"""Inversion counting and per-tuple swap counts.

Algorithm 1 (the iterative baseline) needs, for every tuple of an
equivalence class, the number of *swaps* it participates in: pairs
``(s, t)`` with ``s_A < t_A`` and ``t_B < s_B``.  Line 4 of the paper's
pseudo-code obtains these via inversion counting on the ``B`` projection of
the class sorted by ``[A ASC, B ASC]``.

Two kernels are provided:

* :func:`count_inversions` — total inversion count by merge sort (the
  paper's "variant of merge sort"), used in tests and statistics;
* :func:`per_position_swap_counts` — per-element swap counts via a Fenwick
  tree, processing groups of equal ``A`` together so that ties on ``A``
  (which are never swaps) are excluded.  ``O(m log m)``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


class FenwickTree:
    """A 1-indexed binary indexed tree over ``size`` counters."""

    __slots__ = ("_tree", "_size")

    def __init__(self, size: int) -> None:
        self._size = size
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int = 1) -> None:
        """Add ``delta`` at 0-based position ``index``."""
        position = index + 1
        while position <= self._size:
            self._tree[position] += delta
            position += position & (-position)

    def prefix_sum(self, index: int) -> int:
        """Sum of counters at 0-based positions ``0..index`` inclusive.

        ``index < 0`` returns 0.
        """
        result = 0
        position = index + 1
        while position > 0:
            result += self._tree[position]
            position -= position & (-position)
        return result

    def total(self) -> int:
        """Sum of all counters."""
        return self.prefix_sum(self._size - 1)


def count_inversions(sequence: Sequence[int]) -> int:
    """Count pairs ``i < j`` with ``sequence[i] > sequence[j]`` (merge sort)."""
    values = list(sequence)
    buffer = [0] * len(values)

    def merge_count(lo: int, hi: int) -> int:
        if hi - lo <= 1:
            return 0
        mid = (lo + hi) // 2
        inversions = merge_count(lo, mid) + merge_count(mid, hi)
        left, right, out = lo, mid, lo
        while left < mid and right < hi:
            if values[left] <= values[right]:
                buffer[out] = values[left]
                left += 1
            else:
                buffer[out] = values[right]
                right += 1
                inversions += mid - left
            out += 1
        while left < mid:
            buffer[out] = values[left]
            left += 1
            out += 1
        while right < hi:
            buffer[out] = values[right]
            right += 1
            out += 1
        values[lo:hi] = buffer[lo:hi]
        return inversions

    return merge_count(0, len(values))


def _dense_ranks(values: Sequence[int]) -> Tuple[List[int], int]:
    """Compress arbitrary integers to dense ranks ``0..k-1``."""
    ordered = sorted(set(values))
    rank_of = {value: rank for rank, value in enumerate(ordered)}
    return [rank_of[value] for value in values], len(ordered)


def per_position_swap_counts(
    a_values: Sequence[int], b_values: Sequence[int]
) -> List[int]:
    """Per-position swap counts for a class sorted by ``[A ASC, B ASC]``.

    ``a_values`` and ``b_values`` are the projections of the sorted class on
    ``A`` and ``B``.  Position ``i`` is swapped with position ``j`` iff their
    ``A`` values differ strictly and their ``B`` values are ordered the
    opposite way.  The result counts, for each position, the number of
    positions it is swapped with.

    Runs in ``O(m log m)`` using two Fenwick-tree sweeps; ties on ``A`` are
    handled by inserting whole tie groups after querying them, so equal-``A``
    pairs are never counted.
    """
    if len(a_values) != len(b_values):
        raise ValueError("a_values and b_values must have the same length")
    size = len(a_values)
    if size == 0:
        return []
    b_ranks, num_distinct = _dense_ranks(b_values)
    counts = [0] * size

    # Group positions by equal A value; positions are already in A-ascending
    # order, so groups are contiguous.
    groups: List[List[int]] = []
    for position in range(size):
        if groups and a_values[groups[-1][0]] == a_values[position]:
            groups[-1].append(position)
        else:
            groups.append([position])

    # Forward sweep: swaps with earlier positions (smaller A, larger B).
    tree = FenwickTree(num_distinct)
    inserted = 0
    for group in groups:
        for position in group:
            greater_before = inserted - tree.prefix_sum(b_ranks[position])
            counts[position] += greater_before
        for position in group:
            tree.add(b_ranks[position])
        inserted += len(group)

    # Backward sweep: swaps with later positions (larger A, smaller B).
    tree = FenwickTree(num_distinct)
    for group in reversed(groups):
        for position in group:
            smaller_after = tree.prefix_sum(b_ranks[position] - 1)
            counts[position] += smaller_after
        for position in group:
            tree.add(b_ranks[position])
    return counts


def total_swap_pairs(a_values: Sequence[int], b_values: Sequence[int]) -> int:
    """Total number of swapped pairs in a class sorted by ``[A ASC, B ASC]``.

    Equals half the sum of the per-position counts; exposed separately
    because several statistics in the benchmarks report it directly.
    """
    counts = per_position_swap_counts(a_values, b_values)
    return sum(counts) // 2
