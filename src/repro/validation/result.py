"""The common result type returned by every validator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of validating one dependency candidate on one relation.

    Attributes
    ----------
    dependency:
        The dependency object that was validated (a :class:`CanonicalOC`,
        :class:`OFD`, :class:`CanonicalOD` or :class:`ListOD`).
    num_rows:
        ``|r|`` — the size of the relation the candidate was validated on.
    removal_rows:
        A removal set: row indices whose removal makes the dependency hold.
        For the optimal validator this set is minimal (Theorem 3.3); for the
        iterative validator it may be larger.  When validation aborted early
        because the approximation threshold was crossed
        (``exceeded_threshold``), the set contains only the rows removed up
        to that point and is *not* a removal set.
    threshold:
        The approximation threshold the candidate was validated against, or
        ``None`` when the caller only asked for the approximation factor.
    exceeded_threshold:
        ``True`` when the validator stopped early after the threshold was
        crossed (the paper's "INVALID" outcome).
    """

    dependency: object
    num_rows: int
    removal_rows: FrozenSet[int] = field(default_factory=frozenset)
    threshold: Optional[float] = None
    exceeded_threshold: bool = False

    # -- derived quantities ----------------------------------------------------

    @property
    def removal_size(self) -> int:
        """``|s|`` — the cardinality of the reported removal set."""
        return len(self.removal_rows)

    @property
    def approximation_factor(self) -> float:
        """``e(φ) = |s| / |r|`` (Definition 2.14).

        Meaningless (a lower bound only) when ``exceeded_threshold`` is set.
        """
        if self.num_rows == 0:
            return 0.0
        return self.removal_size / self.num_rows

    @property
    def holds_exactly(self) -> bool:
        """``True`` iff the dependency holds with no exceptions."""
        return not self.exceeded_threshold and self.removal_size == 0

    @property
    def is_valid(self) -> bool:
        """``True`` iff the approximation factor is within the threshold.

        When no threshold was supplied, a candidate is "valid" iff it holds
        exactly, matching the exact-discovery special case ``ε = 0``.
        """
        if self.exceeded_threshold:
            return False
        if self.threshold is None:
            return self.holds_exactly
        return self.approximation_factor <= self.threshold + 1e-12

    def __str__(self) -> str:
        status = "INVALID" if not self.is_valid else (
            "exact" if self.holds_exactly else
            f"approximate (e={self.approximation_factor:.4f})"
        )
        return f"{self.dependency!r}: {status}, removed {self.removal_size}/{self.num_rows}"
