"""Algorithm 2 — the paper's optimal LNDS-based AOC validator.

For each equivalence class ``E`` of the context:

1. order the class by ``[A ASC, B ASC]`` (line 3),
2. compute a longest non-decreasing subsequence of the projection over
   ``B`` (line 4),
3. the tuples *not* on that subsequence join the removal set (line 5).

The union over classes is a **minimal** removal set for the OC
(Theorem 3.3) and the overall runtime is ``O(n log n)`` (worst case
``m = n`` for a single class), which matches the ``Ω(n log n)`` lower bound
proved by reduction from LIS-DEC (Theorem 3.4).

The module exposes two layers:

* :func:`optimal_removal_rows` — the kernel over pre-materialised classes
  and rank columns, which is what the discovery framework calls in its
  inner loop;
* :func:`validate_aoc_optimal` — the public single-candidate API on a
  :class:`Relation`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.dataset.partition import PartitionCache
from repro.dataset.relation import Relation
from repro.dataset.sorting import projection, sort_class_asc_asc
from repro.dependencies.oc import CanonicalOC
from repro.validation.common import context_classes, removal_limit, validation_backend
from repro.validation.lnds import lnds_indices, lnds_length
from repro.validation.result import ValidationResult


def class_removal_rows(
    class_rows: Sequence[int],
    a_ranks: Sequence[int],
    b_ranks: Sequence[int],
) -> List[int]:
    """Minimal removal rows for a single equivalence class.

    The class is sorted by ``[A ASC, B ASC]``; rows not on a longest
    non-decreasing subsequence of the ``B`` projection must be removed.
    """
    ordered = sort_class_asc_asc(class_rows, a_ranks, b_ranks)
    values = projection(ordered, b_ranks)
    kept_positions = set(lnds_indices(values))
    return [row for position, row in enumerate(ordered)
            if position not in kept_positions]


def class_removal_count(
    class_rows: Sequence[int],
    a_ranks: Sequence[int],
    b_ranks: Sequence[int],
) -> int:
    """Size of the minimal removal set of one class (no reconstruction).

    Cheaper than :func:`class_removal_rows` because only the LNDS *length*
    is needed; used when the caller only wants the approximation factor.
    """
    ordered = sort_class_asc_asc(class_rows, a_ranks, b_ranks)
    values = projection(ordered, b_ranks)
    return len(values) - lnds_length(values)


def optimal_removal_rows(
    classes: Sequence[Sequence[int]],
    a_ranks: Sequence[int],
    b_ranks: Sequence[int],
    limit: Optional[int] = None,
) -> Tuple[List[int], bool]:
    """Minimal removal rows for an AOC over pre-built context classes.

    When ``limit`` is given the computation stops as soon as the removal set
    provably exceeds it (the candidate is then "INVALID" w.r.t. the
    threshold); the partial set collected so far is returned with the
    ``exceeded`` flag set.  Because every class's contribution is itself
    minimal, stopping early never mislabels a valid candidate.
    """
    removal: List[int] = []
    for class_rows in classes:
        removal.extend(class_removal_rows(class_rows, a_ranks, b_ranks))
        if limit is not None and len(removal) > limit:
            return removal, True
    return removal, False


def optimal_removal_count(
    classes: Sequence[Sequence[int]],
    a_ranks: Sequence[int],
    b_ranks: Sequence[int],
    limit: Optional[int] = None,
) -> Tuple[int, bool]:
    """Size of the minimal removal set (count-only fast path)."""
    count = 0
    for class_rows in classes:
        count += class_removal_count(class_rows, a_ranks, b_ranks)
        if limit is not None and count > limit:
            return count, True
    return count, False


def validate_aoc_optimal(
    relation: Relation,
    oc: CanonicalOC,
    threshold: Optional[float] = None,
    partition_cache: Optional[PartitionCache] = None,
    backend=None,
) -> ValidationResult:
    """Validate an approximate OC with Algorithm 2 (optimal, minimal).

    Parameters
    ----------
    relation:
        The table instance ``r``.
    oc:
        The canonical OC candidate ``X: A ~ B``.
    threshold:
        Approximation threshold ``ε``; when given, validation may stop early
        once the removal set exceeds ``ε·|r|`` (the paper's "INVALID"
        outcome).  When ``None``, the exact approximation factor and a full
        minimal removal set are always computed.
    partition_cache:
        Optional partition cache shared across candidates.
    backend:
        Compute backend (instance, name or ``None`` for the default); all
        backends return identical results.

    Examples
    --------
    >>> from repro.dataset.examples import employee_salary_table
    >>> from repro.dependencies import CanonicalOC
    >>> table = employee_salary_table()
    >>> result = validate_aoc_optimal(table, CanonicalOC([], "sal", "tax"))
    >>> result.removal_size, round(result.approximation_factor, 2)
    (4, 0.44)
    """
    backend = validation_backend(backend, partition_cache)
    encoded = relation.encoded(backend)
    a_ranks = encoded.native_ranks(oc.a)
    b_ranks = encoded.native_ranks(oc.b)
    classes = context_classes(relation, oc.context, partition_cache, backend)
    limit = removal_limit(relation.num_rows, threshold)
    removal, exceeded = backend.oc_optimal_removal_rows(
        classes, a_ranks, b_ranks, limit
    )
    return ValidationResult(
        dependency=oc,
        num_rows=relation.num_rows,
        removal_rows=frozenset(removal),
        threshold=threshold,
        exceeded_threshold=exceeded,
    )
