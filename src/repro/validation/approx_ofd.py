"""Approximate OFD validation (the linear-time ``g3`` measure).

The paper relies on the established result (Huhtala et al., TANE) that
approximate FDs — and therefore approximate OFDs, which are the same
statement in the canonical framework — can be validated in linear time: for
each equivalence class of the context keep the most frequent value of the
right-hand-side attribute and remove the rest.  The resulting removal set is
minimal for the split-only violation type, so the approximation factor is
exact.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Sequence, Tuple

from repro.dataset.partition import PartitionCache
from repro.dataset.relation import Relation
from repro.dependencies.ofd import OFD
from repro.validation.common import context_classes, removal_limit, validation_backend
from repro.validation.result import ValidationResult


def aofd_removal_rows(
    classes: Sequence[Sequence[int]],
    value_ranks: Sequence[int],
    limit: Optional[int] = None,
) -> Tuple[List[int], bool]:
    """Minimal removal rows for an approximate OFD over pre-built classes.

    For every class, all rows not carrying the class's most frequent value
    must be removed.  When ``limit`` is given, validation aborts as soon as
    the removal set grows beyond it and ``(partial_rows, True)`` is
    returned.
    """
    removal: List[int] = []
    for class_rows in classes:
        frequencies = Counter(value_ranks[row] for row in class_rows)
        keep_value, _ = frequencies.most_common(1)[0]
        for row in class_rows:
            if value_ranks[row] != keep_value:
                removal.append(row)
        if limit is not None and len(removal) > limit:
            return removal, True
    return removal, False


def validate_aofd(
    relation: Relation,
    ofd: OFD,
    threshold: Optional[float] = None,
    partition_cache: Optional[PartitionCache] = None,
    backend=None,
) -> ValidationResult:
    """Validate an approximate OFD; the removal set returned is minimal."""
    backend = validation_backend(backend, partition_cache)
    encoded = relation.encoded(backend)
    value_ranks = encoded.native_ranks(ofd.attribute)
    classes = context_classes(relation, ofd.context, partition_cache, backend)
    limit = removal_limit(relation.num_rows, threshold)
    removal, exceeded = backend.ofd_removal_rows(classes, value_ranks, limit)
    return ValidationResult(
        dependency=ofd,
        num_rows=relation.num_rows,
        removal_rows=frozenset(removal),
        threshold=threshold,
        exceeded_threshold=exceeded,
    )
