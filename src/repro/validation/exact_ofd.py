"""Exact validation of order functional dependencies (OFDs).

``X: [] ↦→ A`` holds exactly iff ``A`` is constant within every equivalence
class of ``X`` — i.e. the partition ``Pi_X`` refines ``Pi_{X ∪ {A}}`` with no
class splitting.  With stripped partitions the check is linear in the number
of grouped rows.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.dataset.partition import PartitionCache
from repro.dataset.relation import Relation
from repro.dependencies.ofd import OFD
from repro.validation.common import context_classes, validation_backend
from repro.validation.result import ValidationResult


def ofd_holds_in_classes(
    classes: Sequence[Sequence[int]], value_ranks: Sequence[int]
) -> bool:
    """Exact OFD check over pre-materialised context classes."""
    for class_rows in classes:
        first = value_ranks[class_rows[0]]
        for row in class_rows[1:]:
            if value_ranks[row] != first:
                return False
    return True


def validate_exact_ofd(
    relation: Relation,
    ofd: OFD,
    partition_cache: Optional[PartitionCache] = None,
    backend=None,
) -> ValidationResult:
    """Validate an OFD exactly (the attribute must be constant per class)."""
    backend = validation_backend(backend, partition_cache)
    encoded = relation.encoded(backend)
    value_ranks = encoded.native_ranks(ofd.attribute)
    classes = context_classes(relation, ofd.context, partition_cache, backend)
    holds = backend.ofd_holds(classes, value_ranks)
    return ValidationResult(
        dependency=ofd,
        num_rows=relation.num_rows,
        removal_rows=frozenset(),
        threshold=0.0,
        exceeded_threshold=not holds,
    )
