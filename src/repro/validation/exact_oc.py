"""Exact validation of canonical order compatibilities.

A canonical OC ``X: A ~ B`` holds exactly iff no equivalence class of ``X``
contains a swap, which is the case iff, after sorting each class by
``[A ASC, B ASC]``, the projection over ``B`` is non-decreasing.  Given
pre-sorted classes this check is linear in the class size, which is why the
paper contrasts the exact validator's ``O(n)`` with the approximate
validator's ``O(n log n)``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.dataset.partition import PartitionCache
from repro.dataset.relation import Relation
from repro.dataset.sorting import is_non_decreasing, projection, sort_class_asc_asc
from repro.dependencies.oc import CanonicalOC
from repro.validation.common import context_classes, validation_backend
from repro.validation.result import ValidationResult


def oc_holds_in_classes(
    classes: Sequence[Sequence[int]],
    a_ranks: Sequence[int],
    b_ranks: Sequence[int],
) -> bool:
    """Exact OC check over pre-materialised context classes."""
    for class_rows in classes:
        ordered = sort_class_asc_asc(class_rows, a_ranks, b_ranks)
        if not is_non_decreasing(projection(ordered, b_ranks)):
            return False
    return True


def first_swap_in_classes(
    classes: Sequence[Sequence[int]],
    a_ranks: Sequence[int],
    b_ranks: Sequence[int],
) -> Optional[tuple]:
    """Return one witnessing swap pair ``(s, t)`` if the OC is violated.

    Useful for error messages and the outlier-detection application; returns
    ``None`` when the OC holds.
    """
    for class_rows in classes:
        ordered = sort_class_asc_asc(class_rows, a_ranks, b_ranks)
        values = projection(ordered, b_ranks)
        best_row = ordered[0]
        best_value = values[0]
        for position in range(1, len(ordered)):
            if values[position] < best_value:
                return (best_row, ordered[position])
            if values[position] >= best_value:
                best_value = values[position]
                best_row = ordered[position]
    return None


def validate_exact_oc(
    relation: Relation,
    oc: CanonicalOC,
    partition_cache: Optional[PartitionCache] = None,
    backend=None,
) -> ValidationResult:
    """Validate a canonical OC exactly (no tuple removals allowed).

    The returned :class:`ValidationResult` has an empty removal set when the
    OC holds; otherwise ``exceeded_threshold`` is set with a zero threshold,
    mirroring the exact-discovery special case ``ε = 0``.
    """
    backend = validation_backend(backend, partition_cache)
    encoded = relation.encoded(backend)
    a_ranks = encoded.native_ranks(oc.a)
    b_ranks = encoded.native_ranks(oc.b)
    classes = context_classes(relation, oc.context, partition_cache, backend)
    holds = backend.oc_holds(classes, a_ranks, b_ranks)
    return ValidationResult(
        dependency=oc,
        num_rows=relation.num_rows,
        removal_rows=frozenset(),
        threshold=0.0,
        exceeded_threshold=not holds,
    )
