"""Approximate OD validation — the Section 3.3 extension of Algorithm 2.

Algorithm 2 validates approximate OCs.  The same LNDS machinery extends to
full order dependencies by changing only the sort order:

* **canonical ODs** ``X: A ↦→ B``: within each equivalence class of ``X``,
  order tuples by ``A`` *ascending* breaking ties by ``B`` *descending*,
  then remove everything not on a longest non-decreasing subsequence of the
  ``B`` projection.  The descending tie-break forces any split (two tuples
  with equal ``A`` but different ``B``) to appear as a strict decrease, so
  the LNDS removes splits as well as swaps — and the removal set remains
  minimal by the same exchange argument as Theorem 3.3.

* **list-based ODs** ``X ↦→ Y`` (footnote 1): order all tuples by the nested
  order over ``X`` ascending, breaking ties by the nested order over ``Y``
  descending, and run the LNDS over the (dense-encoded) ``Y`` projection.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataset.partition import PartitionCache
from repro.dataset.relation import Relation
from repro.dataset.sorting import projection, sort_class_asc_desc
from repro.dependencies.od import CanonicalOD, ListOD
from repro.validation.common import context_classes, removal_limit, validation_backend
from repro.validation.lnds import lnds_indices
from repro.validation.result import ValidationResult


def class_od_removal_rows(
    class_rows: Sequence[int],
    a_ranks: Sequence[int],
    b_ranks: Sequence[int],
) -> List[int]:
    """Minimal removal rows of one class for the canonical OD ``X: A ↦→ B``."""
    ordered = sort_class_asc_desc(class_rows, a_ranks, b_ranks)
    values = projection(ordered, b_ranks)
    kept = set(lnds_indices(values))
    return [row for position, row in enumerate(ordered) if position not in kept]


def od_removal_rows(
    classes: Sequence[Sequence[int]],
    a_ranks: Sequence[int],
    b_ranks: Sequence[int],
    limit: Optional[int] = None,
) -> Tuple[List[int], bool]:
    """Minimal removal rows for a canonical AOD over pre-built classes."""
    removal: List[int] = []
    for class_rows in classes:
        removal.extend(class_od_removal_rows(class_rows, a_ranks, b_ranks))
        if limit is not None and len(removal) > limit:
            return removal, True
    return removal, False


def validate_aod_optimal(
    relation: Relation,
    od: CanonicalOD,
    threshold: Optional[float] = None,
    partition_cache: Optional[PartitionCache] = None,
    backend=None,
) -> ValidationResult:
    """Validate a canonical approximate OD ``X: A ↦→ B`` with the LNDS method.

    Examples
    --------
    >>> from repro.dataset.examples import employee_salary_table
    >>> from repro.dependencies import CanonicalOD
    >>> table = employee_salary_table()
    >>> od = CanonicalOD([], "sal", "taxGrp")
    >>> validate_aod_optimal(table, od).holds_exactly
    True
    """
    backend = validation_backend(backend, partition_cache)
    encoded = relation.encoded(backend)
    a_ranks = encoded.native_ranks(od.a)
    b_ranks = encoded.native_ranks(od.b)
    classes = context_classes(relation, od.context, partition_cache, backend)
    limit = removal_limit(relation.num_rows, threshold)
    removal, exceeded = backend.od_removal_rows(classes, a_ranks, b_ranks, limit)
    return ValidationResult(
        dependency=od,
        num_rows=relation.num_rows,
        removal_rows=frozenset(removal),
        threshold=threshold,
        exceeded_threshold=exceeded,
    )


def _composite_ranks(relation: Relation, attributes: Sequence[str]) -> List[int]:
    """Dense-encode the nested-order rank of every row over ``attributes``.

    The rank tuples are ordered lexicographically (which *is* the nested
    order of Definition 2.1) and mapped to dense integers so the LNDS kernel
    can consume them directly.
    """
    encoded = relation.encoded()
    rank_columns = [encoded.ranks(a) for a in attributes]
    keys = [tuple(column[row] for column in rank_columns)
            for row in range(relation.num_rows)]
    ordered_keys = sorted(set(keys))
    dense: Dict[Tuple[int, ...], int] = {key: i for i, key in enumerate(ordered_keys)}
    return [dense[key] for key in keys]


def validate_list_aod(
    relation: Relation,
    od: ListOD,
    threshold: Optional[float] = None,
) -> ValidationResult:
    """Validate a list-based approximate OD ``X ↦→ Y`` (Section 3.3, footnote 1).

    Tuples are ordered ascending by the nested order over ``X`` and ties are
    broken descending by the nested order over ``Y``; the complement of a
    longest non-decreasing subsequence of the ``Y`` ranks is a minimal
    removal set.

    Examples
    --------
    >>> from repro.dataset.examples import employee_salary_table
    >>> from repro.dependencies import ListOD
    >>> table = employee_salary_table()
    >>> validate_list_aod(table, ListOD(["sal"], ["taxGrp"])).holds_exactly
    True
    """
    if relation.num_rows == 0:
        return ValidationResult(od, 0, frozenset(), threshold, False)
    x_ranks = _composite_ranks(relation, od.lhs) if od.lhs else [0] * relation.num_rows
    y_ranks = _composite_ranks(relation, od.rhs)
    order = sorted(range(relation.num_rows),
                   key=lambda row: (x_ranks[row], -y_ranks[row]))
    values = [y_ranks[row] for row in order]
    kept = set(lnds_indices(values))
    removal = [row for position, row in enumerate(order) if position not in kept]
    limit = removal_limit(relation.num_rows, threshold)
    exceeded = limit is not None and len(removal) > limit
    return ValidationResult(
        dependency=od,
        num_rows=relation.num_rows,
        removal_rows=frozenset(removal),
        threshold=threshold,
        exceeded_threshold=exceeded,
    )
