"""Validation algorithms for exact and approximate dependencies.

The centre of the paper is Algorithm 2
(:func:`validate_aoc_optimal`): validating an approximate order
compatibility by computing, per equivalence class of the context, a longest
non-decreasing subsequence (LNDS) of the ``B`` projection after sorting by
``[A ASC, B ASC]``.  The complement of the LNDS is a *minimal* removal set
(Theorem 3.3) and the runtime ``O(n log n)`` is optimal (Theorem 3.4).

Algorithm 1 (:func:`validate_aoc_iterative`) is the greedy baseline the
paper improves on: repeatedly remove the tuple with the most swaps.  It is
quadratic in the class size and may overestimate the removal set.

The remaining validators cover the other candidate types handled by the
discovery framework: exact OCs, exact OFDs, approximate OFDs (the TANE
``g3`` measure) and the list-based / canonical OD extensions of Section 3.3.
"""

from repro.validation.result import ValidationResult
from repro.validation.lnds import (
    lis_indices,
    lis_length,
    lnds_indices,
    lnds_length,
)
from repro.validation.inversions import (
    FenwickTree,
    count_inversions,
    per_position_swap_counts,
)
from repro.validation.exact_oc import validate_exact_oc
from repro.validation.exact_ofd import validate_exact_ofd
from repro.validation.approx_ofd import validate_aofd
from repro.validation.approx_oc_optimal import (
    optimal_removal_rows,
    validate_aoc_optimal,
)
from repro.validation.approx_oc_iterative import (
    iterative_removal_rows,
    validate_aoc_iterative,
)
from repro.validation.approx_od import (
    validate_aod_optimal,
    validate_list_aod,
)
from repro.validation.bidirectional import best_polarity, validate_aboc_optimal
from repro.validation.distributed import (
    ShardedValidationPool,
    assign_classes_to_workers,
    validate_aoc_distributed,
)

__all__ = [
    "FenwickTree",
    "ShardedValidationPool",
    "ValidationResult",
    "assign_classes_to_workers",
    "best_polarity",
    "count_inversions",
    "validate_aboc_optimal",
    "validate_aoc_distributed",
    "iterative_removal_rows",
    "lis_indices",
    "lis_length",
    "lnds_indices",
    "lnds_length",
    "optimal_removal_rows",
    "per_position_swap_counts",
    "validate_aoc_iterative",
    "validate_aoc_optimal",
    "validate_aod_optimal",
    "validate_aofd",
    "validate_exact_oc",
    "validate_exact_ofd",
    "validate_list_aod",
]
