"""Shared plumbing for the validators.

Every canonical-dependency validator walks the equivalence classes of the
candidate's context (Definition 2.8).  The helpers here resolve those
classes, either through a caller-supplied :class:`PartitionCache` (the
discovery framework's case, where contexts repeat heavily across candidates)
or by building the partition on the fly for the one-off public API calls.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.dataset.partition import Partition, PartitionCache
from repro.dataset.relation import Relation


def context_classes(
    relation: Relation,
    context: Iterable[str],
    partition_cache: Optional[PartitionCache] = None,
) -> List[List[int]]:
    """Stripped equivalence classes of ``context`` over ``relation``.

    Singleton classes are omitted: a class with one tuple can contain
    neither swaps nor splits, so it never contributes to a removal set.
    """
    context = list(context)
    if partition_cache is not None:
        return list(partition_cache.get_by_names(context))
    encoded = relation.encoded()
    if not context:
        return list(Partition.unit(relation.num_rows))
    partition = Partition.single(encoded.ranks(context[0]))
    for attribute in context[1:]:
        partition = partition.product(encoded.ranks(attribute))
    return list(partition)


def removal_limit(num_rows: int, threshold: Optional[float]) -> Optional[int]:
    """Maximum removal-set size allowed by ``threshold`` (``⌊ε·|r|⌋``).

    Returns ``None`` when no threshold is given, meaning the validator
    should compute the full approximation factor.
    """
    if threshold is None:
        return None
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"approximation threshold must be in [0, 1], got {threshold}")
    return int(threshold * num_rows + 1e-9)
