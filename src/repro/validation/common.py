"""Shared plumbing for the validators.

Every canonical-dependency validator walks the equivalence classes of the
candidate's context (Definition 2.8).  The helpers here resolve those
classes, either through a caller-supplied :class:`PartitionCache` (the
discovery framework's case, where contexts repeat heavily across candidates)
or by building the partition on the fly for the one-off public API calls.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.backend import BackendSpec, resolve_backend
from repro.dataset.partition import Partition, PartitionCache
from repro.dataset.relation import Relation


def context_classes(
    relation: Relation,
    context: Iterable[str],
    partition_cache: Optional[PartitionCache] = None,
    backend: BackendSpec = None,
) -> Sequence[Sequence[int]]:
    """Stripped equivalence classes of ``context`` over ``relation``.

    Singleton classes are omitted: a class with one tuple can contain
    neither swaps nor splits, so it never contributes to a removal set.
    Partition construction goes through ``backend`` (or the cache's backend
    when a :class:`PartitionCache` is supplied).

    When a cache is supplied, its :class:`Partition` object is returned
    as-is (it iterates over its classes): backends attach a columnar view
    to the partition, so repeated validations over the same context reuse
    one flattened array instead of rebuilding it per candidate.
    """
    context = list(context)
    if partition_cache is not None:
        return partition_cache.get_by_names(context)
    if not context:
        return list(Partition.unit(relation.num_rows))
    resolved = resolve_backend(backend)
    encoded = relation.encoded(resolved)
    partition = resolved.partition_single(
        encoded.native_ranks(context[0]), relation.num_rows
    )
    for attribute in context[1:]:
        partition = resolved.partition_refine(
            partition, encoded.native_ranks(attribute)
        )
    return list(partition)


def validation_backend(
    backend: BackendSpec, partition_cache: Optional[PartitionCache]
):
    """Resolve the backend a validator should use.

    An explicit ``backend`` wins; otherwise a supplied cache's backend is
    reused (so discovery-driven validations stay on one backend); otherwise
    the environment default applies.
    """
    if backend is None and partition_cache is not None:
        return partition_cache.backend
    return resolve_backend(backend)


def removal_limit(num_rows: int, threshold: Optional[float]) -> Optional[int]:
    """Maximum removal-set size allowed by ``threshold`` (``⌊ε·|r|⌋``).

    Returns ``None`` when no threshold is given, meaning the validator
    should compute the full approximation factor.
    """
    if threshold is None:
        return None
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"approximation threshold must be in [0, 1], got {threshold}")
    return int(threshold * num_rows + 1e-9)
