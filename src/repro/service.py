"""Compatibility shim for the serve layer.

The serving code now lives in the :mod:`repro.serve` package — admission
control and backpressure in :mod:`repro.serve.admission`, the service core
(dataset registry, result caches, lifecycle, deadlines, graceful shutdown)
in :mod:`repro.serve.service`, the HTTP handler and server in
:mod:`repro.serve.http`, and test-only fault injection in
:mod:`repro.serve.chaos`.  This module re-exports the public surface so
existing imports (``from repro.service import ProfilerService, make_server``)
keep working unchanged.
"""

from repro.serve import (  # noqa: F401
    DEFAULT_MAX_BODY_BYTES,
    DEFAULT_MAX_INFLIGHT,
    DEFAULT_MAX_UPLOAD_BYTES,
    DEFAULT_QUEUE_DEPTH,
    DEFAULT_REQUEST_SOCKET_TIMEOUT_SECONDS,
    DEFAULT_SHUTDOWN_GRACE_SECONDS,
    AdmissionCancelled,
    AdmissionController,
    AdmissionError,
    Draining,
    HttpFaultInjector,
    ProfilerService,
    QueueFull,
    ResilientHTTPServer,
    ServerSaturated,
    ServiceError,
    make_server,
)

__all__ = [
    "AdmissionCancelled",
    "AdmissionController",
    "AdmissionError",
    "DEFAULT_MAX_BODY_BYTES",
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_MAX_UPLOAD_BYTES",
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_REQUEST_SOCKET_TIMEOUT_SECONDS",
    "DEFAULT_SHUTDOWN_GRACE_SECONDS",
    "Draining",
    "HttpFaultInjector",
    "ProfilerService",
    "QueueFull",
    "ResilientHTTPServer",
    "ServerSaturated",
    "ServiceError",
    "make_server",
]
