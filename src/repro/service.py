"""``repro serve`` — a stdlib-HTTP profiling service.

The first real serving surface over the session API: the service keeps one
long-lived :class:`~repro.discovery.session.Profiler` per loaded dataset,
so every request after the first runs against warm state (encoded
relation, partition cache, validation memo, worker pool).

Endpoints (JSON in, JSON out; no dependencies beyond the stdlib):

``GET /healthz``
    ``{"status": "ok", "datasets": <count>, "result_cache": {hits, misses,
    entries}, "resilience": {worker_deaths, respawns, requeued_shards,
    inline_fallbacks, quarantined_shards, worker_timeouts, degraded},
    "planner": {calibrated, datasets}, "metrics": {...}}``.
    The resilience block aggregates the shared worker pool's recovery
    counters (all zero, ``degraded: false``, when the server runs without
    worker processes).  The planner block carries one execution-planner
    snapshot per dataset — cost-model parameters, calibration age and the
    recent per-level decisions — or ``null`` for datasets that have never
    served a ``plan="auto"`` run (see :mod:`repro.planner`).  The metrics
    block is the plain-dict view of the process-wide metrics registry
    (histograms collapse to ``{count, sum}``; see :mod:`repro.obs`).

``GET /metrics``
    Prometheus text exposition (version 0.0.4) of the same registry:
    engine run/level counters, pool resilience counters, dispatch
    round-trip and queue-wait histograms, planner prediction error, and
    serve-layer cache traffic, plus scrape-time gauges (datasets hosted,
    cache entries, pool degradation).

``GET /datasets``
    The loaded datasets with row/attribute counts and warm-cache info.

``POST /discover``
    Body: ``{"dataset": <name>, "request": {<DiscoveryRequest fields>}}``.
    ``dataset`` may be omitted when exactly one dataset is loaded.  Returns
    the full :meth:`DiscoveryResult.to_dict` payload.  With
    ``"stream": true`` the response is ``application/x-ndjson``: one line
    per discovery event (``level_started`` / ``dependency_found`` /
    ``level_completed``) and a final ``run_completed`` line carrying the
    complete result — level results leave the server as soon as each
    lattice level finishes, which is what lets a client overlap its own
    processing with the remaining search.

``POST /datasets/<name>/append``
    Body: ``{"rows": [<row>, ...], "request": {<DiscoveryRequest fields>}?}``.
    Appends rows to the named dataset's warm session (delta encoding,
    partition patching, memo purge — see :mod:`repro.incremental`) and
    invalidates its result cache.  With ``"request"`` the warm session is
    revalidated immediately: the response additionally carries the
    incremental ``result``, the ``revoked_ocs`` / ``revoked_ofds`` that
    fell out, and the repair ``plan``; the fresh result re-seeds the cache.

Completed (non-streamed *and* streamed) discovery results are cached per
dataset under the canonical request JSON and served without re-running the
engine until an append invalidates them; ``/healthz`` exposes the hit/miss
counters.

Concurrency: the HTTP server is threading, but runs against one dataset
are serialised with a per-dataset lock (the session's warm caches are not
thread-safe); different datasets profile concurrently.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterator, List, Optional

from repro.caching import BoundedLRU
from repro.dataset.relation import Relation
from repro.discovery.config import DiscoveryRequest
from repro.discovery.events import DiscoveryEvent, RunCompleted
from repro.discovery.results import DiscoveryResult
from repro.discovery.session import Profiler
from repro.obs import enable_metrics, get_metrics


class ServiceError(Exception):
    """A client-facing error with an HTTP status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ProfilerService:
    """A registry of named datasets, each backed by one warm session."""

    def __init__(
        self,
        *,
        backend=None,
        num_workers: int = 1,
        worker_timeout: Optional[float] = None,
        max_memo_entries: Optional[int] = None,
        max_cached_partitions: Optional[int] = None,
    ) -> None:
        self._backend = backend
        self._num_workers = num_workers
        self._worker_timeout = worker_timeout
        # Per-session memory bounds, forwarded to every dataset's Profiler
        # (LRU eviction; evicted state is recomputed, results never change).
        self._max_memo_entries = max_memo_entries
        self._max_cached_partitions = max_cached_partitions
        self._profilers: Dict[str, Profiler] = {}
        self._locks: Dict[str, threading.Lock] = {}
        self._pool = None
        # Result cache: dataset name -> canonical request JSON -> result.
        # Guarded by the per-dataset lock; invalidated by appends and
        # LRU-bounded per dataset so ad-hoc request streams cannot grow a
        # long-lived server without limit (an evicted result is recomputed).
        self._results: Dict[str, BoundedLRU] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        # Serving is the surface observability exists for: install the
        # process-wide metrics registry (idempotent) so engine, pool, and
        # planner instrumentation lands in /metrics and /healthz.
        enable_metrics()

    #: Per-dataset cap on cached results (each is a full DiscoveryResult).
    max_cached_results = 128

    # -- dataset registry --------------------------------------------------------

    def add_dataset(self, name: str, relation: Relation) -> Profiler:
        """Register ``relation`` under ``name`` and build its session."""
        if name in self._profilers:
            raise ValueError(f"dataset {name!r} already loaded")
        # One worker pool serves every dataset (its kernels are
        # dataset-agnostic), spawned now while the process is still
        # single-threaded: forking it lazily from a ThreadingHTTPServer
        # handler thread could inherit locks held by concurrent threads.
        if self._num_workers > 1 and self._pool is None:
            from repro.validation.distributed import ShardedValidationPool
            from repro.backend import resolve_backend

            self._pool = ShardedValidationPool(
                self._num_workers, backend=resolve_backend(self._backend),
                worker_timeout=self._worker_timeout,
            )
        profiler = Profiler(
            relation, backend=self._backend, num_workers=self._num_workers,
            shard_pool=self._pool,
            max_memo_entries=self._max_memo_entries,
            max_cached_partitions=self._max_cached_partitions,
        )
        self._profilers[name] = profiler
        self._locks[name] = threading.Lock()
        self._results[name] = BoundedLRU(self.max_cached_results)
        return profiler

    @property
    def dataset_names(self) -> List[str]:
        return sorted(self._profilers)

    def describe(self) -> List[Dict[str, object]]:
        """Dataset summaries for ``GET /datasets``."""
        described = []
        for name in self.dataset_names:
            profiler = self._profilers[name]
            described.append({
                "name": name,
                "num_rows": profiler.relation.num_rows,
                "attributes": profiler.relation.attribute_names,
                "backend": profiler.backend.name,
                "cache": profiler.cache_info(),
            })
        return described

    # -- discovery ---------------------------------------------------------------

    def _resolve(self, name: Optional[str]) -> str:
        if name is None:
            if len(self._profilers) == 1:
                return next(iter(self._profilers))
            raise ServiceError(
                400,
                "request must name a dataset "
                f"(loaded: {self.dataset_names})",
            )
        if name not in self._profilers:
            raise ServiceError(
                404, f"unknown dataset {name!r} (loaded: {self.dataset_names})"
            )
        return name

    def _check_request(self, request: DiscoveryRequest) -> None:
        # Worker processes are a deployment concern (--workers on `repro
        # serve`), not something a client may resize per request: honoring
        # it would let any caller respawn — or arbitrarily grow — the
        # server's warm process pool.  Two values are safe and accepted:
        # the server's own setting (reuses the existing pool) and 1 (runs
        # in-process, never touches the pool).  Served results only ever
        # embed one of these in their request, so replaying a response's
        # request always works.
        if (request.num_workers is not None
                and request.num_workers not in (1, self._num_workers)):
            raise ServiceError(
                400,
                "num_workers is a server-side setting "
                f"(this server runs {self._num_workers}; set it with "
                "repro serve --workers); remove it from the request",
            )

    def discover(
        self, dataset: Optional[str], request: DiscoveryRequest
    ) -> DiscoveryResult:
        """Run one discovery against the named dataset's warm session.

        Completed results are cached under the canonical request JSON and
        replayed until an append to the dataset invalidates them."""
        name = self._resolve(dataset)
        self._check_request(request)
        key = request.to_json()
        with self._locks[name]:
            cached = self._results[name].get(key)
            if cached is not None:
                self._cache_hits += 1
                get_metrics().counter("repro_result_cache_hits_total").inc()
                return cached
            self._cache_misses += 1
            get_metrics().counter("repro_result_cache_misses_total").inc()
            result = self._profilers[name].discover(request)
            self._store_result(name, key, result)
            return result

    def _store_result(self, name: str, key: str, result: DiscoveryResult) -> None:
        # Interrupted runs are partial (and timing-dependent): never cache.
        if not result.cancelled and not result.timed_out:
            self._results[name][key] = result

    def iter_events(
        self, dataset: Optional[str], request: DiscoveryRequest
    ) -> Iterator[DiscoveryEvent]:
        """Stream one discovery; the per-dataset lock is held until the
        stream is exhausted (or closed).  Dataset resolution is eager so a
        bad name fails before any event (and before HTTP headers go out).
        The final result populates the result cache like a non-streamed
        run (a stream never *serves* from the cache: its point is watching
        the levels finish live)."""
        name = self._resolve(dataset)
        self._check_request(request)
        key = request.to_json()

        def _generate() -> Iterator[DiscoveryEvent]:
            with self._locks[name]:
                for event in self._profilers[name].iter_events(request):
                    if isinstance(event, RunCompleted):
                        self._store_result(name, key, event.result)
                    yield event

        return _generate()

    def append(
        self,
        dataset: Optional[str],
        rows: List[object],
        request: Optional[DiscoveryRequest] = None,
    ):
        """Append rows to a dataset's warm session; optionally revalidate.

        Returns ``(name, delta_summary, outcome)`` where ``outcome`` is the
        :class:`~repro.incremental.IncrementalOutcome` of the revalidation
        when ``request`` was given, else ``None``.  The dataset's result
        cache is always invalidated; a revalidated result re-seeds it.
        """
        name = self._resolve(dataset)
        if request is not None:
            self._check_request(request)
        with self._locks[name]:
            profiler = self._profilers[name]
            summary = profiler.extend(rows)
            self._results[name].clear()
            outcome = None
            if request is not None:
                outcome = profiler.discover_incremental(request)
                self._store_result(name, request.to_json(), outcome.result)
            return name, summary, outcome

    def result_cache_stats(self) -> Dict[str, int]:
        """Hit/miss counters and current size of the result cache."""
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "entries": sum(len(cache) for cache in self._results.values()),
        }

    def resilience_stats(self) -> Dict[str, object]:
        """The shared pool's recovery counters for ``/healthz``.

        Servers running without worker processes (``--workers 1``) report
        all-zero counters and ``degraded: false`` — the schema is stable so
        monitoring never has to special-case the serial deployment.
        """
        if self._pool is not None and not self._pool.closed:
            return self._pool.resilience_stats()
        from repro.validation.distributed import RESILIENCE_COUNTERS

        snapshot: Dict[str, object] = {key: 0 for key in RESILIENCE_COUNTERS}
        snapshot["degraded"] = False
        return snapshot

    def planner_stats(self) -> Dict[str, object]:
        """Per-dataset execution-planner snapshots for ``/healthz``.

        Stable schema: datasets that have never served a ``plan="auto"``
        run report ``null`` (no planner has been calibrated for them), so
        monitoring can always read the block.
        """
        per_dataset: Dict[str, object] = {
            name: profiler.planner_info()
            for name, profiler in self._profilers.items()
        }
        return {
            "calibrated": sum(
                1 for info in per_dataset.values() if info is not None
            ),
            "datasets": per_dataset,
        }

    def _refresh_gauges(self) -> None:
        """Set the scrape-time gauges from current service state."""
        registry = get_metrics()
        if not registry.enabled:
            return
        resilience = self.resilience_stats()
        registry.gauge("repro_pool_degraded").set(
            1 if resilience.get("degraded") else 0
        )
        registry.gauge("repro_datasets").set(len(self._profilers))
        registry.gauge("repro_result_cache_entries").set(
            sum(len(cache) for cache in self._results.values())
        )

    def metrics_text(self) -> str:
        """The Prometheus text-exposition body for ``GET /metrics``."""
        self._refresh_gauges()
        return get_metrics().render_prometheus()

    def metrics_snapshot(self) -> Dict[str, object]:
        """Plain-dict metrics for the ``metrics`` section of ``/healthz``
        (histograms collapse to ``{count, sum}``)."""
        self._refresh_gauges()
        return get_metrics().snapshot()

    def close(self) -> None:
        """Close every session and the shared worker pool."""
        for profiler in self._profilers.values():
            profiler.close()
        if self._pool is not None:
            self._pool.close()
            self._pool = None


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the :class:`ProfilerService`."""

    # HTTP/1.0 keeps the streaming path simple: no chunked framing needed,
    # the connection close terminates the NDJSON stream.
    protocol_version = "HTTP/1.0"
    server_version = "repro-serve"
    # Socket-level timeout (reads AND writes).  Without it, a streaming
    # client that stops reading blocks flush() forever while the handler
    # holds the dataset lock, wedging all discovery on that dataset.  The
    # timeout raises an OSError, which the disconnect guards treat as a
    # routine client loss.  It does not bound computation: no socket I/O
    # happens while a discovery level is running.
    timeout = 300

    # Populated by make_server().
    service: ProfilerService = None  # type: ignore[assignment]
    quiet = True

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.quiet:
            super().log_message(format, *args)

    # -- helpers -----------------------------------------------------------------

    def _send_json(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _send_metrics(self) -> None:
        body = self.service.metrics_text().encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    #: Upper bound on request bodies: requests are small JSON documents,
    #: so anything past this is a client error, not a payload to buffer.
    max_body_bytes = 1 << 20

    def _read_body(self) -> Dict[str, object]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise ServiceError(400, "invalid Content-Length header")
        if length < 0:
            raise ServiceError(400, "invalid Content-Length header")
        if length > self.max_body_bytes:
            raise ServiceError(
                400,
                f"request body too large ({length} bytes; "
                f"limit {self.max_body_bytes})",
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(400, f"invalid JSON body: {error}")
        if not isinstance(body, dict):
            raise ServiceError(400, "JSON body must be an object")
        return body

    # -- routes ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path in ("/", "/healthz"):
                self._send_json(200, {
                    "status": "ok",
                    "datasets": len(self.service.dataset_names),
                    "result_cache": self.service.result_cache_stats(),
                    "resilience": self.service.resilience_stats(),
                    "planner": self.service.planner_stats(),
                    "metrics": self.service.metrics_snapshot(),
                })
            elif self.path == "/metrics":
                self._send_metrics()
            elif self.path == "/datasets":
                self._send_json(200, {"datasets": self.service.describe()})
            else:
                self._send_error_json(404, f"unknown path {self.path!r}")
        except OSError:
            pass  # client went away mid-response: routine disconnect

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            self._handle_post()
        except OSError:
            pass  # client went away mid-response: routine disconnect

    def _handle_post(self) -> None:
        append_dataset = self._append_path_dataset()
        if self.path != "/discover" and append_dataset is None:
            self._send_error_json(404, f"unknown path {self.path!r}")
            return
        try:
            body = self._read_body()
            if append_dataset is not None:
                self._handle_append(append_dataset, body)
                return
            dataset = body.get("dataset")
            request = self._parse_request(body.get("request") or {})
            stream = body.get("stream", False)
            if not isinstance(stream, bool):
                raise ServiceError(
                    400, f"stream must be a JSON boolean, got {stream!r}"
                )
            if stream:
                self._stream_discovery(dataset, request)
            else:
                result = self.service.discover(dataset, request)
                self._send_json(200, result.to_dict())
        except ServiceError as error:
            self._send_error_json(error.status, str(error))
        except (KeyError, ValueError) as error:
            # e.g. attributes not in the relation (engine KeyError): a bad
            # request, not a server fault — answer with JSON, don't let the
            # handler thread die and drop the connection.
            self._send_error_json(400, str(error))
        except RuntimeError as error:
            # Lifecycle faults (closed session/pool) are server-side: a
            # 5xx tells the client to retry, not to fix its request.
            self._send_error_json(500, str(error))

    def _append_path_dataset(self) -> Optional[str]:
        """Dataset name from a ``/datasets/<name>/append`` path, else None."""
        parts = self.path.split("/")
        if len(parts) == 4 and parts[0] == "" and parts[1] == "datasets" \
                and parts[2] and parts[3] == "append":
            from urllib.parse import unquote

            return unquote(parts[2])
        return None

    @staticmethod
    def _parse_request(data: object) -> DiscoveryRequest:
        if not isinstance(data, dict):
            raise ServiceError(
                400, f"request must be a JSON object, got {data!r}"
            )
        try:
            return DiscoveryRequest.from_dict(data)
        except (TypeError, ValueError) as error:
            raise ServiceError(400, f"invalid discovery request: {error}")

    def _handle_append(self, dataset: str, body: Dict[str, object]) -> None:
        rows = body.get("rows")
        if not isinstance(rows, list):
            raise ServiceError(
                400, "append body must carry a JSON array under 'rows'"
            )
        request = None
        if body.get("request") is not None:
            request = self._parse_request(body["request"])
        name, summary, outcome = self.service.append(dataset, rows, request)
        payload: Dict[str, object] = {
            "dataset": name,
            "delta": summary.to_dict(),
        }
        if outcome is not None:
            payload.update(outcome.to_dict())
        self._send_json(200, payload)

    def _stream_discovery(
        self, dataset: Optional[str], request: DiscoveryRequest
    ) -> None:
        # Bad dataset / bad request fail here, before any headers go out.
        events = self.service.iter_events(dataset, request)
        try:
            first = next(events)
        except (KeyError, ValueError) as error:
            events.close()
            raise ServiceError(400, str(error))
        except RuntimeError as error:
            events.close()
            raise ServiceError(500, str(error))
        except StopIteration:
            first = None
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        try:
            if first is not None:
                self._write_event(first)
            for event in events:
                self._write_event(event)
        except OSError:
            # The client went away mid-stream (reset, broken pipe, timeout):
            # a routine disconnect, not a server fault — stop quietly.
            pass
        except (KeyError, ValueError, RuntimeError) as error:
            # Headers are gone; close the stream with an error line instead
            # of silently dropping the connection.
            try:
                self.wfile.write(
                    json.dumps({"event": "error", "error": str(error)},
                               sort_keys=True).encode("utf-8") + b"\n"
                )
            except OSError:
                pass
        finally:
            events.close()

    def _write_event(self, event) -> None:
        self.wfile.write(
            json.dumps(event.to_dict(), sort_keys=True).encode("utf-8") + b"\n"
        )
        self.wfile.flush()


def make_server(
    service: ProfilerService,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """Build the HTTP server (``port=0`` picks a free port; the bound port
    is ``server.server_address[1]``).  Call ``serve_forever()`` to run."""

    class BoundHandler(_Handler):
        pass

    BoundHandler.service = service
    BoundHandler.quiet = quiet
    return ThreadingHTTPServer((host, port), BoundHandler)
