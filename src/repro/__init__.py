"""repro — reference reproduction of *Efficient Discovery of Approximate
Order Dependencies* (Karegar et al., EDBT 2021).

The package is organised as follows:

``repro.dataset``
    Columnar relations, schemas, order-preserving dictionary encoding,
    equivalence-class partitions, synthetic workload generators and the
    paper's running-example table.

``repro.dependencies``
    The dependency model: nested orders, list-based order dependencies
    (ODs), canonical order compatibilities (OCs), order functional
    dependencies (OFDs), classic functional dependencies (FDs), the
    canonical mapping between the list-based and set-based representations,
    and swap / split violation semantics.

``repro.validation``
    Validation algorithms.  The paper's contribution is the optimal,
    longest-non-decreasing-subsequence based validator for approximate OCs
    (Algorithm 2, :func:`repro.validation.validate_aoc_optimal`); the
    quadratic iterative validator it replaces (Algorithm 1,
    :func:`repro.validation.validate_aoc_iterative`) is implemented as the
    baseline.  Exact validators and the linear approximate-OFD validator
    are included as well.

``repro.discovery``
    The set-based, level-wise lattice discovery framework (Figure 1 of the
    paper) with axiom pruning, pluggable AOC validators, and
    interestingness ranking.  Exact OD discovery is the special case of an
    approximation threshold of zero.

``repro.baselines``
    TANE-style FD/AFD discovery and a bounded list-based OD discovery used
    as comparison points in the benchmarks.

``repro.applications``
    Downstream uses of discovered dependencies: outlier detection, error
    repair and dataset profiling.

``repro.benchlib``
    The measurement harness used by the ``benchmarks/`` suites to
    regenerate every figure and table of the paper's evaluation section.

``repro.backend``
    Pluggable columnar compute backends for the hot paths (encoding,
    partitions, LNDS validation kernels): a pure-Python reference and a
    vectorised NumPy implementation with identical semantics, selected via
    ``--backend`` / ``REPRO_BACKEND`` / :func:`repro.backend.resolve_backend`.

``repro.incremental``
    Incremental maintenance of discovered dependency sets under row
    appends: delta encoding, per-context partition patching, per-class
    repair of memoised validation outcomes, and the
    :class:`~repro.incremental.IncrementalEngine` that classifies and
    revalidates only what a delta can have changed — byte-identical to
    cold rediscovery (``Profiler.extend`` / ``discover_incremental``,
    ``repro extend``, ``POST /datasets/<name>/append``).
"""

from repro.backend import available_backends, get_backend, resolve_backend
from repro.dataset import Relation, Schema, Attribute, AttributeType
from repro.dataset.examples import employee_salary_table
from repro.dependencies import (
    FD,
    OFD,
    CanonicalOC,
    CanonicalOD,
    ListOD,
    canonicalize_list_od,
)
from repro.validation import (
    ValidationResult,
    validate_aoc_iterative,
    validate_aoc_optimal,
    validate_aod_optimal,
    validate_aofd,
    validate_exact_oc,
    validate_exact_ofd,
)
from repro.discovery import (
    CancellationToken,
    DiscoveryConfig,
    DiscoveryRequest,
    DiscoveryResult,
    Profiler,
    discover_aods,
    discover_ods,
)

__all__ = [
    "Attribute",
    "AttributeType",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "CancellationToken",
    "CanonicalOC",
    "CanonicalOD",
    "DiscoveryConfig",
    "DiscoveryRequest",
    "DiscoveryResult",
    "FD",
    "ListOD",
    "OFD",
    "Profiler",
    "Relation",
    "Schema",
    "ValidationResult",
    "canonicalize_list_od",
    "discover_aods",
    "discover_ods",
    "employee_salary_table",
    "validate_aoc_iterative",
    "validate_aoc_optimal",
    "validate_aod_optimal",
    "validate_aofd",
    "validate_exact_oc",
    "validate_exact_ofd",
]

__version__ = "1.0.0"
