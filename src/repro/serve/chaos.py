"""Test-only HTTP fault injection for the serve layer.

The HTTP handler calls :meth:`HttpFaultInjector.take` at well-known hook
points; when a registered fault matches, the returned action tells the
handler to misbehave in a controlled way:

- ``"stall"`` — sleep ``delay_seconds`` before continuing (slow server).
- ``"drop"``  — close the connection without writing anything further
  (half-finished response / mid-stream kill).
- ``"reset"`` — close with ``SO_LINGER(1, 0)`` so the client sees a TCP
  RST instead of a clean FIN.

Hook points currently emitted by the handler:

- ``"pre_response"`` — after the request was parsed and admitted, before
  any response bytes are written.
- ``"stream_event"`` — before each NDJSON event of a streamed discovery
  response; the event index is passed as ``event_index``.

The injector is **never** installed in production: it exists so the chaos
test-suite can exercise client retries, disconnect-cancellation, and
graceful degradation against a real server without monkeypatching
internals.  All methods are thread-safe (the server is threading).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["FaultAction", "FaultRule", "HttpFaultInjector"]

_VALID_KINDS = ("stall", "drop", "reset")


@dataclass(frozen=True)
class FaultAction:
    """What the handler should do at a hook point."""

    kind: str
    delay_seconds: float = 0.0


@dataclass
class FaultRule:
    """A single registered fault.

    Parameters
    ----------
    point:
        Hook point the rule arms (``"pre_response"`` or ``"stream_event"``).
    kind:
        One of ``"stall"``, ``"drop"``, ``"reset"``.
    path_prefix:
        Only requests whose path starts with this prefix trigger the rule
        (``""`` matches everything).
    after_events:
        For ``"stream_event"``: fire only once ``event_index`` reaches this
        value, so a stream can be killed mid-way rather than at the start.
    times:
        Budget of firings; once exhausted the rule is inert.  ``None`` means
        unlimited.
    delay_seconds:
        Stall duration for ``"stall"`` actions.
    """

    point: str
    kind: str
    path_prefix: str = ""
    after_events: int = 0
    times: Optional[int] = 1
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {_VALID_KINDS}"
            )

    def matches(self, point: str, path: str, event_index: Optional[int]) -> bool:
        if point != self.point:
            return False
        if self.path_prefix and not path.startswith(self.path_prefix):
            return False
        if self.point == "stream_event":
            if event_index is None or event_index < self.after_events:
                return False
        return True


@dataclass
class _FiredFault:
    point: str
    path: str
    kind: str
    event_index: Optional[int] = None


class HttpFaultInjector:
    """Registry of :class:`FaultRule` objects consulted by the handler."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rules: List[FaultRule] = []
        self._fired: List[_FiredFault] = []

    def add(self, rule: FaultRule) -> FaultRule:
        with self._lock:
            self._rules.append(rule)
        return rule

    def add_fault(
        self,
        point: str,
        kind: str,
        *,
        path_prefix: str = "",
        after_events: int = 0,
        times: Optional[int] = 1,
        delay_seconds: float = 0.0,
    ) -> FaultRule:
        """Convenience wrapper building and registering a :class:`FaultRule`."""
        return self.add(
            FaultRule(
                point=point,
                kind=kind,
                path_prefix=path_prefix,
                after_events=after_events,
                times=times,
                delay_seconds=delay_seconds,
            )
        )

    def clear(self) -> None:
        with self._lock:
            self._rules.clear()

    def take(
        self, point: str, path: str, *, event_index: Optional[int] = None
    ) -> Optional[FaultAction]:
        """Return the action for the first matching armed rule, consuming
        one unit of its ``times`` budget; ``None`` when nothing matches."""
        with self._lock:
            for rule in self._rules:
                if rule.times is not None and rule.times <= 0:
                    continue
                if not rule.matches(point, path, event_index):
                    continue
                if rule.times is not None:
                    rule.times -= 1
                self._fired.append(
                    _FiredFault(
                        point=point, path=path, kind=rule.kind, event_index=event_index
                    )
                )
                return FaultAction(kind=rule.kind, delay_seconds=rule.delay_seconds)
        return None

    @property
    def fired(self) -> List[_FiredFault]:
        """Copy of the faults that actually fired (for test assertions)."""
        with self._lock:
            return list(self._fired)

    def fired_counts(self) -> Dict[str, int]:
        """``{kind: count}`` summary of fired faults."""
        counts: Dict[str, int] = {}
        with self._lock:
            for item in self._fired:
                counts[item.kind] = counts.get(item.kind, 0) + 1
        return counts
