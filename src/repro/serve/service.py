"""The serve layer's core: a resilient, multi-tenant dataset registry.

:class:`ProfilerService` keeps one long-lived warm
:class:`~repro.discovery.session.Profiler` per dataset and runs discovery
requests against them.  Since the serve-hardening pass it is built for
overload and churn, not just the happy path:

* **admission control** — per-dataset bounded FIFO queues plus a global
  in-flight cap (:mod:`repro.serve.admission`) replace the old blocking
  per-dataset lock.  Overflow is refused with 429 + ``Retry-After``
  (computed from the dataset's run-time EWMA), saturation with 503;
  nothing ever parks an unbounded number of threads.
* **deadlines** — every operation takes an optional cancellation token
  (see :class:`~repro.discovery.session.CancellationToken`); tokens with
  deadlines cancel queued *and* running work, threading straight into the
  engine's group-boundary interrupt checks.
* **dataset lifecycle** — datasets can be uploaded
  (:meth:`upload_dataset`) and evicted (:meth:`evict_dataset`) at runtime;
  an optional TTL sweep evicts idle unpinned datasets in the background.
  Startup datasets are *pinned* (never TTL-evicted) unless asked otherwise.
* **graceful shutdown** — :meth:`begin_drain` refuses new work,
  :meth:`shutdown_gracefully` drains or cancels in-flight runs within a
  bounded grace period, then closes every session and the shared worker
  pool deterministically.

Everything observable lands in ``repro.obs``: admission and lifecycle
counters, queue-wait and request-latency histograms, and the ``admission``
/ ``lifecycle`` blocks of ``/healthz``.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterator, List, Optional

from repro.caching import BoundedLRU
from repro.dataset.relation import Relation
from repro.discovery.config import DiscoveryRequest
from repro.discovery.events import DiscoveryEvent, RunCompleted
from repro.discovery.results import DiscoveryResult
from repro.discovery.session import CancellationToken, Profiler
from repro.obs import enable_metrics, get_logger, get_metrics
from repro.serve.admission import (
    AdmissionCancelled,
    AdmissionController,
    AdmissionError,
    DEFAULT_MAX_INFLIGHT,
    DEFAULT_QUEUE_DEPTH,
)

log = get_logger("serve")

#: How long :meth:`ProfilerService.evict_dataset` waits for an executing
#: run before cancelling it (seconds).
DEFAULT_EVICT_GRACE_SECONDS = 5.0

#: Ceiling on the TTL sweep interval (seconds); the sweep also never runs
#: more often than a quarter of the TTL itself.
MAX_TTL_SWEEP_INTERVAL_SECONDS = 30.0

#: Lifecycle events tracked by :meth:`ProfilerService.lifecycle_stats`.
LIFECYCLE_COUNTERS = (
    "uploads", "evictions", "ttl_evictions",
    "deadline_timeouts", "disconnect_cancellations",
)

_COUNTER_METRICS = {
    "uploads": "repro_serve_dataset_uploads_total",
    "evictions": "repro_serve_dataset_evictions_total",
    "ttl_evictions": "repro_serve_ttl_evictions_total",
    "deadline_timeouts": "repro_serve_deadline_timeouts_total",
    "disconnect_cancellations": "repro_serve_disconnect_cancellations_total",
}


class ServiceError(Exception):
    """A client-facing error with an HTTP status code.

    ``extra`` keys are merged into the JSON error payload, so a response
    can carry structured context (e.g. the body-size limit a 413 names).
    """

    def __init__(self, status: int, message: str, **extra: object) -> None:
        super().__init__(message)
        self.status = status
        self.extra = extra


class ProfilerService:
    """A registry of named datasets, each backed by one warm session."""

    def __init__(
        self,
        *,
        backend=None,
        num_workers: int = 1,
        worker_timeout: Optional[float] = None,
        max_memo_entries: Optional[int] = None,
        max_cached_partitions: Optional[int] = None,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        default_deadline_seconds: Optional[float] = None,
        auth_token: Optional[str] = None,
        dataset_ttl_seconds: Optional[float] = None,
    ) -> None:
        self._backend = backend
        self._num_workers = num_workers
        self._worker_timeout = worker_timeout
        # Per-session memory bounds, forwarded to every dataset's Profiler
        # (LRU eviction; evicted state is recomputed, results never change).
        self._max_memo_entries = max_memo_entries
        self._max_cached_partitions = max_cached_partitions
        #: Server-side default request deadline; ``None`` = unbounded.
        self.default_deadline_seconds = default_deadline_seconds
        #: Bearer token gating the lifecycle endpoints (``None`` = open).
        self.auth_token = auth_token
        self._registry_lock = threading.RLock()
        self._profilers: Dict[str, Profiler] = {}
        self._pinned: Dict[str, bool] = {}
        self._last_used: Dict[str, float] = {}
        self._pool = None
        # Result cache: dataset name -> canonical request JSON -> result.
        # Guarded by the admission gate (one run per dataset at a time);
        # invalidated by appends and LRU-bounded per dataset so ad-hoc
        # request streams cannot grow a long-lived server without limit.
        self._results: Dict[str, BoundedLRU] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self.admission = AdmissionController(
            queue_depth=queue_depth, max_inflight=max_inflight
        )
        self._counters = {key: 0 for key in LIFECYCLE_COUNTERS}
        self._counter_lock = threading.Lock()
        self._closed = False
        # TTL sweep: a background thread evicting idle unpinned datasets.
        self._ttl_seconds = dataset_ttl_seconds
        self._sweep_stop = threading.Event()
        self._sweep_thread: Optional[threading.Thread] = None
        # Serving is the surface observability exists for: install the
        # process-wide metrics registry (idempotent) so engine, pool, and
        # planner instrumentation lands in /metrics and /healthz.
        enable_metrics()
        # One worker pool serves every dataset (its kernels are
        # dataset-agnostic).  Spawn it NOW, while the process is still
        # single-threaded: runtime uploads arrive on handler threads, and
        # forking a pool from one of those could inherit locks held by
        # concurrent threads.
        if self._num_workers > 1:
            from repro.validation.distributed import ShardedValidationPool
            from repro.backend import resolve_backend

            self._pool = ShardedValidationPool(
                self._num_workers, backend=resolve_backend(self._backend),
                worker_timeout=self._worker_timeout,
            )
        if dataset_ttl_seconds is not None:
            if dataset_ttl_seconds <= 0:
                raise ValueError("dataset_ttl_seconds must be positive")
            self._sweep_thread = threading.Thread(
                target=self._ttl_sweep_loop, name="repro-ttl-sweep",
                daemon=True,
            )
            self._sweep_thread.start()

    #: Per-dataset cap on cached results (each is a full DiscoveryResult).
    max_cached_results = 128

    # -- dataset registry --------------------------------------------------------

    def add_dataset(
        self, name: str, relation: Relation, *, pinned: bool = True
    ) -> Profiler:
        """Register ``relation`` under ``name`` and build its session.

        ``pinned`` datasets (the startup default) are never TTL-evicted;
        runtime uploads arrive unpinned via :meth:`upload_dataset`.
        """
        with self._registry_lock:
            if self._closed:
                raise RuntimeError("service is closed")
            if name in self._profilers:
                raise ValueError(f"dataset {name!r} already loaded")
            profiler = Profiler(
                relation, backend=self._backend,
                num_workers=self._num_workers,
                shard_pool=self._pool,
                max_memo_entries=self._max_memo_entries,
                max_cached_partitions=self._max_cached_partitions,
            )
            self._profilers[name] = profiler
            self._pinned[name] = pinned
            self._last_used[name] = time.monotonic()
            self._results[name] = BoundedLRU(self.max_cached_results)
            return profiler

    def upload_dataset(
        self, name: str, relation: Relation, *, pinned: bool = False
    ) -> Dict[str, object]:
        """Runtime dataset upload (``PUT /datasets/<name>``).

        Uploaded datasets are unpinned by default, so a configured TTL can
        reclaim them once idle.  An existing name is refused with 409 —
        evict first; silently replacing a dataset other clients are
        querying would be a correctness hazard, not a convenience.
        """
        if self.admission.draining:
            raise ServiceError(503, "server is draining for shutdown")
        try:
            profiler = self.add_dataset(name, relation, pinned=pinned)
        except ValueError:
            raise ServiceError(
                409,
                f"dataset {name!r} already loaded; DELETE it first to replace",
            )
        self._note("uploads")
        log.info("dataset %r uploaded (%d rows, %d attributes)",
                 name, relation.num_rows, len(relation.attribute_names))
        return {
            "dataset": name,
            "num_rows": profiler.relation.num_rows,
            "attributes": profiler.relation.attribute_names,
            "pinned": pinned,
        }

    def evict_dataset(
        self,
        name: str,
        *,
        grace_seconds: float = DEFAULT_EVICT_GRACE_SECONDS,
        reason: str = "evicted",
    ) -> Dict[str, object]:
        """Remove a dataset and close its session (``DELETE``).

        The dataset disappears from the registry immediately (new requests
        get 404, already-queued ones 410); an executing run is given
        ``grace_seconds`` to finish and then cancelled.  The session's
        worker-resident columns are released back to the shared pool.
        """
        with self._registry_lock:
            profiler = self._profilers.pop(name, None)
            if profiler is None:
                raise ServiceError(
                    404,
                    f"unknown dataset {name!r} (loaded: {self.dataset_names})",
                )
            self._pinned.pop(name, None)
            self._last_used.pop(name, None)
            cache = self._results.pop(name, None)
        if cache is not None:
            cache.clear()
        # Wait our FIFO turn behind any executing/queued run; queued
        # requests admitted before us find the registry entry gone and
        # answer 410 without touching the session.
        token = CancellationToken(deadline_seconds=grace_seconds)
        ticket = None
        try:
            ticket = self.admission.acquire(name, token)
        except AdmissionCancelled:
            # Grace expired with a run still executing: cancel it and
            # take the slot as soon as it unwinds.
            self.admission.cancel_dataset(name, "evicted")
            retry = CancellationToken(deadline_seconds=grace_seconds)
            try:
                ticket = self.admission.acquire(name, retry)
            except AdmissionError:
                ticket = None  # close anyway: the run is cancelled
        except AdmissionError:
            ticket = None  # draining/saturated: close without the gate
        try:
            profiler.close()
        finally:
            if ticket is not None:
                ticket.release()
            self.admission.forget_dataset(name)
        self._note("ttl_evictions" if reason == "ttl" else "evictions")
        log.info("dataset %r evicted (%s)", name, reason)
        return {"dataset": name, "evicted": True, "reason": reason}

    def _ttl_sweep_loop(self) -> None:
        interval = min(
            MAX_TTL_SWEEP_INTERVAL_SECONDS, max(0.05, self._ttl_seconds / 4)
        )
        while not self._sweep_stop.wait(interval):
            self.sweep_idle_datasets()

    def sweep_idle_datasets(self) -> List[str]:
        """Evict every unpinned dataset idle for longer than the TTL.

        Called by the background sweep; exposed for deterministic tests.
        Returns the names evicted.
        """
        if self._ttl_seconds is None:
            return []
        now = time.monotonic()
        with self._registry_lock:
            idle = [
                name for name in self._profilers
                if not self._pinned.get(name, True)
                and now - self._last_used.get(name, now) > self._ttl_seconds
            ]
        evicted = []
        for name in idle:
            try:
                self.evict_dataset(name, reason="ttl")
                evicted.append(name)
            except ServiceError:
                pass  # raced with an explicit eviction
        return evicted

    @property
    def dataset_names(self) -> List[str]:
        with self._registry_lock:
            return sorted(self._profilers)

    def describe(self) -> List[Dict[str, object]]:
        """Dataset summaries for ``GET /datasets``."""
        with self._registry_lock:
            profilers = dict(self._profilers)
            pinned = dict(self._pinned)
            last_used = dict(self._last_used)
        now = time.monotonic()
        described = []
        for name in sorted(profilers):
            profiler = profilers[name]
            described.append({
                "name": name,
                "num_rows": profiler.relation.num_rows,
                "attributes": profiler.relation.attribute_names,
                "backend": profiler.backend.name,
                "pinned": pinned.get(name, True),
                "idle_seconds": round(now - last_used.get(name, now), 3),
                "cache": profiler.cache_info(),
            })
        return described

    # -- discovery ---------------------------------------------------------------

    def _resolve(self, name: Optional[str]) -> str:
        with self._registry_lock:
            if name is None:
                if len(self._profilers) == 1:
                    return next(iter(self._profilers))
                raise ServiceError(
                    400,
                    "request must name a dataset "
                    f"(loaded: {self.dataset_names})",
                )
            if name not in self._profilers:
                raise ServiceError(
                    404,
                    f"unknown dataset {name!r} (loaded: {self.dataset_names})",
                )
            return name

    def _profiler_or_gone(self, name: str) -> Profiler:
        """The dataset's session, re-checked *after* admission: a queued
        request whose dataset was evicted while it waited gets 410."""
        with self._registry_lock:
            profiler = self._profilers.get(name)
            self._last_used[name] = time.monotonic()
        if profiler is None:
            raise ServiceError(
                410, f"dataset {name!r} was evicted while the request queued"
            )
        return profiler

    def _check_request(self, request: DiscoveryRequest) -> None:
        # Worker processes are a deployment concern (--workers on `repro
        # serve`), not something a client may resize per request: honoring
        # it would let any caller respawn — or arbitrarily grow — the
        # server's warm process pool.  Two values are safe and accepted:
        # the server's own setting (reuses the existing pool) and 1 (runs
        # in-process, never touches the pool).  Served results only ever
        # embed one of these in their request, so replaying a response's
        # request always works.
        if (request.num_workers is not None
                and request.num_workers not in (1, self._num_workers)):
            raise ServiceError(
                400,
                "num_workers is a server-side setting "
                f"(this server runs {self._num_workers}; set it with "
                "repro serve --workers); remove it from the request",
            )

    def make_token(
        self, deadline_seconds: Optional[float] = None
    ) -> CancellationToken:
        """A cancellation token for one request, carrying the request's
        deadline when given, else the server default."""
        if deadline_seconds is None:
            deadline_seconds = self.default_deadline_seconds
        return CancellationToken(deadline_seconds=deadline_seconds)

    def discover(
        self,
        dataset: Optional[str],
        request: DiscoveryRequest,
        *,
        cancellation: Optional[CancellationToken] = None,
    ) -> DiscoveryResult:
        """Run one discovery against the named dataset's warm session.

        Completed results are cached under the canonical request JSON and
        replayed until an append to the dataset invalidates them.  The
        request queues through admission control (429/503 on overload,
        mapped by the HTTP layer); a cancellation token with a deadline
        bounds queue wait plus run time, and a deadline that fires mid-run
        surfaces as :class:`ServiceError` 504.
        """
        name = self._resolve(dataset)
        self._check_request(request)
        key = request.to_json()
        registry = get_metrics()
        started = time.monotonic()
        with self.admission.acquire(name, cancellation):
            profiler = self._profiler_or_gone(name)
            cache = self._results.get(name)
            cached = cache.get(key) if cache is not None else None
            if cached is not None:
                self._cache_hits += 1
                registry.counter("repro_result_cache_hits_total").inc()
                return cached
            self._cache_misses += 1
            registry.counter("repro_result_cache_misses_total").inc()
            result = profiler.discover(request, cancellation=cancellation)
            self._raise_on_deadline(cancellation, result)
            self._store_result(name, key, result)
            registry.histogram("repro_serve_request_seconds").observe(
                time.monotonic() - started
            )
            return result

    def _raise_on_deadline(self, cancellation, result) -> None:
        """Map a deadline-cancelled run to 504 (other reasons pass the
        partial result through: the caller knows what it asked for)."""
        if (result.cancelled and cancellation is not None
                and cancellation.reason == "deadline"):
            self._note("deadline_timeouts")
            raise ServiceError(
                504,
                "request deadline exceeded during discovery "
                f"(completed {result.stats.levels_processed} level(s))",
            )

    def _store_result(self, name: str, key: str, result: DiscoveryResult) -> None:
        # Interrupted runs are partial (and timing-dependent): never cache.
        if not result.cancelled and not result.timed_out:
            cache = self._results.get(name)
            if cache is not None:
                cache[key] = result

    def iter_events(
        self,
        dataset: Optional[str],
        request: DiscoveryRequest,
        *,
        cancellation: Optional[CancellationToken] = None,
    ) -> Iterator[DiscoveryEvent]:
        """Stream one discovery; the admission slot is held until the
        stream is exhausted (or closed).  Dataset resolution *and
        admission* are eager, so a bad name or a full queue fails before
        any event (and before HTTP headers go out).  The final result
        populates the result cache like a non-streamed run (a stream never
        *serves* from the cache: its point is watching the levels finish
        live)."""
        name = self._resolve(dataset)
        self._check_request(request)
        key = request.to_json()
        ticket = self.admission.acquire(name, cancellation)
        try:
            profiler = self._profiler_or_gone(name)
        except BaseException:
            ticket.release()
            raise

        def _generate() -> Iterator[DiscoveryEvent]:
            started = time.monotonic()
            try:
                for event in profiler.iter_events(
                    request, cancellation=cancellation
                ):
                    if isinstance(event, RunCompleted):
                        self._raise_on_deadline(cancellation, event.result)
                        self._store_result(name, key, event.result)
                        get_metrics().histogram(
                            "repro_serve_request_seconds"
                        ).observe(time.monotonic() - started)
                    yield event
            finally:
                ticket.release()

        return _generate()

    def append(
        self,
        dataset: Optional[str],
        rows: List[object],
        request: Optional[DiscoveryRequest] = None,
        *,
        cancellation: Optional[CancellationToken] = None,
    ):
        """Append rows to a dataset's warm session; optionally revalidate.

        Returns ``(name, delta_summary, outcome)`` where ``outcome`` is the
        :class:`~repro.incremental.IncrementalOutcome` of the revalidation
        when ``request`` was given, else ``None``.  The dataset's result
        cache is always invalidated; a revalidated result re-seeds it.
        """
        name = self._resolve(dataset)
        if request is not None:
            self._check_request(request)
        with self.admission.acquire(name, cancellation):
            profiler = self._profiler_or_gone(name)
            summary = profiler.extend(rows)
            cache = self._results.get(name)
            if cache is not None:
                cache.clear()
            outcome = None
            if request is not None:
                outcome = profiler.discover_incremental(
                    request, cancellation=cancellation
                )
                self._raise_on_deadline(cancellation, outcome.result)
                self._store_result(name, request.to_json(), outcome.result)
            return name, summary, outcome

    # -- counters / stats --------------------------------------------------------

    def _note(self, event: str) -> None:
        with self._counter_lock:
            self._counters[event] += 1
        get_metrics().counter(_COUNTER_METRICS[event]).inc()

    def note_disconnect_cancellation(self) -> None:
        """Record a discovery run cancelled by a client disconnect (the
        HTTP layer's watchdog observed the socket close mid-run)."""
        self._note("disconnect_cancellations")

    def note_deadline_timeout(self) -> None:
        """Record a request abandoned by its deadline while still queued."""
        self._note("deadline_timeouts")

    def result_cache_stats(self) -> Dict[str, int]:
        """Hit/miss counters and current size of the result cache."""
        with self._registry_lock:
            entries = sum(len(cache) for cache in self._results.values())
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "entries": entries,
        }

    def lifecycle_stats(self) -> Dict[str, object]:
        """The ``lifecycle`` block of ``/healthz``."""
        with self._counter_lock:
            stats: Dict[str, object] = dict(self._counters)
        stats["auth_required"] = self.auth_token is not None
        stats["ttl_seconds"] = self._ttl_seconds
        stats["draining"] = self.admission.draining
        return stats

    def resilience_stats(self) -> Dict[str, object]:
        """The shared pool's recovery counters for ``/healthz``.

        Servers running without worker processes (``--workers 1``) report
        all-zero counters and ``degraded: false`` — the schema is stable so
        monitoring never has to special-case the serial deployment.
        """
        if self._pool is not None and not self._pool.closed:
            return self._pool.resilience_stats()
        from repro.validation.distributed import RESILIENCE_COUNTERS

        snapshot: Dict[str, object] = {key: 0 for key in RESILIENCE_COUNTERS}
        snapshot["degraded"] = False
        return snapshot

    def planner_stats(self) -> Dict[str, object]:
        """Per-dataset execution-planner snapshots for ``/healthz``.

        Stable schema: datasets that have never served a ``plan="auto"``
        run report ``null`` (no planner has been calibrated for them), so
        monitoring can always read the block.
        """
        with self._registry_lock:
            per_dataset: Dict[str, object] = {
                name: profiler.planner_info()
                for name, profiler in self._profilers.items()
            }
        return {
            "calibrated": sum(
                1 for info in per_dataset.values() if info is not None
            ),
            "datasets": per_dataset,
        }

    def _refresh_gauges(self) -> None:
        """Set the scrape-time gauges from current service state."""
        registry = get_metrics()
        if not registry.enabled:
            return
        resilience = self.resilience_stats()
        registry.gauge("repro_pool_degraded").set(
            1 if resilience.get("degraded") else 0
        )
        with self._registry_lock:
            datasets = len(self._profilers)
            entries = sum(len(cache) for cache in self._results.values())
        registry.gauge("repro_datasets").set(datasets)
        registry.gauge("repro_result_cache_entries").set(entries)
        admission = self.admission.snapshot()
        registry.gauge("repro_serve_inflight").set(admission["inflight"])
        registry.gauge("repro_serve_draining").set(
            1 if admission["draining"] else 0
        )

    def metrics_text(self) -> str:
        """The Prometheus text-exposition body for ``GET /metrics``."""
        self._refresh_gauges()
        return get_metrics().render_prometheus()

    def metrics_snapshot(self) -> Dict[str, object]:
        """Plain-dict metrics for the ``metrics`` section of ``/healthz``
        (histograms collapse to ``{count, sum}``)."""
        self._refresh_gauges()
        return get_metrics().snapshot()

    # -- lifecycle ---------------------------------------------------------------

    def begin_drain(self) -> None:
        """Refuse new work; queued waiters are woken with 503."""
        self.admission.begin_drain()

    def shutdown_gracefully(self, grace_seconds: float = 10.0) -> bool:
        """Drain-or-cancel in-flight work, then close everything.

        1. stop admitting (queued waiters answer 503 immediately);
        2. wait up to ``grace_seconds`` for executing runs to finish;
        3. past the grace, fire every active run's cancellation token and
           wait (bounded) for the engines to unwind at their next
           group-boundary check;
        4. close sessions and the shared pool.

        Returns ``True`` when everything drained without cancellation.
        """
        self.begin_drain()
        drained = self.admission.wait_idle(grace_seconds)
        if not drained:
            cancelled = self.admission.cancel_active("shutdown")
            log.warning(
                "graceful shutdown: grace period (%.1fs) expired with work "
                "in flight; cancelled %d active run(s)",
                grace_seconds, cancelled,
            )
            self.admission.wait_idle(max(1.0, grace_seconds / 2))
        self.close()
        return drained

    def close(self) -> None:
        """Close every session and the shared worker pool (idempotent)."""
        with self._registry_lock:
            if self._closed:
                return
            self._closed = True
            profilers = list(self._profilers.values())
            self._profilers.clear()
            self._pinned.clear()
            self._last_used.clear()
            self._results.clear()
        self._sweep_stop.set()
        if self._sweep_thread is not None:
            self._sweep_thread.join(timeout=5)
            self._sweep_thread = None
        for profiler in profilers:
            profiler.close()
        if self._pool is not None:
            self._pool.close()
            self._pool = None
