"""Resilient HTTP serving for the discovery engine.

This package is the serve layer's home; ``repro.service`` remains as a
thin compatibility shim re-exporting the public surface.

Modules
-------
``admission``
    Bounded per-dataset admission queues with a global in-flight cap,
    EWMA-based ``Retry-After`` estimation, drain support.
``service``
    :class:`ProfilerService` — dataset registry, result caches, dataset
    lifecycle (upload / evict / TTL sweep), deadlines, graceful shutdown.
``http``
    Request handler, disconnect watchdog, streaming, fault hook points,
    :func:`make_server`.
``chaos``
    Test-only HTTP fault injection (drop / stall / reset).
"""

from repro.serve.admission import (
    DEFAULT_MAX_INFLIGHT,
    DEFAULT_QUEUE_DEPTH,
    AdmissionCancelled,
    AdmissionController,
    AdmissionError,
    AdmissionTicket,
    Draining,
    QueueFull,
    ServerSaturated,
)
from repro.serve.chaos import FaultAction, FaultRule, HttpFaultInjector
from repro.serve.http import (
    DEFAULT_MAX_BODY_BYTES,
    DEFAULT_MAX_UPLOAD_BYTES,
    DEFAULT_REQUEST_SOCKET_TIMEOUT_SECONDS,
    DEFAULT_SHUTDOWN_GRACE_SECONDS,
    ResilientHTTPServer,
    make_server,
)
from repro.serve.service import LIFECYCLE_COUNTERS, ProfilerService, ServiceError

__all__ = [
    "AdmissionCancelled",
    "AdmissionController",
    "AdmissionError",
    "AdmissionTicket",
    "DEFAULT_MAX_BODY_BYTES",
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_MAX_UPLOAD_BYTES",
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_REQUEST_SOCKET_TIMEOUT_SECONDS",
    "DEFAULT_SHUTDOWN_GRACE_SECONDS",
    "Draining",
    "FaultAction",
    "FaultRule",
    "HttpFaultInjector",
    "LIFECYCLE_COUNTERS",
    "ProfilerService",
    "QueueFull",
    "ResilientHTTPServer",
    "ServerSaturated",
    "ServiceError",
    "make_server",
]
