"""The HTTP front of ``repro serve``: routing, deadlines, graceful exit.

Endpoints (JSON in, JSON out; no dependencies beyond the stdlib):

``GET /healthz``
    ``{"status": "ok"|"draining", "datasets": <count>, "result_cache":
    {...}, "admission": {...}, "lifecycle": {...}, "resilience": {...},
    "planner": {...}, "metrics": {...}}``.  The admission block reports
    queue depth/cap configuration, live in-flight counts, per-dataset
    queue state and every admission decision counter; the lifecycle block
    carries upload/eviction/deadline/disconnect counters, the TTL setting
    and whether lifecycle auth is required.

``GET /metrics``
    Prometheus text exposition of the process-wide registry — engine,
    pool-resilience, planner, cache families plus the serve families
    (admissions, rejections, queue-wait and request-latency histograms,
    deadline timeouts, disconnect cancellations, lifecycle counters).

``GET /datasets``
    The loaded datasets with row/attribute counts, pinned/idle state and
    warm-cache info.

``POST /discover``
    Body: ``{"dataset": ..., "request": {...}, "stream": bool,
    "deadline_seconds": <number>}``.  Queues through admission control:
    a full per-dataset queue answers ``429 Too Many Requests``, a
    saturated or draining server ``503``, both with a ``Retry-After``
    header computed from observed run times.  ``deadline_seconds`` bounds
    queue wait plus run time; a deadline that fires mid-run cancels the
    engine and answers ``504``.  With ``"stream": true`` the response is
    NDJSON level events; a client that disconnects mid-stream is detected
    by a socket watchdog and the underlying engine run is cancelled at its
    next group boundary, so abandoned requests stop burning CPU.

``POST /datasets/<name>/append``
    As before (append + optional revalidation), now admission-queued and
    deadline-aware like ``/discover``.

``PUT /datasets/<name>``
    Upload a dataset: ``text/csv`` body (header row first) or JSON
    ``{"attributes": [...], "rows": [[...], ...]}``.  ``409`` when the
    name exists.  Gated by ``Authorization: Bearer <token>`` when the
    server was started with an auth token.

``DELETE /datasets/<name>``
    Evict a dataset: the name disappears immediately, an executing run is
    drained briefly then cancelled, the session closes and its
    worker-resident columns are released.  Same bearer-token gate.

Shutdown: :meth:`ResilientHTTPServer.shutdown_gracefully` stops accepting,
refuses queued work with 503, drains executing runs within a bounded grace
period (cancelling stragglers through their tokens), then closes sessions
and the shared pool deterministically.
"""

from __future__ import annotations

import json
import select
import socket
import struct
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional
from urllib.parse import parse_qs, unquote, urlsplit

from repro.discovery.config import DiscoveryRequest
from repro.discovery.session import CancellationToken
from repro.obs import get_logger, get_metrics
from repro.serve.admission import (
    AdmissionCancelled,
    AdmissionError,
    Draining,
    QueueFull,
    ServerSaturated,
)
from repro.serve.service import ProfilerService, ServiceError

log = get_logger("serve.http")

#: Socket-level timeout (reads AND writes), seconds.  Without it, a
#: streaming client that stops reading blocks flush() forever while the
#: handler holds the dataset's admission slot, wedging all discovery on
#: that dataset; a slow-loris body upload would likewise pin its handler
#: thread indefinitely.  Override per server with ``repro serve
#: --request-timeout`` / ``make_server(request_timeout=...)``.
DEFAULT_REQUEST_SOCKET_TIMEOUT_SECONDS = 300.0

#: Upper bound on ordinary request bodies (discover/append JSON).
DEFAULT_MAX_BODY_BYTES = 1 << 20

#: Upper bound on dataset-upload bodies (``PUT /datasets/<name>``).
DEFAULT_MAX_UPLOAD_BYTES = 32 << 20

#: Default bounded grace for draining in-flight work at shutdown.
DEFAULT_SHUTDOWN_GRACE_SECONDS = 10.0

#: How often the disconnect watchdog peeks at the client socket, seconds.
DISCONNECT_POLL_SECONDS = 0.05


class _FaultClose(Exception):
    """Internal: a fault-injection action asked to abort this connection."""


class _DisconnectWatch:
    """Background watcher that cancels a run when its client goes away.

    The engine only touches the socket *between* levels, so without this a
    client that disconnects mid-level keeps the server computing until the
    next write fails.  The watchdog peeks the connection (``MSG_PEEK``
    after ``select``); an EOF or socket error fires the run's cancellation
    token with reason ``"disconnect"`` and the engine stops at its next
    group-boundary check.  A client that *sends* unexpected bytes stops
    the watch instead (never consume, never spin).
    """

    def __init__(self, connection: socket.socket, token: CancellationToken,
                 on_disconnect=None) -> None:
        self._connection = connection
        self._token = token
        self._on_disconnect = on_disconnect
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-disconnect-watch", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()

    def _run(self) -> None:
        while not self._stop.wait(DISCONNECT_POLL_SECONDS):
            try:
                readable, _, _ = select.select(
                    [self._connection], [], [], 0
                )
                if not readable:
                    continue
                data = self._connection.recv(1, socket.MSG_PEEK)
            except (OSError, ValueError):
                self._fire()
                return
            if data == b"":
                self._fire()
                return
            return  # unexpected client bytes: stop watching, don't spin

    def _fire(self) -> None:
        if self._stop.is_set():
            return
        # cancel() reports whether *this* call fired the token, so a
        # watchdog racing a failed socket write attributes the disconnect
        # exactly once between them.
        if self._token.cancel("disconnect") and self._on_disconnect is not None:
            self._on_disconnect()


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the :class:`ProfilerService`."""

    # HTTP/1.0 keeps the streaming path simple: no chunked framing needed,
    # the connection close terminates the NDJSON stream.
    protocol_version = "HTTP/1.0"
    server_version = "repro-serve"
    timeout = DEFAULT_REQUEST_SOCKET_TIMEOUT_SECONDS

    # Populated by make_server().
    service: ProfilerService = None  # type: ignore[assignment]
    quiet = True
    #: Test-only HTTP fault hook (see :mod:`repro.serve.chaos`).
    fault_injector = None

    #: Upper bound on request bodies: requests are small JSON documents,
    #: so anything past this is a client error, not a payload to buffer.
    max_body_bytes = DEFAULT_MAX_BODY_BYTES
    #: Upper bound on dataset uploads, which are legitimately larger.
    max_upload_bytes = DEFAULT_MAX_UPLOAD_BYTES

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.quiet:
            super().log_message(format, *args)

    # -- helpers -----------------------------------------------------------------

    def _send_json(self, status: int, payload: Dict[str, object],
                   headers: Optional[Dict[str, str]] = None) -> None:
        self._fault("pre_response")
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str,
                         retry_after: Optional[int] = None,
                         **extra: object) -> None:
        payload: Dict[str, object] = {"error": message}
        payload.update(extra)
        headers = {}
        if retry_after is not None:
            payload["retry_after"] = retry_after
            headers["Retry-After"] = str(retry_after)
        self._send_json(status, payload, headers=headers)

    def _send_service_error(self, error: ServiceError) -> None:
        self._send_error_json(error.status, str(error), **error.extra)

    def _send_admission_error(self, error: AdmissionError,
                              token: Optional[CancellationToken]) -> None:
        if isinstance(error, QueueFull):
            self._send_error_json(429, str(error),
                                  retry_after=error.retry_after)
        elif isinstance(error, (ServerSaturated, Draining)):
            self._send_error_json(503, str(error),
                                  retry_after=error.retry_after)
        elif isinstance(error, AdmissionCancelled):
            if token is not None and token.reason == "deadline":
                self.service.note_deadline_timeout()
                self._send_error_json(
                    504, "request deadline exceeded while queued"
                )
            # disconnect/shutdown: nobody is listening — close quietly.
        else:  # pragma: no cover - defensive
            self._send_error_json(503, str(error))

    def _send_metrics(self) -> None:
        self._fault("pre_response")
        body = self.service.metrics_text().encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _fault(self, point: str, **context) -> None:
        """Test-only fault hook; raises :class:`_FaultClose` on drop/reset."""
        injector = self.fault_injector
        if injector is None:
            return
        action = injector.take(point, self.path, **context)
        if action is None:
            return
        if action.kind == "stall":
            time.sleep(action.delay_seconds)
        elif action.kind == "drop":
            raise _FaultClose()
        elif action.kind == "reset":
            try:
                self.connection.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    # linger on, timeout 0: close() sends RST, not FIN.
                    struct.pack("ii", 1, 0),
                )
            except OSError:
                pass
            raise _FaultClose()

    def _read_raw_body(self, limit: int) -> bytes:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise ServiceError(400, "invalid Content-Length header")
        if length < 0:
            raise ServiceError(400, "invalid Content-Length header")
        if length > limit:
            # 413, with the limit echoed so clients can right-size
            # without reading docs.
            raise ServiceError(
                413,
                f"request body too large ({length} bytes; "
                f"limit {limit})",
                limit_bytes=limit,
            )
        return self.rfile.read(length) if length else b""

    def _read_body(self) -> Dict[str, object]:
        raw = self._read_raw_body(self.max_body_bytes)
        if not raw:
            return {}
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(400, f"invalid JSON body: {error}")
        if not isinstance(body, dict):
            raise ServiceError(400, "JSON body must be an object")
        return body

    def _require_auth(self) -> None:
        token = self.service.auth_token
        if token is None:
            return
        header = self.headers.get("Authorization") or ""
        if header != f"Bearer {token}":
            raise ServiceError(
                401, "lifecycle endpoints require a bearer token"
            )

    def _parse_deadline(self, body: Dict[str, object]) -> Optional[float]:
        deadline = body.get("deadline_seconds")
        if deadline is None:
            return None
        if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
            raise ServiceError(
                400, f"deadline_seconds must be a number, got {deadline!r}"
            )
        if deadline <= 0:
            raise ServiceError(400, "deadline_seconds must be positive")
        return float(deadline)

    def _path_only(self) -> str:
        """Request path with any query string stripped."""
        return urlsplit(self.path).path

    def _query_flag(self, name: str) -> bool:
        """True when the query string carries ``name=1`` / ``name=true``."""
        values = parse_qs(urlsplit(self.path).query).get(name) or []
        return any(v.lower() in ("1", "true", "yes") for v in values)

    def _dataset_path(self) -> Optional[str]:
        """Dataset name from a ``/datasets/<name>`` path, else None."""
        parts = self._path_only().split("/")
        if len(parts) == 3 and parts[0] == "" and parts[1] == "datasets" \
                and parts[2]:
            return unquote(parts[2])
        return None

    def _append_path_dataset(self) -> Optional[str]:
        """Dataset name from a ``/datasets/<name>/append`` path, else None."""
        parts = self._path_only().split("/")
        if len(parts) == 4 and parts[0] == "" and parts[1] == "datasets" \
                and parts[2] and parts[3] == "append":
            return unquote(parts[2])
        return None

    # -- routes ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        get_metrics().counter("repro_serve_requests_total").inc()
        try:
            if self.path in ("/", "/healthz"):
                draining = self.service.admission.draining
                self._send_json(200, {
                    "status": "draining" if draining else "ok",
                    "datasets": len(self.service.dataset_names),
                    "result_cache": self.service.result_cache_stats(),
                    "admission": self.service.admission.snapshot(),
                    "lifecycle": self.service.lifecycle_stats(),
                    "resilience": self.service.resilience_stats(),
                    "planner": self.service.planner_stats(),
                    "metrics": self.service.metrics_snapshot(),
                })
            elif self.path == "/metrics":
                self._send_metrics()
            elif self.path == "/datasets":
                self._send_json(200, {"datasets": self.service.describe()})
            else:
                self._send_error_json(404, f"unknown path {self.path!r}")
        except ServiceError as error:
            self._send_service_error(error)
        except _FaultClose:
            self.close_connection = True
        except OSError:
            pass  # client went away mid-response: routine disconnect

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        get_metrics().counter("repro_serve_requests_total").inc()
        try:
            self._handle_post()
        except _FaultClose:
            self.close_connection = True
        except OSError:
            pass  # client went away mid-response: routine disconnect

    def do_PUT(self) -> None:  # noqa: N802 - stdlib naming
        get_metrics().counter("repro_serve_requests_total").inc()
        try:
            self._handle_put()
        except ServiceError as error:
            self._send_service_error(error)
        except _FaultClose:
            self.close_connection = True
        except OSError:
            pass

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        get_metrics().counter("repro_serve_requests_total").inc()
        try:
            self._handle_delete()
        except ServiceError as error:
            self._send_service_error(error)
        except _FaultClose:
            self.close_connection = True
        except OSError:
            pass

    # -- lifecycle routes --------------------------------------------------------

    def _handle_put(self) -> None:
        name = self._dataset_path()
        if name is None:
            self._send_error_json(404, f"unknown path {self.path!r}")
            return
        self._require_auth()
        raw = self._read_raw_body(self.max_upload_bytes)
        if not raw:
            raise ServiceError(400, "upload body must not be empty")
        content_type = (self.headers.get("Content-Type") or "").split(";")[0]
        relation, pinned = self._parse_upload(raw, content_type.strip())
        # CSV uploads can't carry a pinned flag in the body; accept
        # ``?pinned=1`` on the URL for both forms.
        pinned = pinned or self._query_flag("pinned")
        payload = self.service.upload_dataset(name, relation, pinned=pinned)
        self._send_json(201, payload)

    @staticmethod
    def _parse_upload(raw: bytes, content_type: str):
        from repro.dataset.relation import Relation

        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ServiceError(400, f"upload body is not UTF-8: {error}")
        if content_type in ("text/csv", "application/csv"):
            from repro.dataset.csv_io import read_csv_text

            try:
                return read_csv_text(text), False
            except ValueError as error:
                raise ServiceError(400, f"invalid CSV upload: {error}")
        try:
            body = json.loads(text)
        except json.JSONDecodeError as error:
            raise ServiceError(
                400,
                "upload must be text/csv or a JSON object with "
                f"'attributes' and 'rows' ({error})",
            )
        if not isinstance(body, dict):
            raise ServiceError(400, "JSON upload must be an object")
        attributes = body.get("attributes")
        rows = body.get("rows")
        if not isinstance(attributes, list) or not attributes \
                or not all(isinstance(a, str) for a in attributes):
            raise ServiceError(
                400, "upload 'attributes' must be a non-empty string array"
            )
        if not isinstance(rows, list):
            raise ServiceError(400, "upload 'rows' must be an array of rows")
        pinned = body.get("pinned", False)
        if not isinstance(pinned, bool):
            raise ServiceError(400, "upload 'pinned' must be a boolean")
        try:
            return Relation.from_rows(rows, attributes), pinned
        except (TypeError, ValueError) as error:
            raise ServiceError(400, f"invalid upload rows: {error}")

    def _handle_delete(self) -> None:
        name = self._dataset_path()
        if name is None:
            self._send_error_json(404, f"unknown path {self.path!r}")
            return
        self._require_auth()
        payload = self.service.evict_dataset(name)
        self._send_json(200, payload)

    # -- discovery routes --------------------------------------------------------

    def _handle_post(self) -> None:
        append_dataset = self._append_path_dataset()
        if self.path != "/discover" and append_dataset is None:
            self._send_error_json(404, f"unknown path {self.path!r}")
            return
        token: Optional[CancellationToken] = None
        watch: Optional[_DisconnectWatch] = None
        try:
            body = self._read_body()
            token = self.service.make_token(self._parse_deadline(body))
            watch = _DisconnectWatch(
                self.connection, token,
                on_disconnect=self.service.note_disconnect_cancellation,
            )
            if append_dataset is not None:
                self._handle_append(append_dataset, body, token)
                return
            dataset = body.get("dataset")
            request = self._parse_request(body.get("request") or {})
            stream = body.get("stream", False)
            if not isinstance(stream, bool):
                raise ServiceError(
                    400, f"stream must be a JSON boolean, got {stream!r}"
                )
            if stream:
                self._stream_discovery(dataset, request, token)
            else:
                result = self.service.discover(
                    dataset, request, cancellation=token
                )
                if token.cancelled() and token.reason == "disconnect":
                    return  # nobody is listening
                self._send_json(200, result.to_dict())
        except AdmissionError as error:
            self._send_admission_error(error, token)
        except ServiceError as error:
            self._send_service_error(error)
        except (KeyError, ValueError) as error:
            # e.g. attributes not in the relation (engine KeyError): a bad
            # request, not a server fault — answer with JSON, don't let the
            # handler thread die and drop the connection.
            self._send_error_json(400, str(error))
        except RuntimeError as error:
            # Lifecycle faults (closed session/pool) are server-side: a
            # 5xx tells the client to retry, not to fix its request.
            self._send_error_json(500, str(error))
        finally:
            if watch is not None:
                watch.stop()

    @staticmethod
    def _parse_request(data: object) -> DiscoveryRequest:
        if not isinstance(data, dict):
            raise ServiceError(
                400, f"request must be a JSON object, got {data!r}"
            )
        try:
            return DiscoveryRequest.from_dict(data)
        except (TypeError, ValueError) as error:
            raise ServiceError(400, f"invalid discovery request: {error}")

    def _handle_append(self, dataset: str, body: Dict[str, object],
                       token: CancellationToken) -> None:
        rows = body.get("rows")
        if not isinstance(rows, list):
            raise ServiceError(
                400, "append body must carry a JSON array under 'rows'"
            )
        request = None
        if body.get("request") is not None:
            request = self._parse_request(body["request"])
        name, summary, outcome = self.service.append(
            dataset, rows, request, cancellation=token
        )
        payload: Dict[str, object] = {
            "dataset": name,
            "delta": summary.to_dict(),
        }
        if outcome is not None:
            payload.update(outcome.to_dict())
        self._send_json(200, payload)

    def _stream_discovery(
        self, dataset: Optional[str], request: DiscoveryRequest,
        token: CancellationToken,
    ) -> None:
        # Bad dataset / bad request / full queue fail here, before any
        # headers go out (admission is eager inside iter_events).
        events = self.service.iter_events(dataset, request, cancellation=token)
        try:
            first = next(events)
        except (AdmissionError, ServiceError):
            events.close()
            raise
        except (KeyError, ValueError) as error:
            events.close()
            raise ServiceError(400, str(error))
        except RuntimeError as error:
            events.close()
            raise ServiceError(500, str(error))
        except StopIteration:
            first = None
        self._fault("pre_response")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        index = 0
        try:
            if first is not None:
                self._write_event(first, index)
                index += 1
            for event in events:
                self._write_event(event, index)
                index += 1
        except _FaultClose:
            self.close_connection = True
        except OSError:
            # The client went away mid-stream (reset, broken pipe, timeout):
            # a routine disconnect, not a server fault.  When events flow
            # continuously the failed write detects it before the watchdog
            # polls — cancel (and count) the run here so abandoned streams
            # stop burning CPU either way.
            if token.cancel("disconnect"):
                self.service.note_disconnect_cancellation()
        except (ServiceError, KeyError, ValueError, RuntimeError) as error:
            # Headers are gone; close the stream with an error line instead
            # of silently dropping the connection.
            try:
                self.wfile.write(
                    json.dumps({"event": "error", "error": str(error)},
                               sort_keys=True).encode("utf-8") + b"\n"
                )
            except OSError:
                pass
        finally:
            events.close()

    def _write_event(self, event, index: int) -> None:
        self._fault("stream_event", event_index=index)
        self.wfile.write(
            json.dumps(event.to_dict(), sort_keys=True).encode("utf-8") + b"\n"
        )
        self.wfile.flush()


class ResilientHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server that knows how to stop gracefully."""

    service: ProfilerService = None  # type: ignore[assignment]

    def shutdown_gracefully(
        self, grace_seconds: float = DEFAULT_SHUTDOWN_GRACE_SECONDS
    ) -> bool:
        """Stop accepting, drain-or-cancel in-flight work, close everything.

        Must be called from a thread other than the one running
        :meth:`serve_forever`.  Returns ``True`` when all in-flight work
        drained without cancellation.
        """
        self.service.begin_drain()
        self.shutdown()
        drained = self.service.shutdown_gracefully(grace_seconds)
        self.server_close()
        return drained


def make_server(
    service: ProfilerService,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = True,
    request_timeout: Optional[float] = None,
    fault_injector=None,
) -> ResilientHTTPServer:
    """Build the HTTP server (``port=0`` picks a free port; the bound port
    is ``server.server_address[1]``).  Call ``serve_forever()`` to run and
    :meth:`ResilientHTTPServer.shutdown_gracefully` to stop.

    ``request_timeout`` overrides the per-connection socket timeout
    (:data:`DEFAULT_REQUEST_SOCKET_TIMEOUT_SECONDS`); ``fault_injector``
    installs a test-only HTTP chaos hook (:mod:`repro.serve.chaos`).
    """

    class BoundHandler(_Handler):
        pass

    BoundHandler.service = service
    BoundHandler.quiet = quiet
    if request_timeout is not None:
        if request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        BoundHandler.timeout = request_timeout
    BoundHandler.fault_injector = fault_injector
    server = ResilientHTTPServer((host, port), BoundHandler)
    server.service = service
    return server
