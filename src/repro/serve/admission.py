"""Admission control for the serve layer: bounded queues, not blocking locks.

Before this module the service serialised runs per dataset with a plain
``threading.Lock``: every concurrent request parked a handler thread on the
lock with no bound, no ordering guarantee beyond the OS scheduler, no way
to refuse work, and no visibility.  Under overload the server accumulated
blocked threads until something (the client, the socket timeout, memory)
gave out.

:class:`AdmissionController` replaces that with explicit queueing:

* **per-dataset serialisation** stays — a session's warm caches are not
  thread-safe, so at most one admitted request *executes* per dataset at a
  time — but waiting is now FIFO (ticket numbers, not lock-acquisition
  races) and **bounded**: at most ``queue_depth`` requests may wait per
  dataset.  The overflowing request is rejected immediately with
  :class:`QueueFull`, which the HTTP layer maps to ``429 Too Many
  Requests`` plus a ``Retry-After`` computed from the dataset's observed
  run-time EWMA times its queue position — an honest estimate, not a
  constant.
* a **global in-flight cap** (``max_inflight``) bounds the total admitted
  (executing + queued) requests across all datasets; past it the server is
  saturated as a whole and answers :class:`ServerSaturated` (``503``).
* **deadlines are enforced while queued**: a request whose cancellation
  token fires (deadline or client disconnect) leaves the queue with
  :class:`AdmissionCancelled` instead of occupying a slot for a run nobody
  will read.
* **draining**: :meth:`begin_drain` atomically refuses new admissions and
  wakes every queued waiter with :class:`Draining` (``503``), which is the
  first step of graceful shutdown; executing requests finish (or are
  cancelled by the shutdown path via :meth:`cancel_active`).

Every decision is counted (admissions, both rejection kinds, timeouts,
cancellations) and queue waits feed a histogram, so ``/metrics`` and
``/healthz`` show the queue doing its job before clients notice anything.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, List, Optional

from repro.obs import get_metrics

#: Default bound on requests *waiting* per dataset (the executing one is
#: not counted).  Small on purpose: queueing deeper than a handful of runs
#: only manufactures latency — clients are better served by an honest 429.
DEFAULT_QUEUE_DEPTH = 8

#: Default bound on total admitted (executing + waiting) requests across
#: all datasets; past it the whole server is saturated and answers 503.
DEFAULT_MAX_INFLIGHT = 32

#: Granularity of the queue-wait poll, seconds.  Waiters re-check their
#: cancellation token at this interval; condition notifications wake them
#: immediately, so this only bounds deadline-detection latency.
QUEUE_POLL_SECONDS = 0.05

#: Fallback per-run estimate (seconds) before a dataset has completed any
#: run — the Retry-After a client sees on the very first overflow.
DEFAULT_RUN_ESTIMATE_SECONDS = 1.0

#: EWMA weight of the newest observed run duration.
RUN_ESTIMATE_ALPHA = 0.3


class AdmissionError(Exception):
    """Base class: a request refused or abandoned by admission control."""

    #: Suggested client wait before retrying, in whole seconds (``None``
    #: when retrying is pointless, e.g. cancellation).
    retry_after: Optional[int] = None


class QueueFull(AdmissionError):
    """The dataset's wait queue is at capacity (HTTP 429)."""

    def __init__(self, dataset: str, depth: int, retry_after: int) -> None:
        super().__init__(
            f"dataset {dataset!r} admission queue is full "
            f"({depth} waiting); retry after ~{retry_after}s"
        )
        self.retry_after = retry_after


class ServerSaturated(AdmissionError):
    """The global in-flight cap is reached (HTTP 503)."""

    def __init__(self, max_inflight: int, retry_after: int) -> None:
        super().__init__(
            f"server saturated ({max_inflight} requests in flight); "
            f"retry after ~{retry_after}s"
        )
        self.retry_after = retry_after


class Draining(AdmissionError):
    """The server is shutting down and admits no new work (HTTP 503)."""

    def __init__(self) -> None:
        super().__init__("server is draining for shutdown")
        self.retry_after = 1


class AdmissionCancelled(AdmissionError):
    """The request's own cancellation token fired while it queued."""

    def __init__(self, dataset: str) -> None:
        super().__init__(
            f"request cancelled while queued for dataset {dataset!r}"
        )


class _DatasetQueue:
    """FIFO admission state for one dataset (guarded by the controller)."""

    __slots__ = ("busy", "waiters", "ewma_seconds", "next_ticket")

    def __init__(self) -> None:
        self.busy = False
        self.waiters: List[int] = []  # ticket numbers, FIFO
        self.ewma_seconds: Optional[float] = None
        self.next_ticket = 0


class AdmissionTicket:
    """An admitted request's slot; release exactly once (``with`` works)."""

    __slots__ = ("_controller", "dataset", "cancellation", "queue_wait",
                 "_released", "started_at")

    def __init__(self, controller: "AdmissionController", dataset: str,
                 cancellation, queue_wait: float) -> None:
        self._controller = controller
        self.dataset = dataset
        self.cancellation = cancellation
        self.queue_wait = queue_wait
        self.started_at = time.monotonic()
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._controller._release(self)

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class AdmissionController:
    """Bounded per-dataset admission queues plus a global in-flight cap."""

    def __init__(
        self,
        *,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
    ) -> None:
        if queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.queue_depth = queue_depth
        self.max_inflight = max_inflight
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queues: Dict[str, _DatasetQueue] = {}
        self._inflight = 0
        self._draining = False
        #: Tickets currently executing, for shutdown-time cancellation.
        self._active: List[AdmissionTicket] = []
        # Decision counters (mirrored into the metrics registry).
        self._admitted = 0
        self._rejected_queue_full = 0
        self._rejected_saturated = 0
        self._cancelled_waits = 0

    # -- admission ---------------------------------------------------------------

    def acquire(self, dataset: str, cancellation=None) -> AdmissionTicket:
        """Admit a request for ``dataset`` or raise an
        :class:`AdmissionError` subclass.

        Blocks (FIFO) until the dataset is free; while blocked the
        ``cancellation`` token is polled so deadlines and client
        disconnects abandon the queue slot promptly.
        """
        entered = time.monotonic()
        with self._cond:
            if self._draining:
                raise Draining()
            if self._inflight >= self.max_inflight:
                self._rejected_saturated += 1
                get_metrics().counter(
                    "repro_serve_rejected_503_total"
                ).inc()
                raise ServerSaturated(
                    self.max_inflight, self._global_retry_after()
                )
            queue = self._queues.setdefault(dataset, _DatasetQueue())
            # Depth bounds *waiting* requests only: one that can start
            # immediately (idle dataset, empty queue) is always admitted,
            # so queue_depth=0 means "no queueing", not "no service".
            would_wait = queue.busy or bool(queue.waiters)
            if would_wait and len(queue.waiters) >= self.queue_depth:
                self._rejected_queue_full += 1
                get_metrics().counter(
                    "repro_serve_rejected_429_total"
                ).inc()
                raise QueueFull(
                    dataset, len(queue.waiters),
                    self._dataset_retry_after(queue, len(queue.waiters) + 1),
                )
            ticket_number = queue.next_ticket
            queue.next_ticket += 1
            queue.waiters.append(ticket_number)
            self._inflight += 1
            try:
                while True:
                    if self._draining:
                        raise Draining()
                    if cancellation is not None and cancellation.cancelled():
                        self._cancelled_waits += 1
                        raise AdmissionCancelled(dataset)
                    if not queue.busy and queue.waiters[0] == ticket_number:
                        queue.waiters.pop(0)
                        queue.busy = True
                        break
                    self._cond.wait(QUEUE_POLL_SECONDS)
            except BaseException:
                queue.waiters.remove(ticket_number)
                self._inflight -= 1
                self._cond.notify_all()
                raise
            wait = time.monotonic() - entered
            self._admitted += 1
            registry = get_metrics()
            registry.counter("repro_serve_admitted_total").inc()
            registry.histogram("repro_serve_queue_wait_seconds").observe(wait)
            ticket = AdmissionTicket(self, dataset, cancellation, wait)
            self._active.append(ticket)
            return ticket

    def _release(self, ticket: AdmissionTicket) -> None:
        duration = time.monotonic() - ticket.started_at
        with self._cond:
            queue = self._queues.get(ticket.dataset)
            if queue is not None:
                queue.busy = False
                previous = queue.ewma_seconds
                queue.ewma_seconds = (
                    duration if previous is None
                    else previous + RUN_ESTIMATE_ALPHA * (duration - previous)
                )
            self._inflight -= 1
            try:
                self._active.remove(ticket)
            except ValueError:
                pass
            self._cond.notify_all()

    # -- retry estimates ---------------------------------------------------------

    def _dataset_retry_after(self, queue: _DatasetQueue, position: int) -> int:
        """Whole seconds until a request ``position`` runs deep could start."""
        estimate = queue.ewma_seconds or DEFAULT_RUN_ESTIMATE_SECONDS
        return max(1, int(math.ceil(estimate * position)))

    def _global_retry_after(self) -> int:
        estimates = [
            queue.ewma_seconds for queue in self._queues.values()
            if queue.ewma_seconds is not None
        ]
        estimate = min(estimates) if estimates else DEFAULT_RUN_ESTIMATE_SECONDS
        return max(1, int(math.ceil(estimate)))

    def retry_after_hint(self, dataset: Optional[str] = None) -> int:
        """Public estimate used by HTTP 503 responses outside admission."""
        with self._lock:
            if dataset is not None and dataset in self._queues:
                queue = self._queues[dataset]
                return self._dataset_retry_after(
                    queue, len(queue.waiters) + 1
                )
            return self._global_retry_after()

    # -- lifecycle ---------------------------------------------------------------

    def forget_dataset(self, dataset: str) -> None:
        """Drop the (idle) queue state of an evicted dataset."""
        with self._cond:
            queue = self._queues.get(dataset)
            if queue is not None and not queue.busy and not queue.waiters:
                del self._queues[dataset]

    def begin_drain(self) -> None:
        """Refuse new admissions and wake every queued waiter with 503."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    @property
    def draining(self) -> bool:
        return self._draining

    def cancel_active(self, reason: str = "shutdown") -> int:
        """Fire the cancellation token of every executing request."""
        with self._lock:
            active = list(self._active)
        cancelled = 0
        for ticket in active:
            if ticket.cancellation is not None:
                ticket.cancellation.cancel(reason)
                cancelled += 1
        return cancelled

    def cancel_dataset(self, dataset: str, reason: str = "evicted") -> int:
        """Fire the cancellation token of the dataset's executing request."""
        with self._lock:
            active = [t for t in self._active if t.dataset == dataset]
        cancelled = 0
        for ticket in active:
            if ticket.cancellation is not None:
                ticket.cancellation.cancel(reason)
                cancelled += 1
        return cancelled

    def wait_idle(self, timeout: float) -> bool:
        """Block until nothing is in flight; ``True`` when fully drained."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(min(remaining, QUEUE_POLL_SECONDS))
            return True

    # -- introspection -----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The ``admission`` block of ``/healthz``."""
        with self._lock:
            per_dataset = {
                name: {
                    "busy": queue.busy,
                    "queued": len(queue.waiters),
                    "ewma_run_seconds": (
                        round(queue.ewma_seconds, 4)
                        if queue.ewma_seconds is not None else None
                    ),
                }
                for name, queue in sorted(self._queues.items())
            }
            return {
                "queue_depth": self.queue_depth,
                "max_inflight": self.max_inflight,
                "inflight": self._inflight,
                "executing": len(self._active),
                "draining": self._draining,
                "admitted": self._admitted,
                "rejected_queue_full": self._rejected_queue_full,
                "rejected_saturated": self._rejected_saturated,
                "cancelled_waits": self._cancelled_waits,
                "datasets": per_dataset,
            }
