"""Span tracing for discovery runs (`repro.obs`, pillar 1).

A :class:`Tracer` records *spans* — named wall-clock intervals with a
parent link — for the phases of a discovery run: run → level → phase
(candidate-gen / partition-product / OC-batch / OFD-batch / memo-repair)
→ shard dispatch.  Parenting is contextvar-based inside one process
(``with tracer.span(...)`` nests automatically); spans that must outlive a
generator frame (the run and level spans of the streaming engine) are
managed explicitly via :meth:`Tracer.start_span` / :meth:`Tracer.end_span`
with an explicit ``parent``.

Cross-process propagation is cooperative: the coordinator never ships the
tracer to workers.  Instead, dispatch messages carry a ``timing`` flag;
workers record their kernel-execution interval as plain dicts and
piggyback them on the shard result keyed by job id, and the coordinator
re-parents them under the dispatching span via
:meth:`Tracer.attach_worker_spans` (see
:mod:`repro.validation.distributed`).  Worker spans carry the worker's
pid, which becomes their track in the Chrome-trace export — one track per
worker process, so pipelining overlap and dispatch latency are visible in
Perfetto / ``chrome://tracing``.

Zero-cost-when-off: the process default is :data:`NOOP_TRACER`, whose
``span()`` returns one shared no-op context manager and whose ``enabled``
flag gates every non-trivial instrumentation site.  Enabling tracing
(``repro discover --trace out.json``, or :func:`set_tracer` /
:func:`use_tracer` in code) never changes results — only observes them.

All span timestamps are ``time.time()`` wall-clock seconds: unlike
``perf_counter``, the wall clock is comparable across the coordinator and
its worker processes on one host, which is what makes the merged timeline
meaningful.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional

#: The active span id of the current (thread / task) context.  Shared by
#: every Tracer instance: at most one tracer is installed at a time.
_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class Span:
    """One named wall-clock interval with a parent link.

    ``track`` is ``None`` for coordinator-side spans and the worker's pid
    for spans recorded inside a worker process (one export track per
    worker).  ``end`` is ``None`` while the span is open.
    """

    __slots__ = ("span_id", "name", "parent_id", "start", "end", "attrs",
                 "track")

    def __init__(self, span_id: int, name: str, parent_id: Optional[int],
                 start: float, attrs: Dict[str, object],
                 track: Optional[int] = None) -> None:
        self.span_id = span_id
        self.name = name
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs
        self.track = track

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, dur={self.duration:.6f}s)")


def _parent_id(parent) -> Optional[int]:
    """Normalise a ``parent`` argument (Span, id, or None) to an id."""
    if parent is None:
        return None
    if isinstance(parent, Span):
        return parent.span_id
    return int(parent)


class _SpanContext:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_parent", "_attrs", "_token", "span")

    def __init__(self, tracer: "Tracer", name: str, parent,
                 attrs: Dict[str, object]) -> None:
        self._tracer = tracer
        self._name = name
        self._parent = parent
        self._attrs = attrs
        self._token = None
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        parent = _parent_id(self._parent)
        if parent is None:
            parent = _CURRENT.get()
        self.span = self._tracer._begin(self._name, parent, self._attrs)
        self._token = _CURRENT.set(self.span.span_id)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        _CURRENT.reset(self._token)
        self._tracer._finish(self.span)
        return False


class Tracer:
    """Collects spans; exports a Chrome-trace / Perfetto JSON timeline."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._next_id = 1
        #: Wall-clock origin of the trace; exported timestamps are relative
        #: to it so the numbers stay small and zero-anchored.
        self.epoch = time.time()

    # -- recording ---------------------------------------------------------------

    def _begin(self, name: str, parent_id: Optional[int],
               attrs: Dict[str, object]) -> Span:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(span_id, name, parent_id, time.time(), attrs)

    def _finish(self, span: Span) -> None:
        span.end = time.time()
        with self._lock:
            self._spans.append(span)

    def span(self, name: str, parent=None, **attrs) -> _SpanContext:
        """Context manager: a span parented to ``parent`` (or the current
        contextvar span), active — and visible to
        :meth:`current_span_id` — inside the ``with`` block."""
        return _SpanContext(self, name, parent, attrs)

    def start_span(self, name: str, parent=None, **attrs) -> Span:
        """Open a span *without* touching the context (generator frames)."""
        return self._begin(name, _parent_id(parent), attrs)

    def end_span(self, span: Optional[Span]) -> None:
        """Close a span opened by :meth:`start_span` (``None`` tolerated)."""
        if span is not None and span.end is None:
            self._finish(span)

    def record_span(self, name: str, start: float, end: float, parent=None,
                    track: Optional[int] = None, **attrs) -> Span:
        """Record an already-elapsed interval (e.g. a dispatch round-trip
        reconstructed at harvest time).  Returns the recorded span so
        callers can parent further spans under it."""
        span = self._begin(name, _parent_id(parent), attrs)
        span.start = start
        span.end = end
        span.track = track
        with self._lock:
            self._spans.append(span)
        return span

    def current_span_id(self) -> Optional[int]:
        """The contextvar-active span id (``None`` outside any span)."""
        return _CURRENT.get()

    def attach_worker_spans(self, raw_spans: Iterable[Dict[str, object]],
                            parent) -> List[Span]:
        """Re-parent worker-recorded spans under a coordinator span.

        ``raw_spans`` are the plain dicts a worker piggybacked on its shard
        result: ``{"name", "start", "end", "pid", ...attrs}``.  Each
        becomes a first-class span parented to ``parent`` (the dispatching
        span), with the worker's pid as its track.
        """
        attached: List[Span] = []
        parent_id = _parent_id(parent)
        for raw in raw_spans:
            attrs = {k: v for k, v in raw.items()
                     if k not in ("name", "start", "end", "pid")}
            attached.append(self.record_span(
                str(raw.get("name", "worker")),
                float(raw["start"]), float(raw["end"]),
                parent=parent_id, track=raw.get("pid"), **attrs,
            ))
        return attached

    # -- introspection / export --------------------------------------------------

    def finished_spans(self) -> List[Span]:
        """Snapshot of every completed span, in completion order."""
        with self._lock:
            return list(self._spans)

    def chrome_trace(self) -> Dict[str, object]:
        """The trace in Chrome trace-event format (Perfetto-compatible).

        One ``X`` (complete) event per span on the coordinator process;
        coordinator spans share track (tid) 0, each worker process gets its
        own track named after its pid.  Parent links travel in ``args``
        (``span_id`` / ``parent_id``) — the timeline nests by containment,
        the ids make the exact tree machine-checkable.
        """
        pid = os.getpid()
        events: List[Dict[str, object]] = [
            {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
             "args": {"name": "repro"}},
            {"ph": "M", "name": "thread_name", "pid": pid, "tid": 0,
             "args": {"name": "coordinator"}},
        ]
        named_tracks = set()
        for span in self.finished_spans():
            tid = 0 if span.track is None else int(span.track)
            if tid and tid not in named_tracks:
                named_tracks.add(tid)
                events.append({
                    "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                    "args": {"name": f"worker-{tid}"},
                })
            args: Dict[str, object] = dict(span.attrs)
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            events.append({
                "ph": "X", "cat": "repro", "name": span.name,
                "pid": pid, "tid": tid,
                "ts": round((span.start - self.epoch) * 1e6, 3),
                "dur": round(max(span.duration, 0.0) * 1e6, 3),
                "args": args,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export(self, path) -> int:
        """Write the Chrome-trace JSON to ``path``; returns the span count."""
        trace = self.chrome_trace()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(trace, handle, indent=1)
            handle.write("\n")
        return len(self.finished_spans())


class _NoopSpanContext:
    """Shared do-nothing context manager (the off path's only cost)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_CONTEXT = _NoopSpanContext()


class NoopTracer:
    """The zero-cost default: every method is a constant-time no-op."""

    enabled = False

    def span(self, name, parent=None, **attrs) -> _NoopSpanContext:
        return _NOOP_CONTEXT

    def start_span(self, name, parent=None, **attrs) -> None:
        return None

    def end_span(self, span) -> None:
        return None

    def record_span(self, name, start, end, parent=None, track=None,
                    **attrs) -> None:
        return None

    def current_span_id(self) -> None:
        return None

    def attach_worker_spans(self, raw_spans, parent) -> List[Span]:
        return []

    def finished_spans(self) -> List[Span]:
        return []


#: The process-wide default tracer (never replaced, only shadowed).
NOOP_TRACER = NoopTracer()

_tracer = NOOP_TRACER


def get_tracer():
    """The currently-installed tracer (:data:`NOOP_TRACER` by default)."""
    return _tracer


def set_tracer(tracer) -> object:
    """Install ``tracer`` process-wide; returns the previous tracer."""
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NOOP_TRACER
    return previous


@contextmanager
def use_tracer(tracer):
    """Scoped :func:`set_tracer`: restores the previous tracer on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
