"""Structured logging for repro (`repro.obs`, satellite).

All loggers live under the ``repro`` namespace and carry a
``NullHandler`` by default, so library users see nothing unless they (or
the CLI) opt in.  The CLI wires ``--log-level`` and the
``REPRO_LOG_LEVEL`` environment variable through :func:`configure`.

The recovery paths that used to heal silently — worker death/respawn,
shard quarantine, pool degradation, planner pool-spawn vetoes — emit
WARN/INFO records through :func:`get_logger`.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

#: Environment variable consulted when no explicit level is given.
ENV_VAR = "REPRO_LOG_LEVEL"

_LEVELS = ("CRITICAL", "ERROR", "WARNING", "WARN", "INFO", "DEBUG")

_root = logging.getLogger("repro")
_root.addHandler(logging.NullHandler())

_handler: Optional[logging.Handler] = None


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` namespace (the root one if unnamed)."""
    if not name:
        return _root
    return _root.getChild(name)


def resolve_level(level: Optional[str]) -> Optional[int]:
    """Map a level name (or ``None`` → ``$REPRO_LOG_LEVEL``) to an int.

    Returns ``None`` when neither source names a level; raises
    ``ValueError`` on an unknown name so the CLI can report it.
    """
    resolved = level if level is not None else os.environ.get(ENV_VAR)
    if resolved is None or resolved == "":
        return None
    upper = str(resolved).upper()
    if upper not in _LEVELS:
        raise ValueError(
            f"unknown log level {resolved!r} (choose from "
            f"{', '.join(_LEVELS)})"
        )
    return logging.getLevelName("WARNING" if upper == "WARN" else upper)


def configure(level: Optional[str] = None, stream=None) -> Optional[int]:
    """Attach a stderr handler at ``level`` (or ``$REPRO_LOG_LEVEL``).

    No-op when neither names a level — the NullHandler default stands.
    Reconfiguring replaces the previously attached handler, so repeated
    calls (tests, embedded use) never stack duplicate output.  Returns
    the numeric level in effect, or ``None`` when left unconfigured.
    """
    global _handler
    numeric = resolve_level(level)
    if numeric is None:
        return None
    if _handler is not None:
        _root.removeHandler(_handler)
    _handler = logging.StreamHandler(stream or sys.stderr)
    _handler.setFormatter(logging.Formatter(
        "%(asctime)s %(levelname)s %(name)s: %(message)s"
    ))
    _root.addHandler(_handler)
    _root.setLevel(numeric)
    return numeric
