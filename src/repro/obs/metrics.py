"""Process-wide metrics registry (`repro.obs`, pillar 2).

Counters, gauges, and fixed-bucket histograms, named in the Prometheus
idiom and rendered as text exposition (``GET /metrics`` on ``repro
serve``) or as a plain dict (the ``metrics`` section of ``/healthz``).

The default registry is :data:`NOOP_REGISTRY`: every instrument handed
out is a shared do-nothing object, so instrumentation sites in the
engine, pool, and planner cost two attribute lookups and a no-op call
when metrics are off.  The serve layer installs a real registry at
startup (:func:`enable_metrics`), which also pre-registers the standard
metric families (:data:`STANDARD_METRICS`) so a scrape sees the full
schema — pool resilience, planner error, cache traffic — from the first
request, not only after the matching code path has fired.

Locking is deliberately cheap: one small lock per instrument, taken only
around the few arithmetic operations of an update.  Updates happen per
batch / per job / per level — never per row — so the cost is noise even
under the pooled serve path.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram boundaries (seconds): spans dispatch latencies in the
#: hundreds of microseconds up to multi-second levels.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "help", "_value", "_lock")

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Last-write-wins value (set at scrape time for derived state)."""

    __slots__ = ("name", "help", "_value", "_lock")

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-boundary histogram (cumulative buckets at render time)."""

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count",
                 "_lock")

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.help = help_text
        self.buckets = tuple(buckets) if buckets else DEFAULT_BUCKETS
        self._counts = [0] * (len(self.buckets) + 1)  # trailing +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> List[int]:
        """Cumulative counts per boundary, +Inf last."""
        with self._lock:
            raw = list(self._counts)
        cumulative: List[int] = []
        running = 0
        for count in raw:
            running += count
            cumulative.append(running)
        return cumulative


def _format_value(value: float) -> str:
    """Render 3.0 as ``3`` (Prometheus accepts both; integers read better)."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """Named instruments plus Prometheus / dict rendering."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        metric = self._get(name, lambda: Counter(name, help_text))
        if not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{type(metric).__name__}")
        return metric

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        metric = self._get(name, lambda: Gauge(name, help_text))
        if not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{type(metric).__name__}")
        return metric

    def histogram(self, name: str, help_text: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        metric = self._get(name, lambda: Histogram(name, help_text, buckets))
        if not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{type(metric).__name__}")
        return metric

    # -- rendering ---------------------------------------------------------------

    def render_prometheus(self) -> str:
        """Text exposition format, version 0.0.4 (the `/metrics` body)."""
        lines: List[str] = []
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                cumulative = metric.bucket_counts()
                for boundary, count in zip(metric.buckets, cumulative):
                    lines.append(
                        f'{metric.name}_bucket{{le="{boundary}"}} {count}'
                    )
                lines.append(
                    f'{metric.name}_bucket{{le="+Inf"}} {cumulative[-1]}'
                )
                lines.append(
                    f"{metric.name}_sum {_format_value(metric.sum)}"
                )
                lines.append(f"{metric.name}_count {metric.count}")
            else:
                lines.append(
                    f"{metric.name} {_format_value(metric.value)}"
                )
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view for the ``metrics`` section of ``/healthz``."""
        result: Dict[str, object] = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            if isinstance(metric, Histogram):
                result[metric.name] = {
                    "count": metric.count,
                    "sum": round(metric.sum, 6),
                }
            else:
                result[metric.name] = metric.value
        return result


class _NoopInstrument:
    """Shared stand-in for Counter/Gauge/Histogram when metrics are off."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    @property
    def value(self) -> float:
        return 0.0


_NOOP_INSTRUMENT = _NoopInstrument()


class NoopRegistry:
    """The zero-cost default registry."""

    enabled = False

    def counter(self, name, help_text="") -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def gauge(self, name, help_text="") -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def histogram(self, name, help_text="", buckets=None) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def render_prometheus(self) -> str:
        return ""

    def snapshot(self) -> Dict[str, object]:
        return {}


NOOP_REGISTRY = NoopRegistry()

_registry = NOOP_REGISTRY

#: The metric families pre-registered by :func:`bootstrap` so a fresh
#: serve process exposes the full schema before any traffic arrives.
#: ``(kind, name, help)`` — histogram boundaries use the defaults.
STANDARD_METRICS: Tuple[Tuple[str, str, str], ...] = (
    ("counter", "repro_engine_runs_total",
     "Discovery runs completed by this process"),
    ("counter", "repro_engine_levels_total",
     "Lattice levels processed across all runs"),
    ("counter", "repro_engine_oc_candidates_total",
     "OC candidates validated across all runs"),
    ("counter", "repro_engine_ofd_candidates_total",
     "OFD candidates validated across all runs"),
    ("histogram", "repro_level_seconds",
     "Wall-clock seconds per processed lattice level"),
    ("counter", "repro_pool_groups_total",
     "Validation groups submitted to the shard pool"),
    ("counter", "repro_pool_jobs_total",
     "Shard jobs dispatched to pool workers"),
    ("counter", "repro_pool_worker_deaths_total",
     "Pool worker processes that died unexpectedly"),
    ("counter", "repro_pool_respawns_total",
     "Pool workers respawned after a death"),
    ("counter", "repro_pool_requeued_shards_total",
     "Shard jobs requeued after losing their worker"),
    ("counter", "repro_pool_inline_fallbacks_total",
     "Shard jobs recovered by in-process execution"),
    ("counter", "repro_pool_quarantined_shards_total",
     "Shard jobs quarantined after repeated worker deaths"),
    ("counter", "repro_pool_worker_timeouts_total",
     "Shard jobs whose worker exceeded the dispatch timeout"),
    ("histogram", "repro_pool_round_trip_seconds",
     "Dispatch-to-harvest latency per shard job"),
    ("histogram", "repro_pool_queue_wait_seconds",
     "Dispatch-to-kernel-start wait per shard job"),
    ("counter", "repro_planner_levels_total",
     "Levels planned-and-observed by the adaptive planner"),
    ("counter", "repro_planner_pool_vetoes_total",
     "Run-scope pool spawns vetoed by the planner"),
    ("histogram", "repro_planner_abs_error_seconds",
     "Absolute planner prediction error per observed level"),
    ("counter", "repro_result_cache_hits_total",
     "Serve-layer result cache hits"),
    ("counter", "repro_result_cache_misses_total",
     "Serve-layer result cache misses"),
    ("gauge", "repro_pool_degraded",
     "1 when the shared validation pool has degraded to in-process"),
    ("gauge", "repro_datasets",
     "Datasets currently hosted by this serve process"),
    ("gauge", "repro_result_cache_entries",
     "Entries across all serve-layer result caches"),
    ("counter", "repro_serve_admitted_total",
     "Requests admitted past the serve-layer admission controller"),
    ("counter", "repro_serve_rejected_429_total",
     "Requests rejected 429: per-dataset admission queue full"),
    ("counter", "repro_serve_rejected_503_total",
     "Requests rejected 503: server saturated or draining"),
    ("counter", "repro_serve_deadline_timeouts_total",
     "Requests abandoned because their deadline expired"),
    ("counter", "repro_serve_disconnect_cancellations_total",
     "Discovery runs cancelled after the client disconnected"),
    ("counter", "repro_serve_requests_total",
     "HTTP requests handled by the serve layer"),
    ("counter", "repro_serve_dataset_uploads_total",
     "Datasets uploaded over HTTP (PUT /datasets/<name>)"),
    ("counter", "repro_serve_dataset_evictions_total",
     "Datasets evicted over HTTP (DELETE /datasets/<name>)"),
    ("counter", "repro_serve_ttl_evictions_total",
     "Datasets evicted by the TTL idle sweep"),
    ("histogram", "repro_serve_queue_wait_seconds",
     "Admission-queue wait per admitted request"),
    ("histogram", "repro_serve_request_seconds",
     "End-to-end serve-layer request duration (admission to response)"),
    ("gauge", "repro_serve_inflight",
     "Requests currently admitted (executing or queued)"),
    ("gauge", "repro_serve_draining",
     "1 while the serve process is draining for shutdown"),
)


def bootstrap(registry: MetricsRegistry) -> MetricsRegistry:
    """Pre-register :data:`STANDARD_METRICS` on ``registry``."""
    for kind, name, help_text in STANDARD_METRICS:
        getattr(registry, kind)(name, help_text)
    return registry


def get_metrics():
    """The currently-installed registry (:data:`NOOP_REGISTRY` default)."""
    return _registry


def set_metrics(registry) -> object:
    """Install ``registry`` process-wide; returns the previous registry."""
    global _registry
    previous = _registry
    _registry = registry if registry is not None else NOOP_REGISTRY
    return previous


def enable_metrics() -> MetricsRegistry:
    """Install (or return the already-installed) real registry, with the
    standard metric families pre-registered.  Idempotent."""
    global _registry
    if not isinstance(_registry, MetricsRegistry):
        _registry = bootstrap(MetricsRegistry())
    return _registry
