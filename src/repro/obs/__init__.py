"""`repro.obs` — the unified observability layer.

Three pillars, all zero-cost until enabled:

- :mod:`repro.obs.trace` — contextvar span tracing across the worker
  boundary with Chrome-trace/Perfetto export (``repro discover --trace``).
- :mod:`repro.obs.metrics` — process-wide counters/gauges/histograms with
  Prometheus text exposition (``GET /metrics`` on ``repro serve``).
- :mod:`repro.obs.log` — stdlib logging under the ``repro`` namespace
  (``--log-level`` / ``REPRO_LOG_LEVEL``), NullHandler by default.

Enabling any pillar never changes discovery results — byte-identity with
observability on vs off is asserted differentially in ``tests/obs/``.
"""

from .log import configure as configure_logging, get_logger
from .metrics import (
    MetricsRegistry,
    NOOP_REGISTRY,
    NoopRegistry,
    enable_metrics,
    get_metrics,
    set_metrics,
)
from .trace import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "MetricsRegistry",
    "NOOP_REGISTRY",
    "NOOP_TRACER",
    "NoopRegistry",
    "NoopTracer",
    "Span",
    "Tracer",
    "configure_logging",
    "enable_metrics",
    "get_logger",
    "get_metrics",
    "get_tracer",
    "set_metrics",
    "set_tracer",
    "use_tracer",
]
