"""Convenience entry points for OD / AOD discovery.

These are thin wrappers over a one-shot
:class:`~repro.discovery.session.Profiler` session: each call builds a
session, runs a single :class:`~repro.discovery.config.DiscoveryRequest`
against it and tears it down again.  Code that profiles the same relation
repeatedly (threshold sweeps, serving) should hold a ``Profiler`` instead —
it amortises encoding, partitions and the worker pool across runs, with
byte-identical per-run results.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.dataset.relation import Relation
from repro.discovery.config import DiscoveryConfig, DiscoveryRequest
from repro.discovery.engine import DiscoveryEngine
from repro.discovery.results import DiscoveryResult
from repro.discovery.session import Profiler


def discover_ods(
    relation: Relation,
    attributes: Optional[Sequence[str]] = None,
    max_level: Optional[int] = None,
    time_limit_seconds: Optional[float] = None,
    find_ofds: bool = True,
    backend: Optional[str] = None,
    batch_validation: bool = True,
    num_workers: int = 1,
) -> DiscoveryResult:
    """Discover all minimal *exact* canonical ODs (OCs and OFDs).

    This is the FASTOD-style baseline the paper labels "OD" in Figures 2
    and 3: the approximation threshold is zero and the linear exact OC check
    is used for validation.

    Examples
    --------
    >>> from repro.dataset.examples import employee_salary_table
    >>> result = discover_ods(employee_salary_table())
    >>> result.find_oc("sal", "taxGrp") is not None
    True
    """
    request = DiscoveryRequest.exact(
        attributes=None if attributes is None else list(attributes),
        max_level=max_level,
        time_limit_seconds=time_limit_seconds,
        find_ofds=find_ofds,
        batch_validation=batch_validation,
        num_workers=DiscoveryRequest.pin_workers(num_workers),
    )
    with Profiler(relation, backend=backend, num_workers=num_workers,
                  cache_validations=False,
                  retain_partitions=False) as session:
        return session.discover(request)


def discover_aods(
    relation: Relation,
    threshold: float = 0.1,
    validator: str = "optimal",
    attributes: Optional[Sequence[str]] = None,
    max_level: Optional[int] = None,
    time_limit_seconds: Optional[float] = None,
    find_ofds: bool = True,
    backend: Optional[str] = None,
    batch_validation: bool = True,
    num_workers: int = 1,
) -> DiscoveryResult:
    """Discover all minimal *approximate* canonical ODs w.r.t. ``threshold``.

    Parameters
    ----------
    relation:
        The table to profile.
    threshold:
        The approximation threshold ``ε`` (default 10%, the paper's default).
    validator:
        ``"optimal"`` for the paper's LNDS-based Algorithm 2 (default) or
        ``"iterative"`` for the greedy baseline it replaces.
    attributes, max_level, time_limit_seconds, find_ofds, batch_validation, \
num_workers:
        See :class:`repro.discovery.DiscoveryConfig`.

    Examples
    --------
    >>> from repro.dataset.examples import employee_salary_table
    >>> result = discover_aods(employee_salary_table(), threshold=0.15)
    >>> found = result.find_oc("exp", "sal", context=("pos",))
    >>> found is not None and found.removal_size == 1
    True
    """
    request = DiscoveryRequest.approximate(
        threshold=threshold,
        validator=validator,
        attributes=None if attributes is None else list(attributes),
        max_level=max_level,
        time_limit_seconds=time_limit_seconds,
        find_ofds=find_ofds,
        batch_validation=batch_validation,
        num_workers=DiscoveryRequest.pin_workers(num_workers),
    )
    with Profiler(relation, backend=backend, num_workers=num_workers,
                  cache_validations=False,
                  retain_partitions=False) as session:
        return session.discover(request)


def discover(relation: Relation, config: DiscoveryConfig) -> DiscoveryResult:
    """Run discovery with an explicit :class:`DiscoveryConfig`.

    This is the engine-level escape hatch (live backend instances,
    progress callbacks); the engine owns all of its state, exactly like a
    one-shot session.
    """
    return DiscoveryEngine(relation, config).run()
