"""Convenience entry points for OD / AOD discovery."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.dataset.relation import Relation
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import DiscoveryEngine
from repro.discovery.results import DiscoveryResult


def discover_ods(
    relation: Relation,
    attributes: Optional[Sequence[str]] = None,
    max_level: Optional[int] = None,
    time_limit_seconds: Optional[float] = None,
    find_ofds: bool = True,
    backend: Optional[str] = None,
    batch_validation: bool = True,
    num_workers: int = 1,
) -> DiscoveryResult:
    """Discover all minimal *exact* canonical ODs (OCs and OFDs).

    This is the FASTOD-style baseline the paper labels "OD" in Figures 2
    and 3: the approximation threshold is zero and the linear exact OC check
    is used for validation.

    Examples
    --------
    >>> from repro.dataset.examples import employee_salary_table
    >>> result = discover_ods(employee_salary_table())
    >>> result.find_oc("sal", "taxGrp") is not None
    True
    """
    config = DiscoveryConfig.exact(
        attributes=attributes,
        max_level=max_level,
        time_limit_seconds=time_limit_seconds,
        find_ofds=find_ofds,
        backend=backend,
        batch_validation=batch_validation,
        num_workers=num_workers,
    )
    return DiscoveryEngine(relation, config).run()


def discover_aods(
    relation: Relation,
    threshold: float = 0.1,
    validator: str = "optimal",
    attributes: Optional[Sequence[str]] = None,
    max_level: Optional[int] = None,
    time_limit_seconds: Optional[float] = None,
    find_ofds: bool = True,
    backend: Optional[str] = None,
    batch_validation: bool = True,
    num_workers: int = 1,
) -> DiscoveryResult:
    """Discover all minimal *approximate* canonical ODs w.r.t. ``threshold``.

    Parameters
    ----------
    relation:
        The table to profile.
    threshold:
        The approximation threshold ``ε`` (default 10%, the paper's default).
    validator:
        ``"optimal"`` for the paper's LNDS-based Algorithm 2 (default) or
        ``"iterative"`` for the greedy baseline it replaces.
    attributes, max_level, time_limit_seconds, find_ofds, batch_validation, \
num_workers:
        See :class:`repro.discovery.DiscoveryConfig`.

    Examples
    --------
    >>> from repro.dataset.examples import employee_salary_table
    >>> result = discover_aods(employee_salary_table(), threshold=0.15)
    >>> found = result.find_oc("exp", "sal", context=("pos",))
    >>> found is not None and found.removal_size == 1
    True
    """
    config = DiscoveryConfig.approximate(
        threshold=threshold,
        validator=validator,
        attributes=attributes,
        max_level=max_level,
        time_limit_seconds=time_limit_seconds,
        find_ofds=find_ofds,
        backend=backend,
        batch_validation=batch_validation,
        num_workers=num_workers,
    )
    return DiscoveryEngine(relation, config).run()


def discover(relation: Relation, config: DiscoveryConfig) -> DiscoveryResult:
    """Run discovery with an explicit :class:`DiscoveryConfig`."""
    return DiscoveryEngine(relation, config).run()
