"""Hybrid, sampling-assisted AOC validation (the paper's future work, §5).

The conclusions point to "new approaches for discovering approximate OCs,
such as hybrid sampling, as done in [Papenbrock & Naumann, SIGMOD 2016] for
FDs".  This module implements the sound half of that idea:

**Sound sample-based rejection.**  For any subset ``r' ⊆ r`` and any OC
``φ``, a minimal removal set of ``r`` intersected with ``r'`` is a removal
set of ``r'``, so ``|minimal removal of r'| ≤ |minimal removal of r|``.
Consequently, if already the *sample* needs more than ``ε·|r|`` removals
(note: the budget of the **full** relation), the candidate cannot be valid
on the full relation and can be rejected without ever touching the rest of
the data.  Rejection is therefore exact — no false negatives — while
acceptance still requires a full validation pass.

On dirty candidates (the overwhelming majority in a lattice search) the
sample check answers in ``O(s log s)`` for a sample of size ``s``, which is
where the hybrid saves time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.dataset.partition import PartitionCache
from repro.dataset.relation import Relation
from repro.dependencies.oc import CanonicalOC
from repro.validation.approx_oc_optimal import (
    optimal_removal_rows,
    validate_aoc_optimal,
)
from repro.validation.common import context_classes, removal_limit
from repro.validation.result import ValidationResult


@dataclass
class HybridValidationOutcome:
    """Result of a hybrid validation, with provenance information."""

    result: ValidationResult
    rejected_by_sample: bool
    sample_size: int
    sample_removal: int

    @property
    def is_valid(self) -> bool:
        return self.result.is_valid


def sample_rows(num_rows: int, sample_size: int, seed: int = 0) -> List[int]:
    """Uniform sample (without replacement) of row indices, deterministic."""
    if sample_size >= num_rows:
        return list(range(num_rows))
    rng = random.Random(seed)
    return sorted(rng.sample(range(num_rows), sample_size))


def _sample_removal_count(
    relation: Relation,
    oc: CanonicalOC,
    rows: Sequence[int],
) -> int:
    """Minimal removal count of the OC restricted to the sampled rows."""
    encoded = relation.encoded()
    a_ranks = encoded.ranks(oc.a)
    b_ranks = encoded.ranks(oc.b)
    sampled = set(rows)
    # Build the context classes of the *full* relation and intersect with the
    # sample; this keeps the encoding shared and the classes consistent.
    classes = context_classes(relation, oc.context)
    sample_classes = []
    for class_rows in classes:
        restricted = [row for row in class_rows if row in sampled]
        if len(restricted) >= 2:
            sample_classes.append(restricted)
    removal, _ = optimal_removal_rows(sample_classes, a_ranks, b_ranks)
    return len(removal)


def validate_aoc_hybrid(
    relation: Relation,
    oc: CanonicalOC,
    threshold: float,
    sample_size: int = 500,
    seed: int = 0,
    partition_cache: Optional[PartitionCache] = None,
) -> HybridValidationOutcome:
    """Validate an AOC with a sound sample-based fast path.

    1. Compute the minimal removal count on a uniform sample.
    2. If it already exceeds ``⌊ε·|r|⌋`` (the full relation's budget), reject
       without full validation — provably correct, see the module docstring.
    3. Otherwise run Algorithm 2 on the full relation.
    """
    limit = removal_limit(relation.num_rows, threshold)
    rows = sample_rows(relation.num_rows, sample_size, seed)
    sample_removal = _sample_removal_count(relation, oc, rows)
    if limit is not None and sample_removal > limit:
        rejected = ValidationResult(
            dependency=oc,
            num_rows=relation.num_rows,
            removal_rows=frozenset(),
            threshold=threshold,
            exceeded_threshold=True,
        )
        return HybridValidationOutcome(
            result=rejected,
            rejected_by_sample=True,
            sample_size=len(rows),
            sample_removal=sample_removal,
        )
    full = validate_aoc_optimal(
        relation, oc, threshold=threshold, partition_cache=partition_cache
    )
    return HybridValidationOutcome(
        result=full,
        rejected_by_sample=False,
        sample_size=len(rows),
        sample_removal=sample_removal,
    )


def prefilter_candidates(
    relation: Relation,
    candidates: Sequence[CanonicalOC],
    threshold: float,
    sample_size: int = 500,
    seed: int = 0,
) -> Tuple[List[CanonicalOC], List[CanonicalOC]]:
    """Split candidates into (survivors, rejected) using only the sample.

    Every rejected candidate is guaranteed invalid on the full relation;
    survivors still need full validation.  Intended as a cheap screening
    pass before handing the survivors to the discovery engine or to
    :func:`validate_aoc_hybrid`.
    """
    limit = removal_limit(relation.num_rows, threshold)
    rows = sample_rows(relation.num_rows, sample_size, seed)
    survivors: List[CanonicalOC] = []
    rejected: List[CanonicalOC] = []
    for oc in candidates:
        if limit is not None and _sample_removal_count(relation, oc, rows) > limit:
            rejected.append(oc)
        else:
            survivors.append(oc)
    return survivors, rejected
