"""Configuration of a discovery run.

Two related types live here:

* :class:`DiscoveryConfig` — the engine-facing configuration.  It may hold
  live objects (a :class:`~repro.backend.base.ComputeBackend` instance, a
  progress callback) and is what :class:`repro.discovery.engine.DiscoveryEngine`
  consumes.
* :class:`DiscoveryRequest` — the *serialisable* subset of a configuration:
  plain JSON-compatible values only, convertible to and from a
  :class:`DiscoveryConfig`.  This is the request half of the service
  boundary used by :class:`repro.discovery.session.Profiler` and
  ``repro serve``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields as _dataclass_fields
from typing import Dict, List, Optional, Sequence

from repro.backend import BACKEND_CHOICES, ComputeBackend


#: The validator names accepted by :class:`DiscoveryConfig.validator`.
VALIDATOR_KINDS = ("exact", "optimal", "iterative")

#: Execution-planning modes accepted by :class:`DiscoveryConfig.plan`:
#: ``"fixed"`` runs exactly the configured knobs, ``"auto"`` lets the
#: adaptive planner (:mod:`repro.planner`) choose workers / pipelining /
#: shard floors per level within the configured ceilings.
PLAN_MODES = ("fixed", "auto")


@dataclass
class DiscoveryConfig:
    """Parameters controlling a lattice discovery run.

    Attributes
    ----------
    threshold:
        Approximation threshold ``ε`` in ``[0, 1]``.  ``0`` means exact OD
        discovery; the paper's default for AOD experiments is ``0.1`` (10%).
    validator:
        Which AOC validation algorithm to use: ``"optimal"`` (Algorithm 2),
        ``"iterative"`` (Algorithm 1) or ``"exact"`` (linear check, only
        meaningful with ``threshold == 0``).
    attributes:
        Optional subset of attributes to restrict the search to (the paper
        uses the first 10 attributes of each dataset unless stated
        otherwise).
    max_level:
        Optional cap on the lattice level (attribute-set size) explored.
    time_limit_seconds:
        Optional wall-clock budget; when exceeded the run stops early and
        the result is marked ``timed_out`` (this models the paper's 24-hour
        cut-off for the iterative algorithm).
    find_ofds:
        Whether OFD candidates are validated and reported.  The paper's
        experiments focus on OCs; OFD validation is cheap and enabled by
        default because its results drive OC pruning.
    aggressive_ofd_pruning:
        Apply TANE's right-hand-side pruning rule (remove ``R \\ X`` from the
        candidate set) when an OFD holds *exactly*.  Always sound; disabled
        automatically for approximately-held OFDs.
    prune_exhausted_nodes:
        FASTOD/TANE-style node deletion: a lattice node whose candidate sets
        are both empty is dropped, which stops any of its supersets from
        being generated.  This is what keeps the search tractable on wider
        schemas and what lets AOD discovery overtake exact OD discovery
        (Exp-5).  Setting it to ``False`` keeps every node alive and makes
        the search exhaustively complete at exponential cost — used by the
        test-suite's brute-force comparisons and useful on narrow schemas.
    progress_callback:
        Optional callable invoked as ``callback(level, nodes)`` at the start
        of every lattice level (used by the CLI for progress output).
    backend:
        Compute backend for the hot paths (encoding, partitions, validation
        kernels): a :class:`~repro.backend.base.ComputeBackend` instance, a
        name (``"python"`` / ``"numpy"`` / ``"auto"``), or ``None`` to defer
        to the ``REPRO_BACKEND`` environment variable / auto-detection.
        Every backend produces identical discovery results.
    batch_validation:
        Level-synchronous batched scheduling (the default): each level's
        surviving candidates are grouped by context and validated through
        the backend's batch kernels.  ``False`` restores the per-candidate
        loop (the reference path, kept for A/B benchmarking).  Both
        schedules produce identical discovery results.
    num_workers:
        Shard batched OC validation across this many worker processes
        (equivalence classes of a context are independent, so workers merge
        by summing removal counts).  ``1`` (the default) validates
        in-process; values above 1 require ``batch_validation`` and only
        take effect for the LNDS-based ``optimal`` validator on approximate
        runs — exact and iterative validation never consults the pool.
        Every worker count produces identical discovery results.
    pipeline_validation:
        Pipelined level validation (the default): with worker processes
        active, every OC context group of a level is submitted to the pool
        asynchronously and the coordinator validates the level's OFD
        candidates (and builds their partitions) while the workers drain,
        joining at the level barrier.  ``False`` restores the synchronous
        group-at-a-time dispatch (kept for A/B benchmarking).  Both
        schedules produce identical discovery results; without workers the
        flag has no effect.
    worker_timeout:
        Optional per-job deadline in seconds for pool-dispatched validation
        shards.  A job past it is treated as a worker death: the worker is
        retired and the shard is recovered (requeued, or validated on the
        coordinator) without changing results.  ``None`` (the default)
        waits indefinitely; only meaningful when ``num_workers > 1``.
    plan:
        Execution-planning mode.  ``"fixed"`` (the default) runs exactly
        the configured knobs.  ``"auto"`` consults the adaptive planner
        (:mod:`repro.planner`) at every level boundary: it may degrade the
        level to in-process validation when parallelism cannot pay (e.g.
        on a 1-core host), toggle pipelining, and tune the pool's shard
        cost floors — within the configured ceilings (``num_workers`` is
        the most workers the planner may use), and always with
        byte-identical results.  Decisions are recorded on
        :class:`~repro.discovery.stats.DiscoveryStatistics`.
    """

    threshold: float = 0.0
    validator: str = "optimal"
    attributes: Optional[Sequence[str]] = None
    max_level: Optional[int] = None
    time_limit_seconds: Optional[float] = None
    find_ofds: bool = True
    aggressive_ofd_pruning: bool = True
    prune_exhausted_nodes: bool = True
    progress_callback: Optional[object] = None
    backend: Optional[object] = None
    batch_validation: bool = True
    num_workers: int = 1
    pipeline_validation: bool = True
    worker_timeout: Optional[float] = None
    plan: str = "fixed"

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(
                f"threshold must be in [0, 1], got {self.threshold}"
            )
        if self.validator not in VALIDATOR_KINDS:
            raise ValueError(
                f"validator must be one of {VALIDATOR_KINDS}, got {self.validator!r}"
            )
        if self.backend is not None and not isinstance(self.backend, ComputeBackend):
            if not isinstance(self.backend, str) or self.backend not in BACKEND_CHOICES:
                raise ValueError(
                    f"backend must be one of {BACKEND_CHOICES} or a "
                    f"ComputeBackend instance, got {self.backend!r}"
                )
        if self.validator == "exact" and self.threshold > 0:
            raise ValueError(
                "the exact validator cannot be used with a non-zero threshold"
            )
        if self.max_level is not None and self.max_level < 1:
            raise ValueError("max_level must be at least 1")
        if self.num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if self.num_workers > 1 and not self.batch_validation:
            raise ValueError(
                "num_workers > 1 requires batch_validation: the worker shards "
                "are dispatched by the level-synchronous scheduler"
            )
        if self.worker_timeout is not None and self.worker_timeout <= 0:
            raise ValueError(
                f"worker_timeout must be positive, got {self.worker_timeout}"
            )
        if self.plan not in PLAN_MODES:
            raise ValueError(
                f"plan must be one of {PLAN_MODES}, got {self.plan!r}"
            )

    @property
    def is_exact(self) -> bool:
        """``True`` when the run performs exact OD discovery (``ε = 0``)."""
        return self.threshold == 0.0

    @classmethod
    def exact(cls, **kwargs) -> "DiscoveryConfig":
        """Configuration for exact OD discovery (the paper's "OD" series)."""
        kwargs.setdefault("validator", "exact")
        return cls(threshold=0.0, **kwargs)

    @classmethod
    def approximate(cls, threshold: float = 0.1, validator: str = "optimal",
                    **kwargs) -> "DiscoveryConfig":
        """Configuration for AOD discovery (default ``ε = 10%`` as in the paper)."""
        return cls(threshold=threshold, validator=validator, **kwargs)


@dataclass(frozen=True)
class DiscoveryRequest:
    """A JSON-serialisable description of one discovery run.

    Requests carry only plain values — no backend instances, no callbacks —
    so they can cross a service boundary unchanged: the CLI, the
    :class:`~repro.discovery.session.Profiler` session API and the
    ``repro serve`` HTTP mode all speak this type.  Session-owned concerns
    (which compute backend, how many worker processes, progress callbacks)
    are supplied when the request is resolved against a session via
    :meth:`to_config`.

    Fields mirror :class:`DiscoveryConfig`; ``num_workers`` is optional and
    ``None`` defers to the session's worker count.
    """

    threshold: float = 0.0
    validator: str = "optimal"
    attributes: Optional[List[str]] = None
    max_level: Optional[int] = None
    time_limit_seconds: Optional[float] = None
    find_ofds: bool = True
    aggressive_ofd_pruning: bool = True
    prune_exhausted_nodes: bool = True
    batch_validation: bool = True
    num_workers: Optional[int] = None
    pipeline_validation: bool = True
    worker_timeout: Optional[float] = None
    plan: str = "fixed"

    def __post_init__(self) -> None:
        if self.attributes is not None:
            # A bare string would be silently split into characters by
            # list(); it is always a client mistake.
            if isinstance(self.attributes, (str, bytes)):
                raise ValueError(
                    "attributes must be a list of attribute names, got "
                    f"the single string {self.attributes!r}"
                )
            object.__setattr__(self, "attributes", list(self.attributes))
        self._check_types()
        # Validate eagerly with the config's own rules so malformed requests
        # fail at the boundary, not deep inside the engine.
        self.to_config()

    def _check_types(self) -> None:
        """Reject wrongly-typed values at the boundary.

        JSON clients send strings like ``"false"`` that are truthy in
        Python; silently honoring them would flip run semantics, which is
        exactly the class of mistake the strict unknown-key check exists
        to prevent.
        """
        def expect(name: str, value: object, ok: bool, wanted: str) -> None:
            if not ok:
                raise ValueError(f"{name} must be {wanted}, got {value!r}")

        def is_number(value: object) -> bool:
            return isinstance(value, (int, float)) and not isinstance(value, bool)

        expect("threshold", self.threshold, is_number(self.threshold),
               "a number")
        expect("validator", self.validator, isinstance(self.validator, str),
               "a string")
        expect("plan", self.plan, isinstance(self.plan, str), "a string")
        if self.attributes is not None:
            expect("attributes", self.attributes,
                   all(isinstance(a, str) for a in self.attributes),
                   "a list of attribute names")
        for name in ("max_level", "num_workers"):
            value = getattr(self, name)
            expect(name, value,
                   value is None or (isinstance(value, int)
                                     and not isinstance(value, bool)),
                   "an integer or null")
        expect("time_limit_seconds", self.time_limit_seconds,
               self.time_limit_seconds is None or is_number(
                   self.time_limit_seconds),
               "a number or null")
        expect("worker_timeout", self.worker_timeout,
               self.worker_timeout is None or is_number(self.worker_timeout),
               "a number or null")
        for name in ("find_ofds", "aggressive_ofd_pruning",
                     "prune_exhausted_nodes", "batch_validation",
                     "pipeline_validation"):
            expect(name, getattr(self, name),
                   isinstance(getattr(self, name), bool), "a boolean")

    # -- factories ---------------------------------------------------------------

    @staticmethod
    def pin_workers(num_workers: int) -> Optional[int]:
        """Request-level worker count for an explicit user choice.

        ``1`` (the default) maps to ``None`` — defer to the session —
        while any other count is pinned on the request, so invalid
        combinations (e.g. with ``batch_validation=False``) are rejected
        rather than quietly resolved to a serial run.
        """
        return num_workers if num_workers != 1 else None

    @classmethod
    def exact(cls, **kwargs) -> "DiscoveryRequest":
        """Request for exact OD discovery (``ε = 0``, linear exact check)."""
        kwargs.setdefault("validator", "exact")
        return cls(threshold=0.0, **kwargs)

    @classmethod
    def approximate(cls, threshold: float = 0.1, validator: str = "optimal",
                    **kwargs) -> "DiscoveryRequest":
        """Request for AOD discovery (default ``ε = 10%``)."""
        return cls(threshold=threshold, validator=validator, **kwargs)

    # -- conversion to/from the engine configuration -----------------------------

    def to_config(
        self,
        backend: Optional[object] = None,
        num_workers: int = 1,
        progress_callback: Optional[object] = None,
    ) -> DiscoveryConfig:
        """Resolve this request into an engine :class:`DiscoveryConfig`.

        ``backend`` / ``num_workers`` / ``progress_callback`` are the
        session-owned parameters; a request-level ``num_workers`` overrides
        the session default.  A session default above 1 quietly resolves to
        1 for runs that cannot use the worker pool anyway
        (``batch_validation=False``) — only an *explicitly pinned* invalid
        combination is rejected.
        """
        if self.num_workers is not None:
            effective_workers = self.num_workers
        elif not self.batch_validation:
            effective_workers = 1
        else:
            effective_workers = num_workers
        return DiscoveryConfig(
            threshold=self.threshold,
            validator=self.validator,
            attributes=None if self.attributes is None else list(self.attributes),
            max_level=self.max_level,
            time_limit_seconds=self.time_limit_seconds,
            find_ofds=self.find_ofds,
            aggressive_ofd_pruning=self.aggressive_ofd_pruning,
            prune_exhausted_nodes=self.prune_exhausted_nodes,
            batch_validation=self.batch_validation,
            num_workers=effective_workers,
            pipeline_validation=self.pipeline_validation,
            worker_timeout=self.worker_timeout,
            plan=self.plan,
            backend=backend,
            progress_callback=progress_callback,
        )

    @classmethod
    def from_config(cls, config: DiscoveryConfig) -> "DiscoveryRequest":
        """Project an engine configuration onto its serialisable subset."""
        return cls(
            threshold=config.threshold,
            validator=config.validator,
            attributes=None if config.attributes is None
            else list(config.attributes),
            max_level=config.max_level,
            time_limit_seconds=config.time_limit_seconds,
            find_ofds=config.find_ofds,
            aggressive_ofd_pruning=config.aggressive_ofd_pruning,
            prune_exhausted_nodes=config.prune_exhausted_nodes,
            batch_validation=config.batch_validation,
            num_workers=config.num_workers,
            pipeline_validation=config.pipeline_validation,
            worker_timeout=config.worker_timeout,
            plan=config.plan,
        )

    # -- JSON boundary -----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-compatible values only)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DiscoveryRequest":
        """Rebuild a request from :meth:`to_dict` output.

        Unknown keys raise ``ValueError`` — the request is a typed boundary,
        so misspelled parameters must not be silently dropped.
        """
        known = {f.name for f in _dataclass_fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown DiscoveryRequest fields: {unknown} "
                f"(known: {sorted(known)})"
            )
        return cls(**data)

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "DiscoveryRequest":
        """Parse a request from a JSON string."""
        data = json.loads(payload)
        if not isinstance(data, dict):
            raise ValueError(
                f"DiscoveryRequest JSON must be an object, got {type(data).__name__}"
            )
        return cls.from_dict(data)
