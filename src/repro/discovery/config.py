"""Configuration of a discovery run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.backend import BACKEND_CHOICES, ComputeBackend


#: The validator names accepted by :class:`DiscoveryConfig.validator`.
VALIDATOR_KINDS = ("exact", "optimal", "iterative")


@dataclass
class DiscoveryConfig:
    """Parameters controlling a lattice discovery run.

    Attributes
    ----------
    threshold:
        Approximation threshold ``ε`` in ``[0, 1]``.  ``0`` means exact OD
        discovery; the paper's default for AOD experiments is ``0.1`` (10%).
    validator:
        Which AOC validation algorithm to use: ``"optimal"`` (Algorithm 2),
        ``"iterative"`` (Algorithm 1) or ``"exact"`` (linear check, only
        meaningful with ``threshold == 0``).
    attributes:
        Optional subset of attributes to restrict the search to (the paper
        uses the first 10 attributes of each dataset unless stated
        otherwise).
    max_level:
        Optional cap on the lattice level (attribute-set size) explored.
    time_limit_seconds:
        Optional wall-clock budget; when exceeded the run stops early and
        the result is marked ``timed_out`` (this models the paper's 24-hour
        cut-off for the iterative algorithm).
    find_ofds:
        Whether OFD candidates are validated and reported.  The paper's
        experiments focus on OCs; OFD validation is cheap and enabled by
        default because its results drive OC pruning.
    aggressive_ofd_pruning:
        Apply TANE's right-hand-side pruning rule (remove ``R \\ X`` from the
        candidate set) when an OFD holds *exactly*.  Always sound; disabled
        automatically for approximately-held OFDs.
    prune_exhausted_nodes:
        FASTOD/TANE-style node deletion: a lattice node whose candidate sets
        are both empty is dropped, which stops any of its supersets from
        being generated.  This is what keeps the search tractable on wider
        schemas and what lets AOD discovery overtake exact OD discovery
        (Exp-5).  Setting it to ``False`` keeps every node alive and makes
        the search exhaustively complete at exponential cost — used by the
        test-suite's brute-force comparisons and useful on narrow schemas.
    progress_callback:
        Optional callable invoked as ``callback(level, nodes)`` at the start
        of every lattice level (used by the CLI for progress output).
    backend:
        Compute backend for the hot paths (encoding, partitions, validation
        kernels): a :class:`~repro.backend.base.ComputeBackend` instance, a
        name (``"python"`` / ``"numpy"`` / ``"auto"``), or ``None`` to defer
        to the ``REPRO_BACKEND`` environment variable / auto-detection.
        Every backend produces identical discovery results.
    batch_validation:
        Level-synchronous batched scheduling (the default): each level's
        surviving candidates are grouped by context and validated through
        the backend's batch kernels.  ``False`` restores the per-candidate
        loop (the reference path, kept for A/B benchmarking).  Both
        schedules produce identical discovery results.
    num_workers:
        Shard batched OC validation across this many worker processes
        (equivalence classes of a context are independent, so workers merge
        by summing removal counts).  ``1`` (the default) validates
        in-process; values above 1 require ``batch_validation`` and only
        take effect for the LNDS-based ``optimal`` validator on approximate
        runs — exact and iterative validation never consults the pool.
        Every worker count produces identical discovery results.
    """

    threshold: float = 0.0
    validator: str = "optimal"
    attributes: Optional[Sequence[str]] = None
    max_level: Optional[int] = None
    time_limit_seconds: Optional[float] = None
    find_ofds: bool = True
    aggressive_ofd_pruning: bool = True
    prune_exhausted_nodes: bool = True
    progress_callback: Optional[object] = None
    backend: Optional[object] = None
    batch_validation: bool = True
    num_workers: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(
                f"threshold must be in [0, 1], got {self.threshold}"
            )
        if self.validator not in VALIDATOR_KINDS:
            raise ValueError(
                f"validator must be one of {VALIDATOR_KINDS}, got {self.validator!r}"
            )
        if self.backend is not None and not isinstance(self.backend, ComputeBackend):
            if not isinstance(self.backend, str) or self.backend not in BACKEND_CHOICES:
                raise ValueError(
                    f"backend must be one of {BACKEND_CHOICES} or a "
                    f"ComputeBackend instance, got {self.backend!r}"
                )
        if self.validator == "exact" and self.threshold > 0:
            raise ValueError(
                "the exact validator cannot be used with a non-zero threshold"
            )
        if self.max_level is not None and self.max_level < 1:
            raise ValueError("max_level must be at least 1")
        if self.num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if self.num_workers > 1 and not self.batch_validation:
            raise ValueError(
                "num_workers > 1 requires batch_validation: the worker shards "
                "are dispatched by the level-synchronous scheduler"
            )

    @property
    def is_exact(self) -> bool:
        """``True`` when the run performs exact OD discovery (``ε = 0``)."""
        return self.threshold == 0.0

    @classmethod
    def exact(cls, **kwargs) -> "DiscoveryConfig":
        """Configuration for exact OD discovery (the paper's "OD" series)."""
        kwargs.setdefault("validator", "exact")
        return cls(threshold=0.0, **kwargs)

    @classmethod
    def approximate(cls, threshold: float = 0.1, validator: str = "optimal",
                    **kwargs) -> "DiscoveryConfig":
        """Configuration for AOD discovery (default ``ε = 10%`` as in the paper)."""
        return cls(threshold=threshold, validator=validator, **kwargs)
