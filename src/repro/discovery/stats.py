"""Instrumentation collected during a discovery run.

The paper's Exp-3 reports that with the iterative validator "up to 99.6% of
the total runtime is spent on validation", and that the LNDS-based validator
reduces time spent validating AOCs by up to 99.8%.  Reproducing those
numbers requires phase-level timers inside the discovery loop; this module
holds them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields as _dataclass_fields
from typing import Dict, List


def _stat_fields():
    return _dataclass_fields(DiscoveryStatistics)


@dataclass
class DiscoveryStatistics:
    """Counters and timers for one discovery run."""

    total_seconds: float = 0.0
    oc_validation_seconds: float = 0.0
    ofd_validation_seconds: float = 0.0
    partition_seconds: float = 0.0
    candidate_generation_seconds: float = 0.0

    oc_candidates_validated: int = 0
    ofd_candidates_validated: int = 0
    oc_candidates_pruned: int = 0
    ofd_candidates_pruned: int = 0
    nodes_processed: int = 0
    nodes_pruned: int = 0
    levels_processed: int = 0
    nodes_per_level: Dict[int, int] = field(default_factory=dict)
    #: Wall-clock seconds per processed level (validation + recording; the
    #: next level's candidate generation is accounted globally in
    #: ``candidate_generation_seconds``).  Levels aborted by cancellation
    #: or the time limit have no entry.
    level_seconds: Dict[int, float] = field(default_factory=dict)
    #: Per-level share of the phase timers: ``{level: {"oc": s, "ofd": s,
    #: "partition": s}}``, measured by differencing the run-wide phase
    #: accumulators at the level boundaries (no extra timers on hot paths).
    level_phase_seconds: Dict[int, Dict[str, float]] = field(
        default_factory=dict
    )
    timed_out: bool = False
    #: ``True`` when the run was stopped early through a cancellation token.
    cancelled: bool = False
    #: Validation outcomes served from a session's warm memo instead of a
    #: kernel call (always 0 for one-shot runs; grows across
    #: :meth:`repro.discovery.session.Profiler.sweep` thresholds).
    validation_memo_hits: int = 0
    #: Name of the compute backend that executed the run's hot paths.
    backend: str = "python"
    #: Whether the level-synchronous batched scheduler was active.
    batched: bool = True
    #: Worker processes sharding batched OC validation (1 = in-process).
    num_workers: int = 1
    #: Whether level validation was pipelined (OC groups submitted to the
    #: worker pool asynchronously, OFD validation overlapped).  Always
    #: ``False`` for in-process runs, which have nothing to overlap with.
    pipelined: bool = False
    #: Context groups dispatched through the batched OC kernel path.
    oc_batches: int = 0
    #: Context groups dispatched through the batched OFD kernel path.
    ofd_batches: int = 0
    #: Validation worker processes that died (or were retired by the
    #: per-job timeout) during this run; the pool recovered from each.
    worker_deaths: int = 0
    #: Replacement worker processes spawned during this run.
    respawns: int = 0
    #: In-flight shards re-dispatched to surviving workers after a death.
    requeued_shards: int = 0
    #: Shards validated on the coordinator as a recovery fallback
    #: (quarantined shards and shards of a degraded pool).
    inline_fallbacks: int = 0
    #: Execution-planning mode the run was configured with
    #: (``"fixed"`` or ``"auto"``, see :mod:`repro.planner`).
    plan_mode: str = "fixed"
    #: One record per planned level when ``plan_mode == "auto"``: the
    #: chosen strategy plus the cost model's predicted-vs-actual seconds
    #: (see :meth:`repro.planner.plan.ExecutionPlanner.observe_level`).
    planner_decisions: List[Dict[str, object]] = field(default_factory=list)

    # -- derived ---------------------------------------------------------------

    @property
    def validation_seconds(self) -> float:
        """Total time spent validating candidates (OC + OFD)."""
        return self.oc_validation_seconds + self.ofd_validation_seconds

    @property
    def validation_share(self) -> float:
        """Fraction of the total runtime spent in validation (Exp-3)."""
        if self.total_seconds <= 0:
            return 0.0
        return min(1.0, self.validation_seconds / self.total_seconds)

    def as_dict(self) -> Dict[str, object]:
        """Flatten to a plain dict (used by the benchmark reporters)."""
        return {
            "total_seconds": self.total_seconds,
            "oc_validation_seconds": self.oc_validation_seconds,
            "ofd_validation_seconds": self.ofd_validation_seconds,
            "partition_seconds": self.partition_seconds,
            "candidate_generation_seconds": self.candidate_generation_seconds,
            "validation_share": self.validation_share,
            "oc_candidates_validated": self.oc_candidates_validated,
            "ofd_candidates_validated": self.ofd_candidates_validated,
            "oc_candidates_pruned": self.oc_candidates_pruned,
            "ofd_candidates_pruned": self.ofd_candidates_pruned,
            "nodes_processed": self.nodes_processed,
            "nodes_pruned": self.nodes_pruned,
            "levels_processed": self.levels_processed,
            "nodes_per_level": dict(self.nodes_per_level),
            "level_seconds": dict(self.level_seconds),
            "level_phase_seconds": {
                level: dict(split)
                for level, split in self.level_phase_seconds.items()
            },
            "timed_out": self.timed_out,
            "cancelled": self.cancelled,
            "validation_memo_hits": self.validation_memo_hits,
            "backend": self.backend,
            "batched": self.batched,
            "num_workers": self.num_workers,
            "pipelined": self.pipelined,
            "oc_batches": self.oc_batches,
            "ofd_batches": self.ofd_batches,
            "worker_deaths": self.worker_deaths,
            "respawns": self.respawns,
            "requeued_shards": self.requeued_shards,
            "inline_fallbacks": self.inline_fallbacks,
            "plan_mode": self.plan_mode,
            "planner_decisions": [dict(d) for d in self.planner_decisions],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DiscoveryStatistics":
        """Rebuild statistics from :meth:`as_dict` output (the JSON service
        boundary).  Derived fields are ignored; ``nodes_per_level`` keys are
        restored to ``int`` (JSON object keys are strings)."""
        known = {f.name for f in _stat_fields()}
        kwargs = {k: v for k, v in data.items() if k in known}
        per_level = kwargs.get("nodes_per_level")
        if per_level is not None:
            kwargs["nodes_per_level"] = {
                int(level): count for level, count in per_level.items()
            }
        level_seconds = kwargs.get("level_seconds")
        if level_seconds is not None:
            kwargs["level_seconds"] = {
                int(level): seconds
                for level, seconds in level_seconds.items()
            }
        phase_seconds = kwargs.get("level_phase_seconds")
        if phase_seconds is not None:
            kwargs["level_phase_seconds"] = {
                int(level): dict(split)
                for level, split in phase_seconds.items()
            }
        return cls(**kwargs)


class PhaseTimer:
    """Context manager adding elapsed wall-clock time to a statistics field.

    Usage::

        with PhaseTimer(stats, "oc_validation_seconds"):
            validate(...)
    """

    def __init__(self, stats: DiscoveryStatistics, field_name: str) -> None:
        self._stats = stats
        self._field = field_name
        self._start = 0.0

    def __enter__(self) -> "PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        setattr(self._stats, self._field, getattr(self._stats, self._field) + elapsed)
