"""Axiom-based pruning rules (Figure 1, box 2).

The set-based framework avoids validating candidates that are either
*implied* by dependencies already found at lower lattice levels or that can
never be minimal.  The rules implemented here follow the FASTOD axioms as
used by the paper's framework:

1. **OFD minimality** — once ``X \\ {A}: [] ↦→ A`` is found valid, ``A`` is
   removed from the node's OFD candidate set, so no superset context is ever
   reported for the same right-hand side (it would not be minimal).
2. **OFD right-hand-side pruning** (exact only) — TANE's rule: when
   ``X \\ {A} -> A`` holds exactly, every attribute outside ``X`` is removed
   from the candidate set as well, because any FD it would yield at a
   superset is implied.
3. **OC minimality** — once ``X \\ {A, B}: A ~ B`` is found valid, the pair
   is removed from the node's OC candidate set, so supersets (weaker
   statements with larger contexts) are never reported.
4. **Constant-side pruning** — if ``A`` (or ``B``) is known to be constant
   in the context ``X \\ {A, B}`` (an OFD found one level below), then the
   OC ``X \\ {A, B}: A ~ B`` holds trivially and is not reported; the pair
   is pruned so that supersets skip it too.
5. **Node deletion** — a node with no remaining candidates of either kind is
   dropped, which stops the prefix join from ever generating its supersets.

Rules 1-4 are local predicates used by the engine; rule 5 lives in the
engine's level loop.
"""

from __future__ import annotations

from typing import FrozenSet, Set, Tuple

from repro.dependencies.ofd import OFD

AttributeSet = FrozenSet[str]
ValidOFDKey = Tuple[AttributeSet, str]


class KnowledgeBase:
    """Dependencies discovered so far, indexed for pruning lookups."""

    def __init__(self) -> None:
        self._valid_ofds: Set[ValidOFDKey] = set()
        self._exactly_valid_ofds: Set[ValidOFDKey] = set()
        self._constant_attributes: Set[str] = set()

    # -- recording -------------------------------------------------------------

    def record_ofd(self, ofd: OFD, holds_exactly: bool) -> None:
        """Register a valid (A)OFD for later pruning decisions."""
        key = (ofd.context, ofd.attribute)
        self._valid_ofds.add(key)
        if holds_exactly:
            self._exactly_valid_ofds.add(key)
        if not ofd.context:
            self._constant_attributes.add(ofd.attribute)

    # -- queries used by the pruning rules --------------------------------------

    def ofd_known_valid(self, context: AttributeSet, attribute: str) -> bool:
        """Is ``context: [] ↦→ attribute`` already known to hold (approximately)?"""
        return (context, attribute) in self._valid_ofds

    def ofd_known_exact(self, context: AttributeSet, attribute: str) -> bool:
        """Is ``context: [] ↦→ attribute`` already known to hold exactly?"""
        return (context, attribute) in self._exactly_valid_ofds

    def is_constant(self, attribute: str) -> bool:
        """Is the attribute constant over the whole relation (level-1 OFD)?"""
        return attribute in self._constant_attributes

    @property
    def num_valid_ofds(self) -> int:
        return len(self._valid_ofds)


def oc_pruned_by_constancy(
    context: AttributeSet, a: str, b: str, knowledge: KnowledgeBase
) -> bool:
    """Rule 4: the OC is implied when either side is constant in its context.

    If ``context: [] ↦→ A`` holds then within every equivalence class of the
    context all ``A`` values are equal, so any ordering of the class is
    trivially sorted by ``A`` — ``A ~ B`` cannot be violated.  The same holds
    symmetrically for ``B``.  (For approximately-held OFDs the implication
    is approximate as well: the same removal set works, so the OC's
    approximation factor is no larger than the OFD's and the candidate is
    still redundant at the configured threshold.)
    """
    return knowledge.ofd_known_valid(context, a) or knowledge.ofd_known_valid(
        context, b
    )


def ofd_pruned_by_subcontext(
    context: AttributeSet, attribute: str, knowledge: KnowledgeBase
) -> bool:
    """Rule 1 restated as a predicate: a strictly smaller context already
    determines the attribute, so this candidate cannot be minimal.

    The candidate-set intersection normally takes care of this; the explicit
    check guards the first level at which a context appears and keeps the
    engine robust if candidate bookkeeping is relaxed (e.g. in tests).
    """
    if knowledge.ofd_known_valid(context, attribute):
        return True
    for removed in context:
        if knowledge.ofd_known_valid(context - {removed}, attribute):
            return True
    return False
