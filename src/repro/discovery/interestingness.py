"""Interestingness scoring of discovered dependencies (Figure 1, box 4).

The paper ranks discovered AODs with the interestingness measure introduced
in the FASTOD line of work and reports (Exp-6) that its qualitative example
AOCs rank at the top.  The precise formula is not restated in this paper, so
we implement a documented surrogate with the same monotonicity properties
the paper relies on:

* dependencies with *smaller contexts* (lower lattice levels) score higher —
  Exp-5's "dependencies found in lower levels of the lattice are likely to
  be more interesting";
* dependencies whose context groups cover more tuples (larger, fewer
  equivalence classes) score higher — a dependency that only constrains a
  scattering of two-tuple groups says little about the data;
* among equals, a smaller approximation factor scores higher.

The score is in ``(0, 1]``.
"""

from __future__ import annotations

from typing import Optional, Sequence


def context_coverage(classes: Sequence[Sequence[int]], num_rows: int) -> float:
    """Fraction of tuples that live in non-singleton context classes.

    An empty context has a single class covering every tuple (coverage 1).
    """
    if num_rows == 0:
        return 0.0
    # CSR partitions expose the grouped-row total in O(1) (the flat row
    # vector's length); anything else pays the per-class sum.
    grouped = getattr(classes, "num_grouped_rows", None)
    if grouped is None:
        grouped = sum(len(class_rows) for class_rows in classes)
    return min(1.0, grouped / num_rows)


def interestingness_score(
    context_size: int,
    coverage: float,
    approximation_factor: float = 0.0,
) -> float:
    """Combine context size, coverage and approximation factor into a score.

    ``score = coverage / (1 + context_size) * (1 - approximation_factor/2)``

    The factor-of-two damping on the approximation term keeps an AOC with a
    10% approximation factor within 5% of the score of the corresponding
    exact OC, matching the paper's stance that mild approximation does not
    make a dependency less interesting (it often makes it more general).
    """
    if coverage < 0 or coverage > 1:
        raise ValueError(f"coverage must be in [0, 1], got {coverage}")
    if approximation_factor < 0 or approximation_factor > 1:
        raise ValueError(
            f"approximation factor must be in [0, 1], got {approximation_factor}"
        )
    base = coverage / (1.0 + context_size)
    return base * (1.0 - approximation_factor / 2.0)
