"""Typed events emitted by the streaming discovery engine.

:meth:`repro.discovery.engine.DiscoveryEngine.iter_events` turns the
level-wise lattice search into an event stream: one :class:`LevelStarted`
per lattice level, a :class:`DependencyFound` for every recorded dependency
of that level, a :class:`LevelCompleted` once the level's validation and
recording finished, and a final :class:`RunCompleted` carrying the complete
:class:`~repro.discovery.results.DiscoveryResult`.

A run that is cancelled or hits its time limit mid-level still streams the
dependencies recorded for the partial level (followed directly by
:class:`RunCompleted`, without a :class:`LevelCompleted` for the aborted
level), so consumers always observe exactly what the partial result
contains.

Every event serialises to a plain dict via :meth:`to_dict` (used by the
``repro serve`` NDJSON streaming endpoint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union


@dataclass(frozen=True)
class LevelStarted:
    """A lattice level is about to be validated."""

    level: int
    num_nodes: int

    def to_dict(self) -> Dict[str, object]:
        return {"event": "level_started", "level": self.level,
                "num_nodes": self.num_nodes}


@dataclass(frozen=True)
class DependencyFound:
    """A dependency was recorded as valid.

    ``kind`` is ``"oc"`` or ``"ofd"``; ``dependency`` is the corresponding
    :class:`~repro.discovery.results.DiscoveredOC` /
    :class:`~repro.discovery.results.DiscoveredOFD`.
    """

    level: int
    kind: str
    dependency: object

    def to_dict(self) -> Dict[str, object]:
        return {
            "event": "dependency_found",
            "level": self.level,
            "kind": self.kind,
            "dependency": self.dependency.to_dict(),
        }


@dataclass(frozen=True)
class LevelCompleted:
    """A lattice level finished validating (never emitted for a level the
    run was cancelled or timed out in).

    ``seconds`` is the level's wall-clock span (validation + recording);
    the ``oc_seconds`` / ``ofd_seconds`` / ``partition_seconds`` split
    mirrors the per-level breakdown kept in
    :attr:`~repro.discovery.stats.DiscoveryStatistics.level_phase_seconds`.
    """

    level: int
    num_nodes: int
    num_ocs: int
    num_ofds: int
    seconds: float = 0.0
    oc_seconds: float = 0.0
    ofd_seconds: float = 0.0
    partition_seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "event": "level_completed",
            "level": self.level,
            "num_nodes": self.num_nodes,
            "num_ocs": self.num_ocs,
            "num_ofds": self.num_ofds,
            "seconds": self.seconds,
            "oc_seconds": self.oc_seconds,
            "ofd_seconds": self.ofd_seconds,
            "partition_seconds": self.partition_seconds,
        }


@dataclass(frozen=True)
class DatasetExtended:
    """Rows were appended to the profiled dataset (incremental discovery).

    Emitted by :meth:`repro.incremental.IncrementalEngine.iter_events`
    ahead of the regular level events, summarising what the appends since
    the previous run changed and how the candidate set was classified for
    repair (see :class:`repro.incremental.RepairPlan`).
    """

    old_num_rows: int
    new_num_rows: int
    appended_rows: int
    #: Contexts whose stripped classes changed (plus dropped partitions).
    affected_contexts: int
    #: Previous dependencies whose recorded outcome provably transfers.
    still_valid: int
    #: Previous dependencies that need their kernels re-run.
    must_revalidate: int
    #: Previously rejected candidates whose rejection no longer transfers.
    newly_possible: int
    #: The session's dataset version the stream runs against (stamps the
    #: worker pool's resident columns; 0 = never extended).
    dataset_version: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "event": "dataset_extended",
            "old_num_rows": self.old_num_rows,
            "new_num_rows": self.new_num_rows,
            "appended_rows": self.appended_rows,
            "dataset_version": self.dataset_version,
            "affected_contexts": self.affected_contexts,
            "still_valid": self.still_valid,
            "must_revalidate": self.must_revalidate,
            "newly_possible": self.newly_possible,
        }


@dataclass(frozen=True)
class DependencyRevoked:
    """A dependency from the previous run is no longer valid.

    Appends can only increase removal counts, so minimal dependencies may
    fall out of the maintained result; each one is reported with the
    :class:`~repro.discovery.results.DiscoveredOC` /
    :class:`~repro.discovery.results.DiscoveredOFD` it had in the previous
    result.  Emitted just before the final :class:`RunCompleted` of an
    incremental stream (never for cancelled or timed-out runs, whose
    partial results say nothing about revocation).
    """

    kind: str
    dependency: object

    def to_dict(self) -> Dict[str, object]:
        return {
            "event": "dependency_revoked",
            "kind": self.kind,
            "dependency": self.dependency.to_dict(),
        }


@dataclass(frozen=True)
class RunCompleted:
    """The run finished (normally, cancelled, or timed out); always the
    final event of a stream.  Carries the complete
    :class:`~repro.discovery.results.DiscoveryResult`."""

    result: object

    def to_dict(self) -> Dict[str, object]:
        return {"event": "run_completed", "result": self.result.to_dict()}


#: Union of every event type yielded by ``iter_events`` (incremental
#: streams additionally interleave the dataset/revocation events).
DiscoveryEvent = Union[LevelStarted, DependencyFound, LevelCompleted,
                       DatasetExtended, DependencyRevoked, RunCompleted]
