"""Discovery result containers.

Discovered dependencies carry, besides the dependency statement itself, the
measured approximation factor, the lattice level they were found at and
their interestingness score — everything the paper's Exp-4/5/6 report on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dependencies.oc import CanonicalOC
from repro.dependencies.ofd import OFD
from repro.discovery.config import DiscoveryConfig, DiscoveryRequest
from repro.discovery.stats import DiscoveryStatistics


@dataclass(frozen=True)
class DiscoveredOC:
    """A canonical OC found valid by a discovery run."""

    oc: CanonicalOC
    approximation_factor: float
    removal_size: int
    level: int
    interestingness: float = 0.0

    @property
    def is_exact(self) -> bool:
        """``True`` when the OC holds with no exceptions."""
        return self.removal_size == 0

    def __str__(self) -> str:
        kind = "OC" if self.is_exact else f"AOC(e={self.approximation_factor:.3f})"
        return f"{kind} level={self.level} {self.oc!r}"

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for the JSON service boundary."""
        return {
            "context": sorted(self.oc.context),
            "a": self.oc.a,
            "b": self.oc.b,
            "approximation_factor": self.approximation_factor,
            "removal_size": self.removal_size,
            "level": self.level,
            "interestingness": self.interestingness,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DiscoveredOC":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            oc=CanonicalOC(data["context"], data["a"], data["b"]),
            approximation_factor=data["approximation_factor"],
            removal_size=data["removal_size"],
            level=data["level"],
            interestingness=data.get("interestingness", 0.0),
        )


@dataclass(frozen=True)
class DiscoveredOFD:
    """An OFD found valid by a discovery run."""

    ofd: OFD
    approximation_factor: float
    removal_size: int
    level: int
    interestingness: float = 0.0

    @property
    def is_exact(self) -> bool:
        """``True`` when the OFD holds with no exceptions."""
        return self.removal_size == 0

    def __str__(self) -> str:
        kind = "OFD" if self.is_exact else f"AOFD(e={self.approximation_factor:.3f})"
        return f"{kind} level={self.level} {self.ofd!r}"

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for the JSON service boundary."""
        return {
            "context": sorted(self.ofd.context),
            "attribute": self.ofd.attribute,
            "approximation_factor": self.approximation_factor,
            "removal_size": self.removal_size,
            "level": self.level,
            "interestingness": self.interestingness,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DiscoveredOFD":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            ofd=OFD(data["context"], data["attribute"]),
            approximation_factor=data["approximation_factor"],
            removal_size=data["removal_size"],
            level=data["level"],
            interestingness=data.get("interestingness", 0.0),
        )


@dataclass
class DiscoveryResult:
    """The complete outcome of one discovery run."""

    config: DiscoveryConfig
    num_rows: int
    attributes: List[str]
    ocs: List[DiscoveredOC] = field(default_factory=list)
    ofds: List[DiscoveredOFD] = field(default_factory=list)
    stats: DiscoveryStatistics = field(default_factory=DiscoveryStatistics)

    # -- simple counts ----------------------------------------------------------

    @property
    def num_ocs(self) -> int:
        """Number of valid (A)OCs discovered."""
        return len(self.ocs)

    @property
    def num_ofds(self) -> int:
        """Number of valid (A)OFDs discovered."""
        return len(self.ofds)

    @property
    def num_dependencies(self) -> int:
        """Total number of dependencies discovered."""
        return self.num_ocs + self.num_ofds

    @property
    def timed_out(self) -> bool:
        """``True`` when the run was cut off by the configured time limit."""
        return self.stats.timed_out

    @property
    def cancelled(self) -> bool:
        """``True`` when the run was stopped early via a cancellation token."""
        return self.stats.cancelled

    @property
    def completed_levels(self) -> int:
        """Number of lattice levels that finished validating completely.

        For a run that timed out or was cancelled, the last started level
        may hold only a partial set of discoveries; dependencies at levels
        up to this value are byte-identical to an uninterrupted run.
        """
        if self.stats.timed_out or self.stats.cancelled:
            return max(0, self.stats.levels_processed - 1)
        return self.stats.levels_processed

    # -- level analytics (Exp-5) ------------------------------------------------

    def ocs_per_level(self) -> Dict[int, int]:
        """Histogram of discovered OCs by lattice level (Figure 5)."""
        histogram: Dict[int, int] = {}
        for found in self.ocs:
            histogram[found.level] = histogram.get(found.level, 0) + 1
        return dict(sorted(histogram.items()))

    def ofds_per_level(self) -> Dict[int, int]:
        """Histogram of discovered OFDs by lattice level."""
        histogram: Dict[int, int] = {}
        for found in self.ofds:
            histogram[found.level] = histogram.get(found.level, 0) + 1
        return dict(sorted(histogram.items()))

    def average_oc_level(self) -> Optional[float]:
        """Mean lattice level of the discovered OCs (Exp-5 reports the drop
        of this value when moving from exact OCs to AOCs)."""
        if not self.ocs:
            return None
        return sum(found.level for found in self.ocs) / len(self.ocs)

    # -- ranking (Figure 1, box 4) ----------------------------------------------

    def ranked_ocs(self, top_k: Optional[int] = None) -> List[DiscoveredOC]:
        """OCs sorted by decreasing interestingness score."""
        ranked = sorted(self.ocs, key=lambda f: (-f.interestingness, f.level))
        return ranked if top_k is None else ranked[:top_k]

    def ranked_ofds(self, top_k: Optional[int] = None) -> List[DiscoveredOFD]:
        """OFDs sorted by decreasing interestingness score."""
        ranked = sorted(self.ofds, key=lambda f: (-f.interestingness, f.level))
        return ranked if top_k is None else ranked[:top_k]

    # -- lookups ----------------------------------------------------------------

    def find_oc(self, a: str, b: str, context=()) -> Optional[DiscoveredOC]:
        """Find a discovered OC by its statement (symmetric in ``a``/``b``)."""
        wanted = CanonicalOC(context, a, b)
        for found in self.ocs:
            if found.oc == wanted:
                return found
        return None

    def find_ofd(self, attribute: str, context=()) -> Optional[DiscoveredOFD]:
        """Find a discovered OFD by its statement."""
        wanted = OFD(context, attribute)
        for found in self.ofds:
            if found.ofd == wanted:
                return found
        return None

    def oc_statements(self) -> List[CanonicalOC]:
        """The bare OC statements (used for set comparisons across runs)."""
        return [found.oc for found in self.ocs]

    # -- JSON service boundary ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form of the complete result (JSON-compatible).

        The engine configuration is projected onto its serialisable
        :class:`~repro.discovery.config.DiscoveryRequest` subset; the
        backend that produced the run travels in ``stats.backend``.
        """
        return {
            "request": DiscoveryRequest.from_config(self.config).to_dict(),
            "num_rows": self.num_rows,
            "attributes": list(self.attributes),
            "ocs": [found.to_dict() for found in self.ocs],
            "ofds": [found.to_dict() for found in self.ofds],
            "stats": self.stats.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DiscoveryResult":
        """Rebuild a result from :meth:`to_dict` output.

        The reconstructed ``config`` carries the original request parameters
        and the recorded backend *name*; live objects (backend instances,
        callbacks) do not cross the boundary.
        """
        stats = DiscoveryStatistics.from_dict(data.get("stats", {}))
        request = DiscoveryRequest.from_dict(data["request"])
        backend = stats.backend if stats.backend else None
        config = request.to_config(backend=backend,
                                   num_workers=stats.num_workers)
        return cls(
            config=config,
            num_rows=data["num_rows"],
            attributes=list(data["attributes"]),
            ocs=[DiscoveredOC.from_dict(d) for d in data.get("ocs", [])],
            ofds=[DiscoveredOFD.from_dict(d) for d in data.get("ofds", [])],
            stats=stats,
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise the complete result to JSON."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, payload: str) -> "DiscoveryResult":
        """Parse a result from :meth:`to_json` output."""
        data = json.loads(payload)
        if not isinstance(data, dict):
            raise ValueError(
                f"DiscoveryResult JSON must be an object, got {type(data).__name__}"
            )
        return cls.from_dict(data)

    def summary(self) -> str:
        """One-paragraph human-readable summary (used by the CLI and examples)."""
        mode = "exact" if self.config.is_exact else (
            f"approximate (ε={self.config.threshold:.0%}, {self.config.validator})"
        )
        lines = [
            f"Discovery mode: {mode} [{self.stats.backend} backend]",
            f"Relation: {self.num_rows} rows, {len(self.attributes)} attributes",
            f"Discovered: {self.num_ocs} OCs, {self.num_ofds} OFDs "
            f"in {self.stats.total_seconds:.3f}s"
            + (" (timed out)" if self.timed_out else "")
            + (" (cancelled)" if self.cancelled else ""),
            f"Validation share of runtime: {self.stats.validation_share:.1%}",
            f"OCs per level: {self.ocs_per_level()}",
        ]
        return "\n".join(lines)
