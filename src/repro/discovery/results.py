"""Discovery result containers.

Discovered dependencies carry, besides the dependency statement itself, the
measured approximation factor, the lattice level they were found at and
their interestingness score — everything the paper's Exp-4/5/6 report on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dependencies.oc import CanonicalOC
from repro.dependencies.ofd import OFD
from repro.discovery.config import DiscoveryConfig
from repro.discovery.stats import DiscoveryStatistics


@dataclass(frozen=True)
class DiscoveredOC:
    """A canonical OC found valid by a discovery run."""

    oc: CanonicalOC
    approximation_factor: float
    removal_size: int
    level: int
    interestingness: float = 0.0

    @property
    def is_exact(self) -> bool:
        """``True`` when the OC holds with no exceptions."""
        return self.removal_size == 0

    def __str__(self) -> str:
        kind = "OC" if self.is_exact else f"AOC(e={self.approximation_factor:.3f})"
        return f"{kind} level={self.level} {self.oc!r}"


@dataclass(frozen=True)
class DiscoveredOFD:
    """An OFD found valid by a discovery run."""

    ofd: OFD
    approximation_factor: float
    removal_size: int
    level: int
    interestingness: float = 0.0

    @property
    def is_exact(self) -> bool:
        """``True`` when the OFD holds with no exceptions."""
        return self.removal_size == 0

    def __str__(self) -> str:
        kind = "OFD" if self.is_exact else f"AOFD(e={self.approximation_factor:.3f})"
        return f"{kind} level={self.level} {self.ofd!r}"


@dataclass
class DiscoveryResult:
    """The complete outcome of one discovery run."""

    config: DiscoveryConfig
    num_rows: int
    attributes: List[str]
    ocs: List[DiscoveredOC] = field(default_factory=list)
    ofds: List[DiscoveredOFD] = field(default_factory=list)
    stats: DiscoveryStatistics = field(default_factory=DiscoveryStatistics)

    # -- simple counts ----------------------------------------------------------

    @property
    def num_ocs(self) -> int:
        """Number of valid (A)OCs discovered."""
        return len(self.ocs)

    @property
    def num_ofds(self) -> int:
        """Number of valid (A)OFDs discovered."""
        return len(self.ofds)

    @property
    def num_dependencies(self) -> int:
        """Total number of dependencies discovered."""
        return self.num_ocs + self.num_ofds

    @property
    def timed_out(self) -> bool:
        """``True`` when the run was cut off by the configured time limit."""
        return self.stats.timed_out

    # -- level analytics (Exp-5) ------------------------------------------------

    def ocs_per_level(self) -> Dict[int, int]:
        """Histogram of discovered OCs by lattice level (Figure 5)."""
        histogram: Dict[int, int] = {}
        for found in self.ocs:
            histogram[found.level] = histogram.get(found.level, 0) + 1
        return dict(sorted(histogram.items()))

    def ofds_per_level(self) -> Dict[int, int]:
        """Histogram of discovered OFDs by lattice level."""
        histogram: Dict[int, int] = {}
        for found in self.ofds:
            histogram[found.level] = histogram.get(found.level, 0) + 1
        return dict(sorted(histogram.items()))

    def average_oc_level(self) -> Optional[float]:
        """Mean lattice level of the discovered OCs (Exp-5 reports the drop
        of this value when moving from exact OCs to AOCs)."""
        if not self.ocs:
            return None
        return sum(found.level for found in self.ocs) / len(self.ocs)

    # -- ranking (Figure 1, box 4) ----------------------------------------------

    def ranked_ocs(self, top_k: Optional[int] = None) -> List[DiscoveredOC]:
        """OCs sorted by decreasing interestingness score."""
        ranked = sorted(self.ocs, key=lambda f: (-f.interestingness, f.level))
        return ranked if top_k is None else ranked[:top_k]

    def ranked_ofds(self, top_k: Optional[int] = None) -> List[DiscoveredOFD]:
        """OFDs sorted by decreasing interestingness score."""
        ranked = sorted(self.ofds, key=lambda f: (-f.interestingness, f.level))
        return ranked if top_k is None else ranked[:top_k]

    # -- lookups ----------------------------------------------------------------

    def find_oc(self, a: str, b: str, context=()) -> Optional[DiscoveredOC]:
        """Find a discovered OC by its statement (symmetric in ``a``/``b``)."""
        wanted = CanonicalOC(context, a, b)
        for found in self.ocs:
            if found.oc == wanted:
                return found
        return None

    def find_ofd(self, attribute: str, context=()) -> Optional[DiscoveredOFD]:
        """Find a discovered OFD by its statement."""
        wanted = OFD(context, attribute)
        for found in self.ofds:
            if found.ofd == wanted:
                return found
        return None

    def oc_statements(self) -> List[CanonicalOC]:
        """The bare OC statements (used for set comparisons across runs)."""
        return [found.oc for found in self.ocs]

    def summary(self) -> str:
        """One-paragraph human-readable summary (used by the CLI and examples)."""
        mode = "exact" if self.config.is_exact else (
            f"approximate (ε={self.config.threshold:.0%}, {self.config.validator})"
        )
        lines = [
            f"Discovery mode: {mode} [{self.stats.backend} backend]",
            f"Relation: {self.num_rows} rows, {len(self.attributes)} attributes",
            f"Discovered: {self.num_ocs} OCs, {self.num_ofds} OFDs "
            f"in {self.stats.total_seconds:.3f}s"
            + (" (timed out)" if self.timed_out else ""),
            f"Validation share of runtime: {self.stats.validation_share:.1%}",
            f"OCs per level: {self.ocs_per_level()}",
        ]
        return "\n".join(lines)
