"""Set-based lattice discovery framework for ODs and AODs (Figure 1).

The framework traverses the lattice of attribute sets level by level
(Section 3.1).  While processing an attribute set ``X`` it validates

* OFD candidates ``X \\ {A}: [] ↦→ A`` for every ``A ∈ X``, and
* OC candidates ``X \\ {A, B}: A ~ B`` for every pair ``A ≠ B`` in ``X``,

pruning candidates with the set-based axioms so that only *minimal*
dependencies are reported, and generating the next level only from nodes
that can still produce candidates.  The AOC validation step is pluggable:
``"optimal"`` selects the paper's LNDS-based Algorithm 2, ``"iterative"``
the greedy baseline, and ``"exact"`` the linear exact check used for
ordinary OD discovery (the ``ε = 0`` special case).

Public entry points:

* :class:`Profiler` — a long-lived session owning the encoded relation,
  partition cache and worker pool; runs many discoveries
  (:meth:`~Profiler.discover`, :meth:`~Profiler.sweep`,
  :meth:`~Profiler.iter_events`) against warm state,
* :class:`DiscoveryRequest` — the JSON-serialisable description of one run
  (the request half of the service boundary; results serialise via
  :meth:`DiscoveryResult.to_json`),
* :func:`discover_ods` / :func:`discover_aods` — one-shot wrappers over a
  single-run session,
* :class:`DiscoveryConfig` / :class:`DiscoveryResult` for fine control and
  rich results (per-level counts, rankings, phase timings),
* the :mod:`repro.discovery.events` stream types
  (:class:`LevelStarted`, :class:`DependencyFound`,
  :class:`LevelCompleted`, :class:`RunCompleted`) yielded by
  ``iter_events`` with mid-level cancellation
  (:class:`CancellationToken`) and time-limit support.
"""

from repro.discovery.config import DiscoveryConfig, DiscoveryRequest
from repro.discovery.results import (
    DiscoveredOC,
    DiscoveredOFD,
    DiscoveryResult,
)
from repro.discovery.stats import DiscoveryStatistics
from repro.discovery.events import (
    DatasetExtended,
    DependencyFound,
    DependencyRevoked,
    DiscoveryEvent,
    LevelCompleted,
    LevelStarted,
    RunCompleted,
)
from repro.discovery.engine import DiscoveryEngine
from repro.discovery.session import CancellationToken, Profiler
from repro.discovery.api import discover_aods, discover_ods
from repro.discovery.interestingness import interestingness_score
from repro.discovery.sampling import prefilter_candidates, validate_aoc_hybrid

__all__ = [
    "CancellationToken",
    "DatasetExtended",
    "DependencyFound",
    "DependencyRevoked",
    "DiscoveredOC",
    "DiscoveredOFD",
    "DiscoveryConfig",
    "DiscoveryEngine",
    "DiscoveryEvent",
    "DiscoveryRequest",
    "DiscoveryResult",
    "DiscoveryStatistics",
    "LevelCompleted",
    "LevelStarted",
    "Profiler",
    "RunCompleted",
    "discover_aods",
    "discover_ods",
    "interestingness_score",
    "prefilter_candidates",
    "validate_aoc_hybrid",
]
