"""Set-based lattice discovery framework for ODs and AODs (Figure 1).

The framework traverses the lattice of attribute sets level by level
(Section 3.1).  While processing an attribute set ``X`` it validates

* OFD candidates ``X \\ {A}: [] ↦→ A`` for every ``A ∈ X``, and
* OC candidates ``X \\ {A, B}: A ~ B`` for every pair ``A ≠ B`` in ``X``,

pruning candidates with the set-based axioms so that only *minimal*
dependencies are reported, and generating the next level only from nodes
that can still produce candidates.  The AOC validation step is pluggable:
``"optimal"`` selects the paper's LNDS-based Algorithm 2, ``"iterative"``
the greedy baseline, and ``"exact"`` the linear exact check used for
ordinary OD discovery (the ``ε = 0`` special case).

Public entry points:

* :func:`discover_ods` — exact OD discovery (FASTOD-style),
* :func:`discover_aods` — approximate OD discovery with a threshold,
* :class:`DiscoveryConfig` / :class:`DiscoveryResult` for fine control and
  rich results (per-level counts, rankings, phase timings).
"""

from repro.discovery.config import DiscoveryConfig
from repro.discovery.results import (
    DiscoveredOC,
    DiscoveredOFD,
    DiscoveryResult,
)
from repro.discovery.stats import DiscoveryStatistics
from repro.discovery.engine import DiscoveryEngine
from repro.discovery.api import discover_aods, discover_ods
from repro.discovery.interestingness import interestingness_score
from repro.discovery.sampling import prefilter_candidates, validate_aoc_hybrid

__all__ = [
    "DiscoveredOC",
    "DiscoveredOFD",
    "DiscoveryConfig",
    "DiscoveryEngine",
    "DiscoveryResult",
    "DiscoveryStatistics",
    "discover_aods",
    "discover_ods",
    "interestingness_score",
    "prefilter_candidates",
    "validate_aoc_hybrid",
]
