"""The set-based attribute lattice traversed by the discovery framework.

Nodes are attribute sets; level ``l`` holds the sets of size ``l``.  Each
node carries two candidate sets in the spirit of TANE / FASTOD:

* ``ofd_candidates`` — attributes ``A`` for which ``X \\ {A}: [] ↦→ A`` may
  still be a *minimal* valid OFD (TANE's ``C+`` set), and
* ``oc_candidates`` — unordered attribute pairs ``{A, B} ⊆ X`` for which
  ``X \\ {A, B}: A ~ B`` may still be a minimal valid OC.

Candidate sets shrink as dependencies are found (minimality pruning) and as
axioms fire; a node whose candidate sets are both empty is removed, which
prevents any of its supersets from ever being generated — this is the
pruning that lets AOD discovery outrun exact OD discovery in Exp-5.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

AttributeSet = FrozenSet[str]
AttributePair = FrozenSet[str]


class LatticeNode:
    """State attached to one attribute set during the level-wise search."""

    __slots__ = ("attributes", "ofd_candidates", "oc_candidates")

    def __init__(
        self,
        attributes: Iterable[str],
        ofd_candidates: Optional[Set[str]] = None,
        oc_candidates: Optional[Set[AttributePair]] = None,
    ) -> None:
        self.attributes: AttributeSet = frozenset(attributes)
        self.ofd_candidates: Set[str] = set(ofd_candidates or ())
        self.oc_candidates: Set[AttributePair] = set(oc_candidates or ())

    @property
    def level(self) -> int:
        """Lattice level — the size of the attribute set."""
        return len(self.attributes)

    @property
    def is_exhausted(self) -> bool:
        """``True`` when no candidate can ever be produced through this node."""
        return not self.ofd_candidates and not self.oc_candidates

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatticeNode({sorted(self.attributes)}, "
            f"ofd_cands={sorted(self.ofd_candidates)}, "
            f"oc_cands={[sorted(p) for p in self.oc_candidates]})"
        )


def initial_level(attributes: Sequence[str]) -> Dict[AttributeSet, LatticeNode]:
    """Level-1 nodes: one singleton set per attribute.

    Every attribute starts as an OFD candidate of every node (TANE's
    ``C+(∅) = R`` convention, intersected down as levels grow); singleton
    nodes have no OC candidates because an OC needs two attributes.
    """
    nodes: Dict[AttributeSet, LatticeNode] = {}
    for attribute in attributes:
        key = frozenset({attribute})
        nodes[key] = LatticeNode(key, ofd_candidates=set(attributes))
    return nodes


def candidate_ofd_rhs(
    node_attributes: AttributeSet,
    previous_level: Dict[AttributeSet, LatticeNode],
    all_attributes: Sequence[str],
) -> Set[str]:
    """Compute ``C_s(X) = ∩_{B ∈ X} C_s(X \\ {B})`` (TANE candidate rule).

    A missing predecessor (pruned at the previous level) contributes the
    empty set, i.e. kills all candidates — consistent with node deletion
    semantics.
    """
    result: Optional[Set[str]] = None
    for attribute in node_attributes:
        predecessor = previous_level.get(node_attributes - {attribute})
        candidates = predecessor.ofd_candidates if predecessor is not None else set()
        result = set(candidates) if result is None else (result & candidates)
        if not result:
            return set()
    if result is None:  # level-1 node: no predecessors inside the loop
        return set(all_attributes)
    return result


def candidate_oc_pairs(
    node_attributes: AttributeSet,
    previous_level: Dict[AttributeSet, LatticeNode],
) -> Set[AttributePair]:
    """Compute the OC pair candidates of a node.

    A pair ``{A, B} ⊆ X`` is a candidate at ``X`` iff it is a candidate (or
    newly formed) at every predecessor ``X \\ {C}`` with ``C ∉ {A, B}``.
    At level 2 the condition is vacuous, so every pair of the node is a
    candidate; at higher levels a pair survives only if no smaller context
    already validated it (minimality) or pruned it (axioms).
    """
    level = len(node_attributes)
    pairs: Set[AttributePair] = set()
    for a, b in combinations(sorted(node_attributes), 2):
        pair = frozenset({a, b})
        if level == 2:
            pairs.add(pair)
            continue
        keep = True
        for c in node_attributes - pair:
            predecessor = previous_level.get(node_attributes - {c})
            if predecessor is None or pair not in predecessor.oc_candidates:
                keep = False
                break
        if keep:
            pairs.add(pair)
    return pairs


def generate_next_level_sets(
    current_level: Dict[AttributeSet, LatticeNode]
) -> List[AttributeSet]:
    """Generate the attribute sets of the next level (TANE prefix join).

    Two sets of size ``l`` sharing their first ``l - 1`` attributes (in
    sorted order) join into a set of size ``l + 1``; the join is kept only
    if *all* of its ``l``-subsets are present (i.e. were not pruned) in the
    current level.
    """
    sorted_tuples = sorted(tuple(sorted(attrs)) for attrs in current_level)
    by_prefix: Dict[Tuple[str, ...], List[Tuple[str, ...]]] = {}
    for attrs in sorted_tuples:
        by_prefix.setdefault(attrs[:-1], []).append(attrs)

    next_sets: List[AttributeSet] = []
    for prefix_group in by_prefix.values():
        for first, second in combinations(prefix_group, 2):
            joined = frozenset(first) | frozenset(second)
            if all(
                joined - {attribute} in current_level for attribute in joined
            ):
                next_sets.append(joined)
    return sorted(set(next_sets), key=lambda s: tuple(sorted(s)))
