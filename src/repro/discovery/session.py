"""Session-oriented profiling API: the long-lived :class:`Profiler`.

The one-shot entry points (:func:`repro.discovery.api.discover_aods` and
friends) pay the full setup cost on every call: the relation is encoded,
the partition cache rebuilt, and the worker pool re-spawned.  The paper's
core evaluation loop — discovery over the *same* table at many ε values
(Exp-4/5/6 threshold sweeps) — repeats exactly that setup per threshold.

A :class:`Profiler` owns the expensive state once and runs many discoveries
against it:

* the **encoded relation** (order-preserving dictionary encoding),
* a **partition cache** shared across runs and never evicted mid-session,
* the **worker pool** (:class:`~repro.validation.distributed.ShardedValidationPool`),
  spawned lazily and reused until :meth:`Profiler.close`,
* a **validation memo** mapping candidates to their kernel outcomes, so a
  sweep revalidates only what a new removal budget actually changes
  (soundness rules in ``DiscoveryEngine._memo_lookup``; memoised runs stay
  byte-identical).

Usage::

    with Profiler(relation, backend="numpy", num_workers=4) as profiler:
        result = profiler.discover(DiscoveryRequest(threshold=0.1))
        series = profiler.sweep([0.05, 0.10, 0.15])
        for event in profiler.iter_events(DiscoveryRequest(threshold=0.2)):
            ...  # LevelStarted / DependencyFound / LevelCompleted / RunCompleted

Requests are plain :class:`~repro.discovery.config.DiscoveryRequest` values
(JSON-serialisable); live concerns — backend, workers, progress callbacks,
cancellation — belong to the session and the call site.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import Dict, Iterable, Iterator, List, Optional

from repro.backend import resolve_backend
from repro.dataset.partition import PartitionCache
from repro.dataset.relation import Relation
from repro.discovery.config import DiscoveryRequest
from repro.discovery.engine import DiscoveryEngine, config_uses_shard_pool
from repro.discovery.events import DiscoveryEvent
from repro.discovery.results import DiscoveryResult


class CancellationToken:
    """Thread-safe cooperative cancellation for a running discovery.

    Hand one to :meth:`Profiler.discover` / :meth:`Profiler.iter_events`
    (or ``DiscoveryEngine.run``) and call :meth:`cancel` — from a callback,
    another thread, or a signal handler — to stop the run at the next
    node / context-group boundary.  The interrupted run returns a
    well-formed partial :class:`~repro.discovery.results.DiscoveryResult`
    with ``result.cancelled`` set.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent)."""
        self._event.set()

    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._event.is_set()


class Profiler:
    """A reusable discovery session over one relation.

    Parameters
    ----------
    relation:
        The table to profile.  Encoded once, at construction.
    backend:
        Compute backend for every run of this session (instance, name, or
        ``None`` for the environment default).
    num_workers:
        Default worker-process count for runs whose request does not pin
        its own (``DiscoveryRequest.num_workers is None``).  The pool is
        spawned lazily on the first run that needs it and reused until
        :meth:`close`.
    cache_validations:
        Keep a cross-run memo of validation outcomes (default on).  Cold
        runs behave identically to the one-shot API; repeated runs and
        :meth:`sweep` skip every kernel call whose outcome is still sound
        for the new threshold.  Disable to measure raw engine time.
    retain_partitions:
        Keep one partition cache alive across runs (default on — it is the
        session's main warm asset).  When disabled each run owns its own
        cache and evicts it level by level, bounding peak memory exactly
        like the pre-session engine; the one-shot ``discover_*`` wrappers
        use this, since their session never runs twice.
    shard_pool:
        An externally-owned
        :class:`~repro.validation.distributed.ShardedValidationPool` to
        run on instead of spawning one.  The session never closes an
        external pool; hosts serving many datasets share a single pool
        across their sessions this way.  Must match ``num_workers``.
    """

    def __init__(
        self,
        relation: Relation,
        *,
        backend=None,
        num_workers: int = 1,
        cache_validations: bool = True,
        retain_partitions: bool = True,
        shard_pool=None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if shard_pool is not None and shard_pool.num_workers != num_workers:
            raise ValueError(
                f"external pool has {shard_pool.num_workers} workers, "
                f"session wants {num_workers}"
            )
        self.relation = relation
        self.backend = resolve_backend(backend)
        self.num_workers = num_workers
        self.encoded = relation.encoded(self.backend)
        self.partitions = (
            PartitionCache(self.encoded, backend=self.backend)
            if retain_partitions else None
        )
        self._memo: Optional[dict] = {} if cache_validations else None
        self._pool = shard_pool
        self._owns_pool = shard_pool is None
        self._closed = False

    # -- discovery ---------------------------------------------------------------

    def discover(
        self,
        request: Optional[DiscoveryRequest] = None,
        *,
        progress_callback=None,
        cancellation=None,
        **overrides,
    ) -> DiscoveryResult:
        """Run one discovery against the session's warm state.

        ``request`` defaults to ``DiscoveryRequest()``; keyword overrides
        build or amend it (``profiler.discover(threshold=0.1)`` is
        shorthand for ``profiler.discover(DiscoveryRequest(threshold=0.1))``).
        """
        engine = self._engine(request, overrides, progress_callback)
        return engine.run(cancellation)

    def iter_events(
        self,
        request: Optional[DiscoveryRequest] = None,
        *,
        progress_callback=None,
        cancellation=None,
        **overrides,
    ) -> Iterator[DiscoveryEvent]:
        """Stream one discovery as level events (see
        :mod:`repro.discovery.events`); the final
        :class:`~repro.discovery.events.RunCompleted` carries the result."""
        engine = self._engine(request, overrides, progress_callback)
        return engine.iter_events(cancellation)

    def sweep(
        self,
        thresholds: Iterable[float],
        *,
        request: Optional[DiscoveryRequest] = None,
        progress_callback=None,
        cancellation=None,
        **overrides,
    ) -> List[Optional[DiscoveryResult]]:
        """Discover at every threshold, reusing warm state across runs.

        Returns one :class:`~repro.discovery.results.DiscoveryResult` per
        threshold, in the order given.  Internally the thresholds execute
        largest-first: a removal count computed under a large budget is
        reusable for every smaller budget (and "over budget" verdicts
        transfer downward), so the descending order maximises validation
        memo reuse.  Results are identical for any execution order.

        When ``cancellation`` fires, the sweep stops after the run it
        interrupted (that run's result carries ``result.cancelled``);
        thresholds it never reached get ``None`` in the returned list, so
        positions always correspond to the input thresholds —
        ``zip(thresholds, results)`` stays correct for partial sweeps.  An
        uninterrupted sweep never contains ``None``.
        """
        thresholds = list(thresholds)
        base = request if request is not None else DiscoveryRequest()
        if overrides:
            base = replace(base, **overrides)
        results: List[Optional[DiscoveryResult]] = [None] * len(thresholds)
        order = sorted(range(len(thresholds)), key=lambda i: -thresholds[i])
        for i in order:
            results[i] = self.discover(
                replace(base, threshold=thresholds[i]),
                progress_callback=progress_callback,
                cancellation=cancellation,
            )
            if cancellation is not None and cancellation.cancelled():
                break
        return results

    # -- introspection -----------------------------------------------------------

    def cache_info(self) -> Dict[str, object]:
        """Warm-state statistics: partition cache hits/misses/entries and
        the number of memoised validation outcomes."""
        info: Dict[str, object] = (
            dict(self.partitions.stats) if self.partitions is not None
            else {"hits": 0, "misses": 0, "entries": 0}
        )
        info["validation_memo_entries"] = (
            len(self._memo) if self._memo is not None else 0
        )
        info["backend"] = self.backend.name
        return info

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut down the session-owned worker pool and mark the session
        closed (idempotent).  Guaranteed to leave no worker processes
        behind, no matter how the session's runs ended (exceptions,
        cancellations, time limits); an externally-supplied pool is left
        to its owner."""
        if self._pool is not None and self._owns_pool:
            self._pool.close()
        self._pool = None
        self._closed = True

    def __enter__(self) -> "Profiler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- internals ---------------------------------------------------------------

    def _engine(self, request, overrides, progress_callback) -> DiscoveryEngine:
        if self._closed:
            raise RuntimeError("Profiler is closed")
        if request is None:
            request = DiscoveryRequest(**overrides)
        elif overrides:
            request = replace(request, **overrides)
        config = request.to_config(
            backend=self.backend,
            num_workers=self.num_workers,
            progress_callback=progress_callback,
        )
        pool = None
        if config_uses_shard_pool(config):
            if config.num_workers == self.num_workers:
                pool = self._ensure_pool()
            # else: the request pinned a different worker count — the
            # engine spawns (and closes) a pool of its own for this one
            # run rather than thrashing the session's warm pool.
        return DiscoveryEngine(
            self.relation,
            config,
            partitions=self.partitions,
            shard_pool=pool,
            validation_memo=self._memo,
        )

    def _ensure_pool(self):
        from repro.validation.distributed import ShardedValidationPool

        if self._pool is None:
            self._pool = ShardedValidationPool(
                self.num_workers, backend=self.backend
            )
            self._owns_pool = True
        return self._pool
