"""Session-oriented profiling API: the long-lived :class:`Profiler`.

The one-shot entry points (:func:`repro.discovery.api.discover_aods` and
friends) pay the full setup cost on every call: the relation is encoded,
the partition cache rebuilt, and the worker pool re-spawned.  The paper's
core evaluation loop — discovery over the *same* table at many ε values
(Exp-4/5/6 threshold sweeps) — repeats exactly that setup per threshold.

A :class:`Profiler` owns the expensive state once and runs many discoveries
against it:

* the **encoded relation** (order-preserving dictionary encoding),
* a **partition cache** shared across runs and never evicted mid-session,
* the **worker pool** (:class:`~repro.validation.distributed.ShardedValidationPool`),
  spawned lazily and reused until :meth:`Profiler.close`, together with its
  **column plane**: rank columns ship to each worker process once per
  dataset version and stay resident there, so repeated runs (and the
  pipelined scheduler's async group dispatches) send only column
  references; :meth:`Profiler.extend` advances the resident columns by
  shipping only the appended-row deltas,
* a **validation memo** mapping candidates to their kernel outcomes, so a
  sweep revalidates only what a new removal budget actually changes
  (soundness rules in ``DiscoveryEngine._memo_lookup``; memoised runs stay
  byte-identical).

Usage::

    with Profiler(relation, backend="numpy", num_workers=4) as profiler:
        result = profiler.discover(DiscoveryRequest(threshold=0.1))
        series = profiler.sweep([0.05, 0.10, 0.15])
        for event in profiler.iter_events(DiscoveryRequest(threshold=0.2)):
            ...  # LevelStarted / DependencyFound / LevelCompleted / RunCompleted
        profiler.extend(new_rows)              # evolving data: delta-encode,
        profiler.discover_incremental(threshold=0.1)  # patch, repair, rerun

Requests are plain :class:`~repro.discovery.config.DiscoveryRequest` values
(JSON-serialisable); live concerns — backend, workers, progress callbacks,
cancellation — belong to the session and the call site.

Sessions also survive their dataset *growing*: :meth:`Profiler.extend`
appends rows while keeping every warm asset consistent (delta encoding,
per-context partition patching, per-class memo repair — see
:mod:`repro.incremental`), and :meth:`Profiler.discover_incremental`
re-establishes a request's dependency set revalidating only what the
appends could have changed, byte-identical to a cold run.  Long-lived
serving sessions bound their memory with ``max_memo_entries`` /
``max_cached_partitions`` (LRU eviction, results unchanged).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.backend import resolve_backend
from repro.caching import BoundedLRU
from repro.dataset.partition import PartitionCache
from repro.dataset.relation import Relation
from repro.discovery.config import DiscoveryRequest
from repro.discovery.engine import DiscoveryEngine, config_uses_shard_pool
from repro.discovery.events import DiscoveryEvent, RunCompleted
from repro.discovery.results import DiscoveryResult
from repro.incremental.delta import DeltaSummary, rows_to_columns
from repro.obs import get_tracer


#: Cap on per-request incremental baselines retained by a session (each is
#: a full DiscoveryResult).  Evicting one is harmless — see `_baselines`.
MAX_BASELINES = 64


@dataclass(frozen=True)
class _Baseline:
    """The last completed result for one canonical request, together with
    the dataset state it was computed against (row count and position in
    the session's delta log)."""

    delta_index: int
    num_rows: int
    result: DiscoveryResult


class CancellationToken:
    """Thread-safe cooperative cancellation for a running discovery.

    Hand one to :meth:`Profiler.discover` / :meth:`Profiler.iter_events`
    (or ``DiscoveryEngine.run``) and call :meth:`cancel` — from a callback,
    another thread, or a signal handler — to stop the run at the next
    node / context-group boundary.  The interrupted run returns a
    well-formed partial :class:`~repro.discovery.results.DiscoveryResult`
    with ``result.cancelled`` set.

    A token may also carry a **deadline** (``deadline_seconds``, measured
    from construction): once the wall clock passes it, :meth:`cancelled`
    fires on its own.  This is how the serve layer threads per-request
    deadlines into the engine — the deadline covers queue wait *and* run
    time, and the engine needs no new interrupt machinery.  :attr:`reason`
    records why the token fired (``"deadline"``, or whatever string
    :meth:`cancel` was given, ``"cancelled"`` by default) so callers can
    map explicit cancellation, deadline expiry, and client disconnects to
    different responses.
    """

    __slots__ = ("_event", "_deadline", "_cancel_lock", "reason")

    def __init__(self, deadline_seconds: Optional[float] = None) -> None:
        self._event = threading.Event()
        self._cancel_lock = threading.Lock()
        self._deadline = (
            None if deadline_seconds is None
            else time.monotonic() + deadline_seconds
        )
        #: Why the token fired; ``None`` until it has.
        self.reason: Optional[str] = None

    def cancel(self, reason: str = "cancelled") -> bool:
        """Request cancellation (idempotent; first reason wins).

        Returns ``True`` for the call that actually fired the token, so
        racing cancellers (watchdog thread vs. failed socket write, say)
        can attribute the cancellation exactly once.
        """
        with self._cancel_lock:
            first = not self._event.is_set()
            if first:
                self.reason = reason
            self._event.set()
        return first

    def cancelled(self) -> bool:
        """Whether cancellation has been requested (or the deadline hit)."""
        if self._event.is_set():
            return True
        if self._deadline is not None and time.monotonic() >= self._deadline:
            self.cancel("deadline")
            return True
        return False

    @property
    def deadline_remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` without one; floored at 0)."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())


class Profiler:
    """A reusable discovery session over one relation.

    Parameters
    ----------
    relation:
        The table to profile.  Encoded once, at construction.
    backend:
        Compute backend for every run of this session (instance, name, or
        ``None`` for the environment default).
    num_workers:
        Default worker-process count for runs whose request does not pin
        its own (``DiscoveryRequest.num_workers is None``).  The pool is
        spawned lazily on the first run that needs it and reused until
        :meth:`close`.
    cache_validations:
        Keep a cross-run memo of validation outcomes (default on).  Cold
        runs behave identically to the one-shot API; repeated runs and
        :meth:`sweep` skip every kernel call whose outcome is still sound
        for the new threshold.  Disable to measure raw engine time.
    retain_partitions:
        Keep one partition cache alive across runs (default on — it is the
        session's main warm asset).  When disabled each run owns its own
        cache and evicts it level by level, bounding peak memory exactly
        like the pre-session engine; the one-shot ``discover_*`` wrappers
        use this, since their session never runs twice.
    shard_pool:
        An externally-owned
        :class:`~repro.validation.distributed.ShardedValidationPool` to
        run on instead of spawning one.  The session never closes an
        external pool; hosts serving many datasets share a single pool
        across their sessions this way.  Must match ``num_workers``.
    worker_timeout:
        Default per-job deadline in seconds for the session-owned pool (a
        job past it is treated as a worker death and recovered; see
        ``DiscoveryConfig.worker_timeout``).  ``None`` waits indefinitely.
        Request-level ``worker_timeout`` values still apply per run; this
        default covers runs whose request leaves it unset.
    max_memo_entries:
        Optional LRU bound on the validation memo.  The memo's entries are
        tiny but grow with every distinct candidate ever validated; a
        long-lived serving session caps it so ad-hoc attribute subsets
        cannot grow it without limit.  Evicted outcomes are simply
        recomputed — results never change.
    max_cached_partitions:
        Optional LRU bound on the retained partition cache (each entry is
        O(rows)).  Evicted partitions are rebuilt on demand; during
        :meth:`extend`, contexts whose partitions were evicted lose their
        memo entries too (their delta effect is unknown), so tight bounds
        trade incremental reuse for memory.
    """

    def __init__(
        self,
        relation: Relation,
        *,
        backend=None,
        num_workers: int = 1,
        cache_validations: bool = True,
        retain_partitions: bool = True,
        shard_pool=None,
        worker_timeout: Optional[float] = None,
        max_memo_entries: Optional[int] = None,
        max_cached_partitions: Optional[int] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if shard_pool is not None and shard_pool.num_workers != num_workers:
            raise ValueError(
                f"external pool has {shard_pool.num_workers} workers, "
                f"session wants {num_workers}"
            )
        self.relation = relation
        self.backend = resolve_backend(backend)
        self.num_workers = num_workers
        self.worker_timeout = worker_timeout
        self.encoded = relation.encoded(self.backend)
        self.partitions = (
            PartitionCache(
                self.encoded,
                backend=self.backend,
                max_entries=max_cached_partitions,
            )
            if retain_partitions else None
        )
        self._memo: Optional[BoundedLRU] = (
            BoundedLRU(max_memo_entries) if cache_validations else None
        )
        self._pool = shard_pool
        self._owns_pool = shard_pool is None
        #: Worker-resident column namespace over the pool (lazy; see
        #: :class:`repro.validation.distributed.ColumnPlane`): rank columns
        #: ship to each worker once per dataset version and survive across
        #: runs; :meth:`extend` advances them by shipping only the deltas.
        self._plane = None
        #: Monotone dataset version: bumped by every :meth:`extend`.
        self._dataset_version = 0
        self._closed = False
        self._active_streams = 0
        #: Every append applied to this session, in order.
        self._delta_log: List[DeltaSummary] = []
        #: Session-lived adaptive planner (lazy; see :mod:`repro.planner`):
        #: calibrated on the first ``plan="auto"`` run, refined by every
        #: later one.  ``None`` until an auto run happens.
        self._planner = None
        #: Canonical request JSON -> baseline of the last completed run.
        #: LRU-bounded: losing a baseline only means a later
        #: `discover_incremental` for that request degrades to a cold run
        #: (which re-seeds it) — results never change, so a fixed cap keeps
        #: ad-hoc request streams from growing session state without limit.
        self._baselines: BoundedLRU = BoundedLRU(MAX_BASELINES)

    # -- discovery ---------------------------------------------------------------

    def discover(
        self,
        request: Optional[DiscoveryRequest] = None,
        *,
        progress_callback=None,
        cancellation=None,
        **overrides,
    ) -> DiscoveryResult:
        """Run one discovery against the session's warm state.

        ``request`` defaults to ``DiscoveryRequest()``; keyword overrides
        build or amend it (``profiler.discover(threshold=0.1)`` is
        shorthand for ``profiler.discover(DiscoveryRequest(threshold=0.1))``).

        A completed (not cancelled, not timed-out) run is remembered as the
        session's *baseline* for its canonical request, which is what
        :meth:`discover_incremental` later diffs and repairs against.
        """
        request = self._resolve_request(request, overrides)
        engine = self._engine(request, progress_callback)
        result = engine.run(cancellation)
        if not result.cancelled and not result.timed_out:
            self._record_baseline(request.to_json(), result)
        return result

    def iter_events(
        self,
        request: Optional[DiscoveryRequest] = None,
        *,
        progress_callback=None,
        cancellation=None,
        **overrides,
    ) -> Iterator[DiscoveryEvent]:
        """Stream one discovery as level events (see
        :mod:`repro.discovery.events`); the final
        :class:`~repro.discovery.events.RunCompleted` carries the result.

        Like :meth:`discover`, a run whose stream completes uninterrupted
        becomes the session's incremental baseline for its request, so
        streamed and one-shot runs feed :meth:`discover_incremental`
        equally."""
        request = self._resolve_request(request, overrides)
        engine = self._engine(request, progress_callback)

        def _record_on_completion() -> Iterator[DiscoveryEvent]:
            # The count makes `extend` refuse to mutate warm state while
            # this stream can still resume into it (see `extend`).
            self._active_streams += 1
            try:
                for event in engine.iter_events(cancellation):
                    if isinstance(event, RunCompleted):
                        result = event.result
                        if not result.cancelled and not result.timed_out:
                            self._record_baseline(request.to_json(), result)
                    yield event
            finally:
                self._active_streams -= 1

        return _record_on_completion()

    def sweep(
        self,
        thresholds: Iterable[float],
        *,
        request: Optional[DiscoveryRequest] = None,
        progress_callback=None,
        cancellation=None,
        **overrides,
    ) -> List[Optional[DiscoveryResult]]:
        """Discover at every threshold, reusing warm state across runs.

        Returns one :class:`~repro.discovery.results.DiscoveryResult` per
        threshold, in the order given.  Internally the thresholds execute
        largest-first: a removal count computed under a large budget is
        reusable for every smaller budget (and "over budget" verdicts
        transfer downward), so the descending order maximises validation
        memo reuse.  Results are identical for any execution order.

        When ``cancellation`` fires, the sweep stops after the run it
        interrupted (that run's result carries ``result.cancelled``);
        thresholds it never reached get ``None`` in the returned list, so
        positions always correspond to the input thresholds —
        ``zip(thresholds, results)`` stays correct for partial sweeps.  An
        uninterrupted sweep never contains ``None``.
        """
        thresholds = list(thresholds)
        base = request if request is not None else DiscoveryRequest()
        if overrides:
            base = replace(base, **overrides)
        results: List[Optional[DiscoveryResult]] = [None] * len(thresholds)
        order = sorted(range(len(thresholds)), key=lambda i: -thresholds[i])
        for i in order:
            results[i] = self.discover(
                replace(base, threshold=thresholds[i]),
                progress_callback=progress_callback,
                cancellation=cancellation,
            )
            if cancellation is not None and cancellation.cancelled():
                break
        return results

    # -- evolving data ----------------------------------------------------------

    def extend(self, rows: Sequence[object]) -> DeltaSummary:
        """Append rows and bring the session's warm state up to date.

        Each row is a sequence of cell values in schema order or a mapping
        from attribute name to value.  The appended rows are delta-encoded
        into the session's :class:`~repro.dataset.encoding.EncodedRelation`
        (dictionaries grow monotonically; columns whose new values sort
        into the middle of the domain are remapped order-preservingly),
        every retained partition is patched per context, and the validation
        memo keeps exactly the entries the delta provably did not change.
        The returned :class:`~repro.incremental.DeltaSummary` says what
        happened; :meth:`discover_incremental` then revalidates only the
        affected candidates.
        """
        if self._closed:
            raise RuntimeError("Profiler is closed")
        if self._active_streams:
            # A suspended iter_events generator holds an engine built
            # against the current encoding; patching the shared partition
            # cache under it would resume that engine onto row ids its
            # captured rank columns cannot cover (a deep kernel IndexError
            # far from the misuse).  Make the contract explicit instead.
            raise RuntimeError(
                "dataset extended while a discovery stream is active; "
                "drain or close the iter_events generator first"
            )
        schema = self.relation.schema
        columns = rows_to_columns(schema, list(rows))
        old_num_rows = self.relation.num_rows
        extended, modes = self.encoded.extend(columns)
        delta_relation = Relation(schema, columns)
        new_relation = self.relation.concat(delta_relation)
        new_relation.adopt_encoding(extended)
        affected_names: List[frozenset] = []
        dropped_names: List[frozenset] = []
        patches_by_context: Dict[frozenset, tuple] = {}
        patched = 0
        if self.partitions is not None:
            patches = self.partitions.apply_delta(extended, old_num_rows)
            names = schema.names

            def named(key):
                return frozenset(names[i] for i in key)

            affected_names = [named(key) for key in patches.affected]
            dropped_names = [named(key) for key in patches.dropped]
            patches_by_context = {
                named(key): patch
                for key, patch in patches.class_patches.items()
            }
            patched = sum(1 for _ in self.partitions.cached_keys())
        with get_tracer().span(
            "memo-repair",
            appended_rows=new_relation.num_rows - old_num_rows,
            affected_contexts=len(patches_by_context),
            dropped_contexts=len(dropped_names),
        ):
            invalidated, adjusted, retained = self._repair_memo(
                extended, patches_by_context, dropped_names
            )
        self.relation = new_relation
        self.encoded = extended
        self._dataset_version += 1
        if self._plane is not None:
            # Advance the worker-resident columns: appended-mode columns
            # ship only their delta ranks, remapped ones are dropped and
            # re-shipped in full on next use — never a full re-broadcast.
            self._plane.apply_delta(extended, modes, old_num_rows)
        summary = DeltaSummary(
            old_num_rows=old_num_rows,
            new_num_rows=new_relation.num_rows,
            dataset_version=self._dataset_version,
            column_modes=modes,
            affected_contexts=tuple(sorted(affected_names, key=sorted)),
            dropped_contexts=tuple(sorted(dropped_names, key=sorted)),
            patched_partitions=patched,
            invalidated_memo_entries=invalidated,
            adjusted_memo_entries=adjusted,
            retained_memo_entries=retained,
        )
        if summary.num_appended:
            self._delta_log.append(summary)
        return summary

    def discover_incremental(
        self,
        request: Optional[DiscoveryRequest] = None,
        *,
        progress_callback=None,
        cancellation=None,
        **overrides,
    ):
        """Re-establish the request's dependency set after :meth:`extend`.

        Classifies the previous result's candidates (still-valid /
        must-revalidate / newly-possible), revalidates only what the
        appended rows can have changed, and returns an
        :class:`~repro.incremental.IncrementalOutcome` whose ``result`` is
        byte-identical to a cold discovery over the concatenated table.
        Without a prior completed run for the (canonicalised) request this
        degrades to a cold run that seeds the baseline.
        """
        from repro.incremental.engine import IncrementalEngine

        if self._closed:
            raise RuntimeError("Profiler is closed")
        engine = IncrementalEngine(
            self, self._resolve_request(request, overrides)
        )
        return engine.discover(
            progress_callback=progress_callback, cancellation=cancellation
        )

    def _repair_memo(self, extended, patches_by_context, dropped_names):
        """Repair or drop memo entries an append may have changed.

        Entries of unaffected, still-cached contexts are kept as they are;
        entries of affected contexts are adjusted per class (see
        :mod:`repro.incremental.repair`); entries whose context is no
        longer provably tracked (dropped or LRU-evicted partitions) are
        purged.  Without a retained partition cache nothing is provable,
        so everything goes.
        """
        if self._memo is None:
            return 0, 0, 0
        if self.partitions is None:
            invalidated = len(self._memo)
            self._memo.clear()
            return invalidated, 0, 0
        from repro.incremental.repair import repair_memo

        names = self.relation.schema.names
        cached = {
            frozenset(names[i] for i in key)
            for key in self.partitions.cached_keys()
        }
        return repair_memo(
            self._memo, extended, patches_by_context, dropped_names, cached
        )

    # -- incremental session state (read by repro.incremental) -------------------

    @property
    def validation_memo(self) -> Optional[BoundedLRU]:
        """The cross-run validation memo (``None`` when disabled)."""
        return self._memo

    @property
    def delta_log(self) -> List[DeltaSummary]:
        """Every append applied to this session, oldest first."""
        return self._delta_log

    @property
    def dataset_version(self) -> int:
        """How many times :meth:`extend` has advanced this session's data.

        The same version stamps the worker pool's resident columns, so a
        reused pool can never serve a run from columns of another version.
        """
        return self._dataset_version

    def _baseline(self, request_key: str) -> Optional[_Baseline]:
        return self._baselines.get(request_key)

    def _record_baseline(self, request_key: str, result: DiscoveryResult) -> None:
        self._baselines[request_key] = _Baseline(
            delta_index=len(self._delta_log),
            num_rows=self.relation.num_rows,
            result=result,
        )

    # -- introspection -----------------------------------------------------------

    def cache_info(self) -> Dict[str, object]:
        """Warm-state statistics: partition cache hits/misses/entries and
        the number of memoised validation outcomes."""
        info: Dict[str, object] = (
            dict(self.partitions.stats) if self.partitions is not None
            else {"hits": 0, "misses": 0, "entries": 0, "evictions": 0}
        )
        info["validation_memo_entries"] = (
            len(self._memo) if self._memo is not None else 0
        )
        info["validation_memo_evictions"] = (
            self._memo.evictions if self._memo is not None else 0
        )
        info["backend"] = self.backend.name
        info["num_appends"] = len(self._delta_log)
        info["dataset_version"] = self._dataset_version
        if self._pool is not None and not self._pool.closed:
            info["worker_pool"] = dict(self._pool.stats)
        return info

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut down the session-owned worker pool and mark the session
        closed (idempotent).  Guaranteed to leave no worker processes
        behind, no matter how the session's runs ended (exceptions,
        cancellations, time limits); an externally-supplied pool is left
        to its owner."""
        if self._plane is not None and not self._owns_pool:
            # A shared pool outlives this session: free the worker-resident
            # columns of this dataset so the host can keep the pool warm.
            self._plane.release()
        self._plane = None
        if self._pool is not None and self._owns_pool:
            self._pool.close()
        self._pool = None
        self._closed = True

    def __enter__(self) -> "Profiler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- internals ---------------------------------------------------------------

    def _resolve_request(self, request, overrides) -> DiscoveryRequest:
        if request is None:
            return DiscoveryRequest(**overrides)
        if overrides:
            return replace(request, **overrides)
        return request

    def _engine(self, request, progress_callback) -> DiscoveryEngine:
        if self._closed:
            raise RuntimeError("Profiler is closed")
        config = request.to_config(
            backend=self.backend,
            num_workers=self.num_workers,
            progress_callback=progress_callback,
        )
        plane = None
        if config_uses_shard_pool(config):
            if config.num_workers == self.num_workers:
                plane = self._ensure_plane()
            # else: the request pinned a different worker count — the
            # engine spawns (and closes) a pool of its own for this one
            # run rather than thrashing the session's warm pool.
        planner = None
        if config.plan == "auto" and config.batch_validation:
            planner = self._ensure_planner(plane)
        return DiscoveryEngine(
            self.relation,
            config,
            partitions=self.partitions,
            column_plane=plane,
            validation_memo=self._memo,
            planner=planner,
        )

    def _ensure_planner(self, plane=None):
        """Calibrate the session's adaptive planner on first auto run.

        When the run will use the session's warm pool, the dispatch
        overhead is probed through that actual pool (a tiny round-trip);
        poolless sessions calibrate against the conservative default.
        """
        if self._planner is None:
            from repro.planner import build_planner

            self._planner = build_planner(
                backend=self.backend,
                max_workers=self.num_workers,
                pipeline=True,
                pool=None if plane is None else plane.pool,
            )
        return self._planner

    def planner_info(self) -> Optional[Dict[str, object]]:
        """The planner's model/decision snapshot (``None`` before the
        first ``plan="auto"`` run); surfaced on ``/healthz``."""
        if self._planner is None:
            return None
        return self._planner.snapshot()

    def _ensure_pool(self):
        from repro.validation.distributed import ShardedValidationPool

        if self._pool is None:
            self._pool = ShardedValidationPool(
                self.num_workers, backend=self.backend,
                worker_timeout=self.worker_timeout,
            )
            self._owns_pool = True
        return self._pool

    def _ensure_plane(self):
        pool = self._ensure_pool()
        if self._plane is None:
            self._plane = pool.new_plane(self.encoded)
        return self._plane
