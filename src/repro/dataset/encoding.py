"""Order-preserving dictionary encoding of relations.

All validation and discovery algorithms operate on integer *ranks* rather
than raw values: each column is mapped to dense integers ``0..k-1`` such that
``rank(u) < rank(v)`` iff ``u`` sorts before ``v`` in the column's domain
order.  ``None`` (missing) values receive the smallest rank (``NULLS
FIRST``).  The encoding is computed once per relation and cached, mirroring
how the original Java implementation pre-sorts and dictionary-encodes its
input.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataset.schema import AttributeType, Schema


def _sort_key(value: object, attr_type: AttributeType):
    """Return a sortable key for ``value`` under ``attr_type``.

    ``None`` is handled by the caller; this function only deals with present
    values.  Values that do not match the declared type are coerced where it
    is unambiguous (e.g. numeric strings for numeric columns) and otherwise
    compared via their string representation, so that dirty real-world CSV
    data never crashes the encoder.
    """
    if attr_type in (AttributeType.INTEGER, AttributeType.FLOAT):
        if isinstance(value, bool):
            return (0, float(value))
        if isinstance(value, (int, float)):
            return (0, float(value))
        try:
            return (0, float(str(value)))
        except ValueError:
            return (1, str(value))
    if attr_type is AttributeType.BOOLEAN:
        if isinstance(value, bool):
            return (0, float(value))
        return (1, str(value))
    return (1, str(value))


def encode_column(
    values: Sequence[object], attr_type: AttributeType = AttributeType.STRING
) -> Tuple[List[int], List[object]]:
    """Dictionary-encode one column into dense, order-preserving ranks.

    Returns ``(ranks, dictionary)`` where ``ranks[i]`` is the rank of
    ``values[i]`` and ``dictionary[rank]`` is a representative raw value for
    that rank (useful for decoding / reporting).  Equal values always map to
    equal ranks; ``None`` maps to rank 0 when present.
    """
    distinct: Dict[object, object] = {}
    has_null = False
    for value in values:
        if value is None:
            has_null = True
        elif value not in distinct:
            distinct[value] = _sort_key(value, attr_type)
    ordered = sorted(distinct, key=distinct.__getitem__)
    dictionary: List[object] = ([None] if has_null else []) + ordered
    rank_of = {value: i for i, value in enumerate(dictionary)}
    ranks = [rank_of[value] for value in values]
    return ranks, dictionary


class EncodedRelation:
    """A relation encoded to per-column dense integer ranks.

    The canonical representation of a rank column is a plain list of ints,
    identical across compute backends; the encoding backend additionally
    caches its *native* columnar form (e.g. ``int32`` NumPy arrays) for the
    vectorised kernels.

    Attributes
    ----------
    schema:
        The originating relation's schema.
    num_rows:
        Number of tuples.
    backend:
        The :class:`~repro.backend.base.ComputeBackend` that produced (and
        serves the native columns of) this encoding.
    """

    def __init__(
        self,
        schema: Schema,
        rank_columns: Sequence[Sequence[int]],
        dictionaries: Sequence[Sequence[object]],
        num_rows: int,
        backend=None,
        native_columns: Optional[Sequence[object]] = None,
    ) -> None:
        from repro.backend import resolve_backend

        self.schema = schema
        self.backend = resolve_backend(backend)
        # A column may be handed over as None when the backend supplied a
        # native form instead; the canonical list is materialised on first
        # `ranks()` access.
        self._ranks: List[Optional[List[int]]] = [
            None if col is None else list(col) for col in rank_columns
        ]
        self._dictionaries: List[List[object]] = [list(d) for d in dictionaries]
        self.num_rows = num_rows
        self._native: Dict[int, object] = {}
        if native_columns is not None:
            for index, native in enumerate(native_columns):
                if native is not None:
                    self._native[index] = native
        for index, ranks in enumerate(self._ranks):
            if ranks is None and index not in self._native:
                raise ValueError(
                    f"rank column {index} is None but no native column was given"
                )

    @classmethod
    def from_relation(cls, relation, backend=None) -> "EncodedRelation":
        """Encode every column of ``relation`` with the given backend."""
        from repro.backend import resolve_backend

        backend = resolve_backend(backend)
        rank_columns = []
        dictionaries = []
        natives = []
        for attribute in relation.schema:
            ranks, dictionary, native = backend.encode_column(
                relation.column(attribute.name), attribute.type
            )
            rank_columns.append(ranks)
            dictionaries.append(dictionary)
            natives.append(native)
        return cls(
            relation.schema,
            rank_columns,
            dictionaries,
            relation.num_rows,
            backend=backend,
            native_columns=natives,
        )

    # -- accessors -------------------------------------------------------------

    def ranks(self, attribute: str) -> List[int]:
        """Return the rank column for ``attribute``."""
        return self.ranks_by_index(self.schema.index_of(attribute))

    def ranks_by_index(self, index: int) -> List[int]:
        """Return the rank column for the attribute at schema position ``index``."""
        ranks = self._ranks[index]
        if ranks is None:
            native = self._native[index]
            ranks = native.tolist() if hasattr(native, "tolist") else list(native)
            self._ranks[index] = ranks
        return ranks

    def native_ranks(self, attribute: str):
        """Return the backend-native rank column for ``attribute``."""
        return self.native_ranks_by_index(self.schema.index_of(attribute))

    def native_ranks_by_index(self, index: int):
        """Return the backend-native rank column at schema position ``index``."""
        native = self._native.get(index)
        if native is None:
            native = self.backend.to_native(self._ranks[index])
            self._native[index] = native
        return native

    def dictionary(self, attribute: str) -> List[object]:
        """Return the rank-to-value dictionary for ``attribute``."""
        return self._dictionaries[self.schema.index_of(attribute)]

    def decode(self, attribute: str, rank: int) -> object:
        """Return a representative raw value for ``rank`` of ``attribute``."""
        return self.dictionary(attribute)[rank]

    def cardinality(self, attribute: str) -> int:
        """Number of distinct values (including ``None``) in ``attribute``."""
        return len(self.dictionary(attribute))

    def __len__(self) -> int:
        return self.num_rows

    def row_ranks(self, index: int, attributes: Sequence[str]) -> Tuple[int, ...]:
        """Return the rank vector of row ``index`` over ``attributes``."""
        return tuple(self.ranks(a)[index] for a in attributes)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"EncodedRelation({self.num_rows} rows, "
            f"{len(self.schema)} attributes)"
        )
