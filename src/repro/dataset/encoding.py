"""Order-preserving dictionary encoding of relations.

All validation and discovery algorithms operate on integer *ranks* rather
than raw values: each column is mapped to dense integers ``0..k-1`` such that
``rank(u) < rank(v)`` iff ``u`` sorts before ``v`` in the column's domain
order.  ``None`` (missing) values receive the smallest rank (``NULLS
FIRST``).  The encoding is computed once per relation and cached, mirroring
how the original Java implementation pre-sorts and dictionary-encodes its
input.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.dataset.schema import AttributeType, Schema

#: Per-column outcome of :meth:`EncodedRelation.extend`: ``"appended"`` when
#: every delta value reused an existing code or extended the dictionary past
#: its current maximum (existing codes untouched), ``"remapped"`` when a
#: delta value sorts into the middle of the dictionary and the whole column
#: was re-encoded (codes change, but only by an order-preserving bijection,
#: so partitions and validation outcomes are unaffected).
EXTEND_APPENDED = "appended"
EXTEND_REMAPPED = "remapped"

#: Columns shorter than this never benefit from run-length transport: the
#: run bookkeeping outweighs the dense payload.
RLE_MIN_ROWS = 256
#: A column is run-encoded for transport only when it has at most
#: ``num_rows / RLE_MIN_SHRINK`` runs, i.e. the encoding is at least this
#: many times smaller than the dense form.
RLE_MIN_SHRINK = 4


class RunLengthColumn:
    """A rank column stored as value runs (transport encoding).

    ``starts[i]`` is the first row of run ``i`` (``starts[0] == 0``,
    strictly increasing) and ``values[i]`` its rank; the decoded column has
    ``length`` rows.  Used to shrink the bytes shipped to validation
    workers for low-cardinality clustered columns; workers materialise the
    dense form on receipt, so kernels never see this type.  ``__len__`` is
    the *decoded* length, which keeps every row-coverage guard (e.g. the
    pool's stale-column check) working unchanged on the encoded form.
    """

    __slots__ = ("starts", "values", "length")

    def __init__(self, starts, values, length: int) -> None:
        self.starts = starts
        self.values = values
        self.length = length

    def __len__(self) -> int:
        return self.length

    @property
    def num_runs(self) -> int:
        return len(self.values)

    def value_at(self, row: int) -> int:
        """Rank at ``row`` via binary search over the run starts."""
        from bisect import bisect_right

        if not 0 <= row < self.length:
            raise IndexError(row)
        return self.values[bisect_right(self.starts, row) - 1]

    def decode(self):
        """Materialise the dense rank column (same type the encoder ships:
        ndarray when the run values are an ndarray, list otherwise)."""
        if hasattr(self.values, "tolist"):
            import numpy as np

            run_lengths = np.diff(
                np.concatenate((self.starts, [self.length]))
            )
            return np.repeat(self.values, run_lengths)
        dense = []
        starts = list(self.starts) + [self.length]
        for i, value in enumerate(self.values):
            dense.extend([value] * (starts[i + 1] - starts[i]))
        return dense

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RunLengthColumn({self.num_runs} runs over {self.length} rows)"


def run_length_encode(column) -> Optional[RunLengthColumn]:
    """Run-encode a rank column if that genuinely shrinks it.

    Returns ``None`` when the column is too short or has too many runs to
    be worth shipping encoded (see :data:`RLE_MIN_ROWS` /
    :data:`RLE_MIN_SHRINK`); callers then ship the dense form.
    """
    num_rows = len(column)
    if num_rows < RLE_MIN_ROWS:
        return None
    max_runs = num_rows // RLE_MIN_SHRINK
    if hasattr(column, "tolist") and not isinstance(column, (list, tuple)):
        import numpy as np

        boundaries = np.nonzero(np.diff(column) != 0)[0] + 1
        if boundaries.size + 1 > max_runs:
            return None
        starts = np.concatenate(([0], boundaries)).astype(np.int64)
        return RunLengthColumn(starts, column[starts], num_rows)
    starts = [0]
    values = [column[0]]
    for row in range(1, num_rows):
        value = column[row]
        if value != values[-1]:
            if len(values) >= max_runs:
                return None
            starts.append(row)
            values.append(value)
    return RunLengthColumn(starts, values, num_rows)


def _sort_key(value: object, attr_type: AttributeType):
    """Return a sortable key for ``value`` under ``attr_type``.

    ``None`` is handled by the caller; this function only deals with present
    values.  Values that do not match the declared type are coerced where it
    is unambiguous (e.g. numeric strings for numeric columns) and otherwise
    compared via their string representation, so that dirty real-world CSV
    data never crashes the encoder.
    """
    if attr_type in (AttributeType.INTEGER, AttributeType.FLOAT):
        if isinstance(value, bool):
            return (0, float(value))
        if isinstance(value, (int, float)):
            return (0, float(value))
        try:
            return (0, float(str(value)))
        except ValueError:
            return (1, str(value))
    if attr_type is AttributeType.BOOLEAN:
        if isinstance(value, bool):
            return (0, float(value))
        return (1, str(value))
    return (1, str(value))


def encode_column(
    values: Sequence[object], attr_type: AttributeType = AttributeType.STRING
) -> Tuple[List[int], List[object]]:
    """Dictionary-encode one column into dense, order-preserving ranks.

    Returns ``(ranks, dictionary)`` where ``ranks[i]`` is the rank of
    ``values[i]`` and ``dictionary[rank]`` is a representative raw value for
    that rank (useful for decoding / reporting).  Equal values always map to
    equal ranks; ``None`` maps to rank 0 when present.
    """
    distinct: Dict[object, object] = {}
    has_null = False
    for value in values:
        if value is None:
            has_null = True
        elif value not in distinct:
            distinct[value] = _sort_key(value, attr_type)
    ordered = sorted(distinct, key=distinct.__getitem__)
    dictionary: List[object] = ([None] if has_null else []) + ordered
    rank_of = {value: i for i, value in enumerate(dictionary)}
    ranks = [rank_of[value] for value in values]
    return ranks, dictionary


class EncodedRelation:
    """A relation encoded to per-column dense integer ranks.

    The canonical representation of a rank column is a plain list of ints,
    identical across compute backends; the encoding backend additionally
    caches its *native* columnar form (e.g. ``int32`` NumPy arrays) for the
    vectorised kernels.

    Attributes
    ----------
    schema:
        The originating relation's schema.
    num_rows:
        Number of tuples.
    backend:
        The :class:`~repro.backend.base.ComputeBackend` that produced (and
        serves the native columns of) this encoding.
    """

    def __init__(
        self,
        schema: Schema,
        rank_columns: Sequence[Sequence[int]],
        dictionaries: Sequence[Sequence[object]],
        num_rows: int,
        backend=None,
        native_columns: Optional[Sequence[object]] = None,
    ) -> None:
        from repro.backend import resolve_backend

        self.schema = schema
        self.backend = resolve_backend(backend)
        # A column may be handed over as None when the backend supplied a
        # native form instead; the canonical list is materialised on first
        # `ranks()` access.
        self._ranks: List[Optional[List[int]]] = [
            None if col is None else list(col) for col in rank_columns
        ]
        self._dictionaries: List[List[object]] = [list(d) for d in dictionaries]
        self.num_rows = num_rows
        self._native: Dict[int, object] = {}
        # index -> transport form of the native column (RunLengthColumn when
        # run encoding shrinks it enough, else the dense native column).
        # Keyed per EncodedRelation, so `extend` — which returns a fresh
        # instance — naturally invalidates every cached transport column.
        self._transport: Dict[int, object] = {}
        if native_columns is not None:
            for index, native in enumerate(native_columns):
                if native is not None:
                    self._native[index] = native
        for index, ranks in enumerate(self._ranks):
            if ranks is None and index not in self._native:
                raise ValueError(
                    f"rank column {index} is None but no native column was given"
                )

    @classmethod
    def from_relation(cls, relation, backend=None) -> "EncodedRelation":
        """Encode every column of ``relation`` with the given backend."""
        from repro.backend import resolve_backend

        backend = resolve_backend(backend)
        rank_columns = []
        dictionaries = []
        natives = []
        for attribute in relation.schema:
            ranks, dictionary, native = backend.encode_column(
                relation.column(attribute.name), attribute.type
            )
            rank_columns.append(ranks)
            dictionaries.append(dictionary)
            natives.append(native)
        return cls(
            relation.schema,
            rank_columns,
            dictionaries,
            relation.num_rows,
            backend=backend,
            native_columns=natives,
        )

    # -- delta encoding ---------------------------------------------------------

    def extend(
        self, columns: Mapping[str, Sequence[object]]
    ) -> Tuple["EncodedRelation", Dict[str, str]]:
        """Delta-encode appended rows into a new, larger encoding.

        ``columns`` maps every schema attribute to the list of appended cell
        values (all the same length).  Returns ``(extended, modes)`` where
        ``extended`` is a fresh :class:`EncodedRelation` over the
        concatenated rows and ``modes`` maps each attribute to
        :data:`EXTEND_APPENDED` or :data:`EXTEND_REMAPPED`.

        The fast path appends: a delta value that already has a code reuses
        it, and genuinely new values whose sort keys are >= the current
        dictionary maximum are appended to the dictionary with fresh codes,
        so every existing code stays valid.  A new value that sorts into the
        middle of the dictionary forces a remap of that one column — a full
        re-encode of the concatenated values.  Either way the result is
        byte-identical, rank for rank, to encoding the concatenated relation
        from scratch (the remap reconstructs raw values from the dictionary,
        which stores each distinct value's first occurrence).

        ``self`` is left untouched; callers swap in the returned encoding.
        """
        missing = [a.name for a in self.schema if a.name not in columns]
        extra = sorted(set(columns) - set(self.schema.names))
        if missing or extra:
            raise ValueError(
                f"delta columns do not match schema "
                f"(missing={missing}, unexpected={extra})"
            )
        lengths = {len(columns[name]) for name in self.schema.names}
        if len(lengths) > 1:
            raise ValueError(
                f"delta columns have inconsistent lengths: {sorted(lengths)}"
            )
        num_new = lengths.pop() if lengths else 0
        rank_columns: List[Optional[List[int]]] = []
        dictionaries: List[List[object]] = []
        natives: List[object] = []
        modes: Dict[str, str] = {}
        for index, attribute in enumerate(self.schema):
            ranks, dictionary, native, mode = self._extend_column(
                index, columns[attribute.name], attribute.type
            )
            rank_columns.append(ranks)
            dictionaries.append(dictionary)
            natives.append(native)
            modes[attribute.name] = mode
        extended = EncodedRelation(
            self.schema,
            rank_columns,
            dictionaries,
            self.num_rows + num_new,
            backend=self.backend,
            native_columns=natives,
        )
        return extended, modes

    def _extend_column(
        self, index: int, new_values: Sequence[object], attr_type: AttributeType
    ):
        """Delta-encode one column; see :meth:`extend` for the contract."""
        old_ranks = self.ranks_by_index(index)
        dictionary = self._dictionaries[index]
        rank_of = {value: code for code, value in enumerate(dictionary)}
        # Dict membership gives the same dedup semantics as the reference
        # encoder's `distinct` dict (1 and True are one value).
        seen_new: Dict[object, None] = {}
        new_distinct: List[object] = []
        for value in new_values:
            if value not in rank_of and value not in seen_new:
                seen_new[value] = None
                new_distinct.append(value)
        appendable = not new_distinct
        if new_distinct:
            if any(value is None for value in new_distinct) or not dictionary:
                appendable = False
            else:
                last = dictionary[-1]
                if last is None:
                    appendable = True  # dictionary is [None]: anything appends
                else:
                    max_key = _sort_key(last, attr_type)
                    appendable = all(
                        _sort_key(value, attr_type) >= max_key
                        for value in new_distinct
                    )
        if appendable:
            if new_distinct:
                ordered = sorted(
                    new_distinct, key=lambda v: _sort_key(v, attr_type)
                )
                dictionary = dictionary + ordered
                for value in ordered:
                    rank_of.setdefault(value, len(rank_of))
            ranks = old_ranks + [rank_of[value] for value in new_values]
            return ranks, dictionary, None, EXTEND_APPENDED
        # Remap: re-encode the whole column.  The dictionary stores each
        # distinct value's first occurrence, so reconstructing old values
        # through it reproduces the exact sequence a cold encoder would see.
        reconstructed = [dictionary[code] for code in old_ranks]
        ranks, new_dictionary, native = self.backend.encode_column(
            reconstructed + list(new_values), attr_type
        )
        return ranks, new_dictionary, native, EXTEND_REMAPPED

    # -- accessors -------------------------------------------------------------

    def ranks(self, attribute: str) -> List[int]:
        """Return the rank column for ``attribute``."""
        return self.ranks_by_index(self.schema.index_of(attribute))

    def ranks_by_index(self, index: int) -> List[int]:
        """Return the rank column for the attribute at schema position ``index``."""
        ranks = self._ranks[index]
        if ranks is None:
            native = self._native[index]
            ranks = native.tolist() if hasattr(native, "tolist") else list(native)
            self._ranks[index] = ranks
        return ranks

    def native_ranks(self, attribute: str):
        """Return the backend-native rank column for ``attribute``."""
        return self.native_ranks_by_index(self.schema.index_of(attribute))

    def native_ranks_by_index(self, index: int):
        """Return the backend-native rank column at schema position ``index``."""
        native = self._native.get(index)
        if native is None:
            native = self.backend.to_native(self._ranks[index])
            self._native[index] = native
        return native

    def transport_ranks(self, attribute: str):
        """Return the rank column in its cheapest transport form.

        Low-cardinality clustered columns come back as a
        :class:`RunLengthColumn`; everything else as the dense native
        column.  Only for *shipping* (e.g. to validation workers, which
        materialise on receipt) — kernels take native columns.
        """
        return self.transport_ranks_by_index(self.schema.index_of(attribute))

    def transport_ranks_by_index(self, index: int):
        """Transport form of the rank column at schema position ``index``."""
        cached = self._transport.get(index)
        if cached is None:
            native = self.native_ranks_by_index(index)
            cached = run_length_encode(native) or native
            self._transport[index] = cached
        return cached

    def dictionary(self, attribute: str) -> List[object]:
        """Return the rank-to-value dictionary for ``attribute``."""
        return self._dictionaries[self.schema.index_of(attribute)]

    def decode(self, attribute: str, rank: int) -> object:
        """Return a representative raw value for ``rank`` of ``attribute``."""
        return self.dictionary(attribute)[rank]

    def cardinality(self, attribute: str) -> int:
        """Number of distinct values (including ``None``) in ``attribute``."""
        return len(self.dictionary(attribute))

    def __len__(self) -> int:
        return self.num_rows

    def row_ranks(self, index: int, attributes: Sequence[str]) -> Tuple[int, ...]:
        """Return the rank vector of row ``index`` over ``attributes``."""
        return tuple(self.ranks(a)[index] for a in attributes)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"EncodedRelation({self.num_rows} rows, "
            f"{len(self.schema)} attributes)"
        )
