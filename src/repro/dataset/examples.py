"""Example relations used throughout the paper and the test-suite.

:func:`employee_salary_table` is Table 1 of the paper verbatim; every worked
example in Sections 1-3 (swaps, splits, removal sets, the failure of the
iterative validator) is exercised against it in the tests.
"""

from __future__ import annotations

from repro.dataset.relation import Relation
from repro.dataset.schema import Attribute, AttributeType, Schema


#: Row labels used in the paper (t1..t9) mapped to 0-based row indices.
EMPLOYEE_TUPLE_IDS = {f"t{i + 1}": i for i in range(9)}


def employee_salary_table() -> Relation:
    """Return Table 1 of the paper (employee salaries).

    The ``perc`` column is stored as a numeric percentage (10% -> 10.0) so
    that its domain order matches the paper's narrative: the data-entry
    errors (a concatenated zero, e.g. 10% instead of 1%) are what break the
    intended OC ``sal ~ tax``.
    """
    schema = Schema(
        [
            Attribute("pos", AttributeType.STRING),
            Attribute("exp", AttributeType.INTEGER),
            Attribute("sal", AttributeType.INTEGER),
            Attribute("taxGrp", AttributeType.STRING),
            Attribute("perc", AttributeType.FLOAT),
            Attribute("tax", AttributeType.FLOAT),
            Attribute("bonus", AttributeType.INTEGER),
        ]
    )
    rows = [
        # pos,  exp, sal(K), taxGrp, perc, tax(K), bonus(K)
        ("sec", 1, 20, "A", 10.0, 2.0, 1),     # t1
        ("sec", 3, 25, "A", 10.0, 2.5, 1),     # t2
        ("dev", 1, 30, "A", 1.0, 0.3, 3),      # t3
        ("sec", 5, 40, "B", 30.0, 12.0, 2),    # t4
        ("dev", 3, 50, "B", 3.0, 1.5, 4),      # t5
        ("dev", 5, 55, "B", 30.0, 16.5, 4),    # t6
        ("dev", 5, 60, "B", 3.0, 1.8, 4),      # t7
        ("dev", -1, 90, "C", 8.0, 7.2, 7),     # t8
        ("dir", 8, 200, "C", 8.0, 16.0, 10),   # t9
    ]
    columns = {
        name: [row[i] for row in rows] for i, name in enumerate(schema.names)
    }
    return Relation(schema, columns)


def tuple_ids_to_rows(names) -> set:
    """Convert paper tuple labels (``"t1"``) to 0-based row indices."""
    return {EMPLOYEE_TUPLE_IDS[name] for name in names}


def rows_to_tuple_ids(rows) -> set:
    """Convert 0-based row indices to paper tuple labels (``"t1"``)."""
    reverse = {index: name for name, index in EMPLOYEE_TUPLE_IDS.items()}
    return {reverse[row] for row in rows}


def tiny_numeric_table() -> Relation:
    """A minimal 4-row numeric table used in unit tests and docstrings."""
    return Relation.from_columns(
        {
            "a": [1, 2, 3, 4],
            "b": [10, 20, 30, 40],
            "c": [1, 1, 2, 2],
            "d": [4, 3, 2, 1],
        }
    )
