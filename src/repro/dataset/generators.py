"""Synthetic workload generators.

The paper evaluates on two real datasets that are not redistributable here:

* ``flight`` — U.S. flight records from the Bureau of Transportation
  Statistics (1M tuples, 35 attributes), and
* ``ncvoter`` — North Carolina voter registrations (5M tuples, 30
  attributes).

These generators produce synthetic relations with the structural properties
the algorithms are actually sensitive to (see DESIGN.md §2, substitutions):

* a mix of low-cardinality categorical, high-cardinality categorical and
  numeric columns,
* hierarchically correlated attributes, so that exact OFDs and OCs exist at
  several lattice levels,
* monotone derived columns with *injected per-cell errors*, so that
  approximate OCs with known, controllable approximation factors exist
  (these are the dependencies the paper's qualitative examples highlight,
  e.g. ``arrivalDelay ~ lateAircraftDelay`` at 9.5%), and
* near-key columns and heavy-tailed group sizes, which drive partition and
  equivalence-class shapes.

All generators are deterministic for a given seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataset.errors import (
    inject_pair_swaps,
    inject_scaling_errors,
    inject_value_replacements,
)
from repro.dataset.relation import Relation


# ---------------------------------------------------------------------------
# Planted-dependency ground truth
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlantedOC:
    """Ground-truth record of an OC planted by a generator.

    ``approx_rows`` is the set of rows whose cells were perturbed; the true
    approximation factor of the OC ``context: a ~ b`` is at most
    ``len(approx_rows) / num_rows`` (removing the perturbed rows restores
    the dependency), which the tests and Exp-6 use as a reference.
    """

    a: str
    b: str
    context: Tuple[str, ...] = ()
    approx_rows: frozenset = frozenset()

    @property
    def planted_rate(self) -> float:
        return len(self.approx_rows)


@dataclass
class GeneratedWorkload:
    """A generated relation together with its planted ground truth."""

    relation: Relation
    planted_ocs: List[PlantedOC] = field(default_factory=list)
    description: str = ""

    @property
    def num_rows(self) -> int:
        return self.relation.num_rows


# ---------------------------------------------------------------------------
# Shared column factories
# ---------------------------------------------------------------------------


def _zipf_choices(rng: random.Random, num_values: int, num_rows: int,
                  exponent: float = 1.2) -> List[int]:
    """Draw ``num_rows`` category indices with a Zipf-like skew.

    Real categorical columns (airlines, counties) have heavy-tailed
    frequencies; group-size skew matters for per-class validation cost.
    """
    weights = [1.0 / (i + 1) ** exponent for i in range(num_values)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    choices = []
    for _ in range(num_rows):
        u = rng.random()
        lo, hi = 0, num_values - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        choices.append(lo)
    return choices


def _code_for(index: int, width: int = 3) -> str:
    """Deterministic uppercase code for an integer (``0 -> 'AAA'``)."""
    letters = []
    value = index
    for _ in range(width):
        letters.append(chr(ord("A") + value % 26))
        value //= 26
    return "".join(reversed(letters))


# ---------------------------------------------------------------------------
# flight-like generator
# ---------------------------------------------------------------------------


def generate_flight_like(
    num_rows: int,
    num_attributes: int = 10,
    error_rate: float = 0.08,
    seed: int = 0,
) -> GeneratedWorkload:
    """Generate a flight-records-like relation.

    The first ten attributes mirror the structure the paper's qualitative
    findings rely on; additional attributes (up to 35, matching the real
    dataset's width) are derived or weakly correlated extras used by the
    attribute-scalability experiment (Exp-2).

    Planted approximate OCs (approximation factor ≈ ``error_rate``):

    * ``arrivalDelay ~ lateAircraftDelay`` — delays are proportional except
      for a fraction of flights whose delay had other causes,
    * ``originAirportId ~ iataCode`` — the airport id enumerates airports in
      the same order as their IATA code, with a few mis-mapped codes,
    * ``distance ~ airTime`` (exact OC before noise; pair swaps injected).
    """
    if num_rows <= 0:
        raise ValueError("num_rows must be positive")
    rng = random.Random(seed)

    num_airports = max(10, min(300, num_rows // 20 + 10))
    num_airlines = 12

    airline_idx = _zipf_choices(rng, num_airlines, num_rows)
    origin_idx = _zipf_choices(rng, num_airports, num_rows)
    dest_idx = _zipf_choices(rng, num_airports, num_rows)

    flight_date = [20190101 + rng.randrange(0, 365) for _ in range(num_rows)]
    dep_time = [rng.randrange(0, 2400) for _ in range(num_rows)]

    distance = [50 + (abs(o - d) * 37 + rng.randrange(0, 25)) for o, d in
                zip(origin_idx, dest_idx)]
    air_time_clean = [int(20 + dist * 0.12) for dist in distance]
    late_aircraft_delay = [max(0, int(rng.gauss(15, 20))) for _ in range(num_rows)]
    arrival_delay_clean = [int(delay * 1.5) for delay in late_aircraft_delay]

    origin_airport_id = [10000 + idx * 7 for idx in origin_idx]
    iata_clean = [_code_for(idx) for idx in origin_idx]

    # Inject the planted errors.
    arrival_delay, delay_error_rows = inject_scaling_errors(
        arrival_delay_clean, error_rate, factor=7.0, seed=seed + 1
    )
    arrival_delay = [int(v) for v in arrival_delay]
    iata_code, iata_error_rows = inject_value_replacements(
        iata_clean, error_rate, [_code_for(i) for i in range(num_airports)],
        seed=seed + 2,
    )
    air_time, air_time_error_rows = inject_pair_swaps(
        air_time_clean, error_rate, seed=seed + 3
    )

    taxi_out = [rng.randrange(5, 45) for _ in range(num_rows)]
    carrier_group = [idx // 4 for idx in airline_idx]

    columns: Dict[str, List[object]] = {
        "flightDate": flight_date,
        "airline": [_code_for(i, 2) for i in airline_idx],
        "originAirportId": origin_airport_id,
        "iataCode": iata_code,
        "destAirportId": [10000 + idx * 7 for idx in dest_idx],
        "distance": distance,
        "airTime": air_time,
        "arrivalDelay": arrival_delay,
        "lateAircraftDelay": late_aircraft_delay,
        "depTime": dep_time,
        # -- attributes 11..35: derived / weakly correlated extras ------------
        "carrierGroup": carrier_group,
        "taxiOut": taxi_out,
        "elapsedTime": [a + t for a, t in zip(air_time_clean, taxi_out)],
        "distanceGroup": [d // 250 for d in distance],
        "arrTime": [(d + a) % 2400 for d, a in zip(dep_time, air_time_clean)],
        "securityDelay": [max(0, int(rng.gauss(0, 2))) for _ in range(num_rows)],
        "weatherDelay": [max(0, int(rng.gauss(2, 6))) for _ in range(num_rows)],
        "nasDelay": [max(0, int(rng.gauss(4, 8))) for _ in range(num_rows)],
        "cancelled": [1 if rng.random() < 0.02 else 0 for _ in range(num_rows)],
        "diverted": [1 if rng.random() < 0.01 else 0 for _ in range(num_rows)],
        "flightNum": [rng.randrange(1, 7000) for _ in range(num_rows)],
        "tailNum": ["N" + str(rng.randrange(100, 999)) for _ in range(num_rows)],
        "originState": [_code_for(idx % 50, 2) for idx in origin_idx],
        "destState": [_code_for(idx % 50, 2) for idx in dest_idx],
        "originCityId": [30000 + idx * 3 for idx in origin_idx],
        "destCityId": [30000 + idx * 3 for idx in dest_idx],
        "quarter": [(d // 100) % 100 // 4 + 1 for d in flight_date],
        "month": [(d // 100) % 100 for d in flight_date],
        "dayOfMonth": [d % 100 for d in flight_date],
        "dayOfWeek": [d % 7 for d in flight_date],
        "year": [d // 10000 for d in flight_date],
        "depDelay": [max(0, int(v * 0.8)) for v in arrival_delay_clean],
        "wheelsOff": [(d + t) % 2400 for d, t in zip(dep_time, taxi_out)],
        "wheelsOn": [(d + a - 5) % 2400 for d, a in zip(dep_time, air_time_clean)],
        "crsElapsedTime": [a + 15 for a in air_time_clean],
    }

    names = list(columns)
    if num_attributes > len(names):
        raise ValueError(
            f"flight-like generator supports at most {len(names)} attributes, "
            f"got {num_attributes}"
        )
    selected = names[:num_attributes]
    relation = Relation.from_columns({n: columns[n] for n in selected})

    planted = []
    if {"arrivalDelay", "lateAircraftDelay"} <= set(selected):
        planted.append(
            PlantedOC("arrivalDelay", "lateAircraftDelay",
                      approx_rows=frozenset(delay_error_rows))
        )
    if {"originAirportId", "iataCode"} <= set(selected):
        planted.append(
            PlantedOC("originAirportId", "iataCode",
                      approx_rows=frozenset(iata_error_rows))
        )
    if {"distance", "airTime"} <= set(selected):
        planted.append(
            PlantedOC("distance", "airTime",
                      approx_rows=frozenset(air_time_error_rows))
        )
    return GeneratedWorkload(
        relation=relation,
        planted_ocs=planted,
        description=(
            f"flight-like synthetic workload ({num_rows} rows x "
            f"{num_attributes} attributes, error_rate={error_rate}, seed={seed})"
        ),
    )


# ---------------------------------------------------------------------------
# ncvoter-like generator
# ---------------------------------------------------------------------------


def generate_ncvoter_like(
    num_rows: int,
    num_attributes: int = 10,
    error_rate: float = 0.1,
    seed: int = 0,
) -> GeneratedWorkload:
    """Generate a voter-registration-like relation.

    Planted approximate OCs:

    * ``municipalityAbbrv ~ municipalityDesc`` — abbreviations follow the
      alphabetical order of the full names except for a few irregular ones
      ("Charlotte" -> "CLT"), matching the paper's Exp-4 example,
    * ``countyId ~ zipCode`` — ZIP codes are assigned in county order except
      for a fraction of mis-entered codes,
    * ``streetAddress ~ mailAddress`` — mail address mirrors the street
      address except for a fraction of voters using PO boxes.

    The ``birthYear`` / ``age`` columns form an exact *inverse* relationship
    (a bidirectional OD, which the unidirectional canonical OC framework
    deliberately does not report); they are included to exercise that
    negative case.
    """
    if num_rows <= 0:
        raise ValueError("num_rows must be positive")
    rng = random.Random(seed)

    num_counties = 100
    num_municipalities = max(20, min(500, num_rows // 50 + 20))

    county_idx = _zipf_choices(rng, num_counties, num_rows)
    municipality_idx = _zipf_choices(rng, num_municipalities, num_rows)

    municipality_desc_clean = [f"CITY_{_code_for(idx)}" for idx in municipality_idx]
    municipality_abbrv_clean = [_code_for(idx) for idx in municipality_idx]

    birth_year = [1930 + rng.randrange(0, 75) for _ in range(num_rows)]
    age = [2020 - year for year in birth_year]
    zip_clean = [27000 + c * 5 + m % 5 for c, m in zip(county_idx, municipality_idx)]

    street_number = [rng.randrange(1, 9999) for _ in range(num_rows)]
    street_address_clean = [
        f"{num:05d} MAIN ST {_code_for(c, 2)}" for num, c in
        zip(street_number, county_idx)
    ]
    mail_address_clean = list(street_address_clean)

    registration_number = list(range(100000, 100000 + num_rows))
    rng.shuffle(registration_number)

    municipality_abbrv, abbrv_error_rows = inject_value_replacements(
        municipality_abbrv_clean, error_rate,
        [_code_for(i) for i in range(num_municipalities)], seed=seed + 11,
    )
    zip_code, zip_error_rows = inject_value_replacements(
        zip_clean, error_rate, zip_clean, seed=seed + 12,
    )
    mail_address, mail_error_rows = inject_value_replacements(
        mail_address_clean, error_rate,
        [f"PO BOX {rng.randrange(1, 999):04d}" for _ in range(50)], seed=seed + 13,
    )

    party_pool = ["DEM", "REP", "UNA", "LIB", "GRE"]
    precinct = [f"P{c:03d}-{m % 20:02d}" for c, m in zip(county_idx, municipality_idx)]

    columns: Dict[str, List[object]] = {
        "countyId": county_idx,
        "countyDesc": [f"COUNTY_{_code_for(idx, 2)}" for idx in county_idx],
        "municipalityDesc": municipality_desc_clean,
        "municipalityAbbrv": municipality_abbrv,
        "birthYear": birth_year,
        "age": age,
        "registrationNumber": registration_number,
        "streetAddress": street_address_clean,
        "mailAddress": mail_address,
        "zipCode": zip_code,
        # -- attributes 11..30 -------------------------------------------------
        "precinct": precinct,
        "party": [party_pool[_zipf_choices(rng, len(party_pool), 1)[0]]
                  for _ in range(num_rows)],
        "gender": [rng.choice(["M", "F", "U"]) for _ in range(num_rows)],
        "race": [rng.choice(["W", "B", "A", "I", "O", "U"]) for _ in range(num_rows)],
        "ethnicity": [rng.choice(["HL", "NL", "UN"]) for _ in range(num_rows)],
        "status": [rng.choice(["ACTIVE", "INACTIVE", "REMOVED"])
                   for _ in range(num_rows)],
        "registrationDate": [19800101 + rng.randrange(0, 400000)
                             for _ in range(num_rows)],
        "driverLicense": [1 if rng.random() < 0.8 else 0 for _ in range(num_rows)],
        "wardAbbrv": [f"W{m % 9}" for m in municipality_idx],
        "wardDesc": [f"WARD_{m % 9}" for m in municipality_idx],
        "schoolDistrict": [f"SD{c % 15:02d}" for c in county_idx],
        "fireDistrict": [f"FD{c % 25:02d}" for c in county_idx],
        "judicialDistrict": [f"JD{c % 30:02d}" for c in county_idx],
        "congressionalDistrict": [c % 13 + 1 for c in county_idx],
        "senateDistrict": [c % 50 + 1 for c in county_idx],
        "houseDistrict": [c % 120 + 1 for c in county_idx],
        "phoneAreaCode": [910 + c % 10 for c in county_idx],
        "birthState": [_code_for(rng.randrange(0, 50), 2) for _ in range(num_rows)],
        "voterStatusReason": [rng.choice(["VERIFIED", "CONFIRMATION", "MOVED"])
                              for _ in range(num_rows)],
        "absenteeFlag": [1 if rng.random() < 0.1 else 0 for _ in range(num_rows)],
    }

    names = list(columns)
    if num_attributes > len(names):
        raise ValueError(
            f"ncvoter-like generator supports at most {len(names)} attributes, "
            f"got {num_attributes}"
        )
    selected = names[:num_attributes]
    relation = Relation.from_columns({n: columns[n] for n in selected})

    planted = []
    if {"municipalityDesc", "municipalityAbbrv"} <= set(selected):
        planted.append(
            PlantedOC("municipalityDesc", "municipalityAbbrv",
                      approx_rows=frozenset(abbrv_error_rows))
        )
    if {"countyId", "zipCode"} <= set(selected):
        planted.append(
            PlantedOC("countyId", "zipCode", approx_rows=frozenset(zip_error_rows))
        )
    if {"streetAddress", "mailAddress"} <= set(selected):
        planted.append(
            PlantedOC("streetAddress", "mailAddress",
                      approx_rows=frozenset(mail_error_rows))
        )
    return GeneratedWorkload(
        relation=relation,
        planted_ocs=planted,
        description=(
            f"ncvoter-like synthetic workload ({num_rows} rows x "
            f"{num_attributes} attributes, error_rate={error_rate}, seed={seed})"
        ),
    )


# ---------------------------------------------------------------------------
# Fully controlled planted-OC generator (used for correctness experiments)
# ---------------------------------------------------------------------------


def generate_planted_oc_table(
    num_rows: int,
    approximation_factor: float,
    num_context_groups: int = 1,
    extra_attributes: int = 0,
    seed: int = 0,
) -> GeneratedWorkload:
    """Generate a table where one OC holds with an exact approximation factor.

    The relation has attributes ``ctx`` (optional context with
    ``num_context_groups`` groups), ``a`` and ``b`` such that the minimal
    removal set of ``{ctx}: a ~ b`` (or ``{}: a ~ b`` when
    ``num_context_groups == 1``) has *exactly*
    ``round(approximation_factor * num_rows)`` tuples: the perturbed rows'
    ``b`` values are pushed below every clean value that follows them, so
    each perturbed row must be removed and removing them suffices.
    """
    if not 0.0 <= approximation_factor < 1.0:
        raise ValueError("approximation_factor must be in [0, 1)")
    rng = random.Random(seed)
    num_bad = int(round(approximation_factor * num_rows))

    ctx = [i % num_context_groups for i in range(num_rows)]
    a_values = list(range(num_rows))
    # Clean b: strictly increasing with a within each context group.
    b_values = [value * 10 + 5 for value in a_values]

    # Never perturb the first row of a context group: a perturbed row with no
    # clean predecessor in its group could still start an LNDS, which would
    # make the minimal removal set one smaller than the planted count.
    eligible = range(num_context_groups, num_rows)
    if num_bad > len(eligible):
        raise ValueError(
            "approximation_factor too large for the number of context groups"
        )
    bad_rows = sorted(rng.sample(eligible, num_bad)) if num_bad else []
    for row in bad_rows:
        # Push b below every clean value so the row is in no LNDS unless it is
        # the only row of its group.
        b_values[row] = -1 - row

    columns: Dict[str, List[object]] = {"ctx": ctx, "a": a_values, "b": b_values}
    for extra in range(extra_attributes):
        columns[f"x{extra}"] = [rng.randrange(0, 5) for _ in range(num_rows)]
    relation = Relation.from_columns(columns)
    context = ("ctx",) if num_context_groups > 1 else ()
    planted = [PlantedOC("a", "b", context=context, approx_rows=frozenset(bad_rows))]
    return GeneratedWorkload(
        relation=relation,
        planted_ocs=planted,
        description=(
            f"planted OC workload ({num_rows} rows, factor={approximation_factor}, "
            f"groups={num_context_groups}, seed={seed})"
        ),
    )


def generate_random_table(
    num_rows: int,
    num_attributes: int,
    cardinality: int = 10,
    seed: int = 0,
) -> Relation:
    """Generate a uniformly random categorical table (no planted structure).

    Used as an adversarial workload: with independent uniform columns few
    dependencies hold, so the discovery framework's pruning gets little
    traction and validation cost dominates — the regime where the optimal
    and iterative validators differ the most.
    """
    rng = random.Random(seed)
    columns = {
        f"c{index}": [rng.randrange(0, cardinality) for _ in range(num_rows)]
        for index in range(num_attributes)
    }
    return Relation.from_columns(columns)


def generate_monotone_table(
    num_rows: int, num_attributes: int, noise: float = 0.0, seed: int = 0
) -> Relation:
    """Generate a table whose columns are all monotone in a hidden key.

    With ``noise == 0`` every pair of attributes is order compatible in the
    empty context, which maximises the number of valid OCs — the stress case
    for result bookkeeping and minimality pruning.
    """
    rng = random.Random(seed)
    base = sorted(rng.randrange(0, num_rows * 3) for _ in range(num_rows))
    columns: Dict[str, List[object]] = {}
    for index in range(num_attributes):
        scale = index + 1
        column = [value * scale + index for value in base]
        if noise > 0:
            column, _ = inject_pair_swaps(column, noise, seed=seed + index)
        columns[f"m{index}"] = column
    return Relation.from_columns(columns)
