"""CSV input/output for relations.

The paper's evaluation datasets (``flight`` from the Bureau of
Transportation Statistics and ``ncvoter`` from the North Carolina State
Board of Elections) are distributed as CSV files; this module provides the
loader a user would point at such files, plus a writer used by the synthetic
generators so that generated workloads can be inspected and re-used.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.dataset.relation import Relation
from repro.dataset.schema import AttributeType


def _parse_cell(text: str) -> object:
    """Parse a CSV cell into ``None`` / ``int`` / ``float`` / ``str``."""
    stripped = text.strip()
    if stripped == "" or stripped.upper() in {"NULL", "NA", "N/A"}:
        return None
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        pass
    return stripped


def read_csv(
    path: Union[str, Path],
    delimiter: str = ",",
    max_rows: Optional[int] = None,
    attributes: Optional[Sequence[str]] = None,
) -> Relation:
    """Load a CSV file with a header row into a :class:`Relation`.

    Parameters
    ----------
    path:
        File to read.
    delimiter:
        Field delimiter, defaults to ``","``.
    max_rows:
        Optional cap on the number of data rows read (the paper's
        experiments routinely use prefixes of the full datasets).
    attributes:
        Optional subset (and ordering) of columns to keep.
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty; expected a header row") from None
        header = [h.strip() for h in header]
        rows: List[List[object]] = []
        for raw in reader:
            if max_rows is not None and len(rows) >= max_rows:
                break
            padded = list(raw) + [""] * (len(header) - len(raw))
            rows.append([_parse_cell(cell) for cell in padded[: len(header)]])
    relation = Relation.from_rows(rows, header)
    if attributes is not None:
        relation = relation.project(list(attributes))
    return relation


def read_csv_text(
    text: str,
    delimiter: str = ",",
    max_rows: Optional[int] = None,
) -> Relation:
    """Parse in-memory CSV text (header row first) into a :class:`Relation`.

    Same cell parsing and padding rules as :func:`read_csv`; used by the
    serve layer's dataset-upload endpoint, where the CSV arrives as a
    request body rather than a file on disk.
    """
    import io

    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("CSV body is empty; expected a header row") from None
    header = [h.strip() for h in header]
    if not any(header):
        raise ValueError("CSV header row is empty")
    rows: List[List[object]] = []
    for raw in reader:
        if max_rows is not None and len(rows) >= max_rows:
            break
        padded = list(raw) + [""] * (len(header) - len(raw))
        rows.append([_parse_cell(cell) for cell in padded[: len(header)]])
    return Relation.from_rows(rows, header)


def write_csv(relation: Relation, path: Union[str, Path], delimiter: str = ",") -> None:
    """Write ``relation`` to ``path`` as CSV with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(relation.attribute_names)
        for row in relation.iter_rows():
            writer.writerow(["" if v is None else v for v in row])


def infer_types_summary(relation: Relation) -> List[str]:
    """Return a human-readable per-column type summary (used by the CLI)."""
    lines = []
    for attribute in relation.schema:
        values = relation.column(attribute.name)
        inferred = AttributeType.infer(values)
        nulls = sum(1 for v in values if v is None)
        distinct = len({v for v in values if v is not None})
        lines.append(
            f"{attribute.name}: type={inferred.value}, distinct={distinct}, nulls={nulls}"
        )
    return lines
