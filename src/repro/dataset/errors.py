"""Error injection utilities.

The paper motivates approximate dependencies with dirty data: a handful of
cells carry wrong values (e.g. the ``perc`` column of Table 1 where ``1%``
was entered as ``10%`` — a concatenated zero), so the intended dependency
only holds after removing a few tuples.  The synthetic workload generators
use these helpers to plant such exceptions with a *known* rate, which is
what lets the benchmarks and tests check approximation factors against the
planted ground truth.

Every function returns a new column list together with the set of row
indices whose cells were perturbed; the inputs are never mutated.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Set, Tuple


def _pick_rows(num_rows: int, rate: float, rng: random.Random) -> List[int]:
    """Choose ``round(rate * num_rows)`` distinct row indices."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"error rate must be in [0, 1], got {rate}")
    count = int(round(rate * num_rows))
    count = min(count, num_rows)
    if count == 0:
        return []
    return sorted(rng.sample(range(num_rows), count))


def inject_scaling_errors(
    values: Sequence[float],
    rate: float,
    factor: float = 10.0,
    seed: int = 0,
) -> Tuple[List[float], Set[int]]:
    """Multiply a fraction ``rate`` of cells by ``factor``.

    Models the "concatenated zero" data-entry error of Table 1 (1% recorded
    as 10%).  Scaling errors create swaps against any attribute the column
    was monotone in, so the intended OC degrades into an AOC whose
    approximation factor is approximately ``rate``.
    """
    rng = random.Random(seed)
    rows = _pick_rows(len(values), rate, rng)
    new_values = list(values)
    for row in rows:
        new_values[row] = new_values[row] * factor
    return new_values, set(rows)


def inject_value_replacements(
    values: Sequence[object],
    rate: float,
    replacement_pool: Sequence[object],
    seed: int = 0,
) -> Tuple[List[object], Set[int]]:
    """Replace a fraction ``rate`` of cells with values drawn from a pool.

    Models categorical typos and mis-mapped codes (e.g. an airport id mapped
    to the wrong IATA code), which break otherwise clean OCs between code
    columns.
    """
    rng = random.Random(seed)
    rows = _pick_rows(len(values), rate, rng)
    new_values = list(values)
    for row in rows:
        new_values[row] = rng.choice(list(replacement_pool))
    return new_values, set(rows)


def inject_pair_swaps(
    values: Sequence[object], rate: float, seed: int = 0
) -> Tuple[List[object], Set[int]]:
    """Swap the cells of randomly chosen disjoint row pairs.

    Each selected pair exchanges its values; in a monotone column this
    creates exactly the "swap" violations of Definition 2.5.  ``rate`` is the
    fraction of rows participating in a swap (so ``rate/2`` pairs).
    """
    rng = random.Random(seed)
    rows = _pick_rows(len(values), rate, rng)
    rng.shuffle(rows)
    new_values = list(values)
    touched: Set[int] = set()
    for i in range(0, len(rows) - 1, 2):
        first, second = rows[i], rows[i + 1]
        new_values[first], new_values[second] = new_values[second], new_values[first]
        touched.add(first)
        touched.add(second)
    return new_values, touched


def inject_nulls(
    values: Sequence[object], rate: float, seed: int = 0
) -> Tuple[List[object], Set[int]]:
    """Blank out a fraction ``rate`` of cells (set them to ``None``)."""
    rng = random.Random(seed)
    rows = _pick_rows(len(values), rate, rng)
    new_values = list(values)
    for row in rows:
        new_values[row] = None
    return new_values, set(rows)


def inject_split_errors(
    values: Sequence[object],
    group_keys: Sequence[object],
    rate: float,
    seed: int = 0,
) -> Tuple[List[object], Set[int]]:
    """Break constancy of ``values`` within groups defined by ``group_keys``.

    For a fraction ``rate`` of rows, the cell is replaced with the value of
    a row from a *different* group, creating split violations (Definition
    2.6) against the FD ``group_keys -> values`` while leaving the overall
    value distribution unchanged.
    """
    rng = random.Random(seed)
    rows = _pick_rows(len(values), rate, rng)
    new_values = list(values)
    num_rows = len(values)
    touched: Set[int] = set()
    for row in rows:
        for _ in range(10):  # a handful of attempts to find a different group
            donor = rng.randrange(num_rows)
            if group_keys[donor] != group_keys[row]:
                new_values[row] = values[donor]
                touched.add(row)
                break
    return new_values, touched
