"""Columnar relation (table) instances.

A :class:`Relation` stores a table column-wise.  Raw cell values stay as the
Python objects they were constructed with (``int``, ``float``, ``str``,
``bool`` or ``None``); the order-dependency machinery never compares raw
values directly but works on the order-preserving integer encoding produced
by :meth:`Relation.encoded`.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.dataset.schema import Attribute, AttributeType, Schema


class Relation:
    """An immutable, column-oriented table instance.

    Parameters
    ----------
    schema:
        The relation's schema.  Column order follows the schema.
    columns:
        A mapping from attribute name to the list of cell values of that
        column.  Every column must have the same length.
    """

    def __init__(self, schema: Schema, columns: Mapping[str, Sequence[object]]):
        if set(columns) != set(schema.names):
            missing = set(schema.names) - set(columns)
            extra = set(columns) - set(schema.names)
            raise ValueError(
                f"columns do not match schema (missing={sorted(missing)}, "
                f"unexpected={sorted(extra)})"
            )
        lengths = {len(columns[name]) for name in schema.names}
        if len(lengths) > 1:
            raise ValueError(f"columns have inconsistent lengths: {sorted(lengths)}")
        self._schema = schema
        self._columns: Dict[str, List[object]] = {
            name: list(columns[name]) for name in schema.names
        }
        self._num_rows = lengths.pop() if lengths else 0
        self._encoded: Dict[str, object] = {}  # backend name -> EncodedRelation

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Sequence[object]],
        attribute_names: Sequence[str],
        types: Optional[Sequence[AttributeType]] = None,
    ) -> "Relation":
        """Build a relation from row tuples and attribute names.

        Types are inferred per column when ``types`` is not given.
        """
        columns: Dict[str, List[object]] = {name: [] for name in attribute_names}
        for row in rows:
            if len(row) != len(attribute_names):
                raise ValueError(
                    f"row has {len(row)} values, expected {len(attribute_names)}"
                )
            for name, value in zip(attribute_names, row):
                columns[name].append(value)
        if types is None:
            types = [AttributeType.infer(columns[name]) for name in attribute_names]
        schema = Schema(
            [Attribute(name, t) for name, t in zip(attribute_names, types)]
        )
        return cls(schema, columns)

    @classmethod
    def from_dicts(
        cls, records: Sequence[Mapping[str, object]], attribute_names: Optional[Sequence[str]] = None
    ) -> "Relation":
        """Build a relation from a sequence of ``{attribute: value}`` records.

        Missing keys become ``None``.  Attribute order defaults to the order
        of first appearance across the records.
        """
        if attribute_names is None:
            seen: List[str] = []
            for record in records:
                for key in record:
                    if key not in seen:
                        seen.append(key)
            attribute_names = seen
        rows = [[record.get(name) for name in attribute_names] for record in records]
        return cls.from_rows(rows, attribute_names)

    @classmethod
    def from_columns(
        cls,
        columns: Mapping[str, Sequence[object]],
        types: Optional[Mapping[str, AttributeType]] = None,
    ) -> "Relation":
        """Build a relation directly from named columns."""
        names = list(columns)
        if types is None:
            inferred = [AttributeType.infer(columns[n]) for n in names]
        else:
            inferred = [types.get(n, AttributeType.infer(columns[n])) for n in names]
        schema = Schema([Attribute(n, t) for n, t in zip(names, inferred)])
        return cls(schema, columns)

    # -- basic accessors -------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The relation's schema."""
        return self._schema

    @property
    def attribute_names(self) -> List[str]:
        """Attribute names in schema order."""
        return self._schema.names

    @property
    def num_rows(self) -> int:
        """Number of tuples in the relation."""
        return self._num_rows

    @property
    def num_attributes(self) -> int:
        """Number of attributes in the relation."""
        return len(self._schema)

    def __len__(self) -> int:
        return self._num_rows

    def column(self, name: str) -> List[object]:
        """Return the value list of column ``name`` (a defensive copy is *not*
        made; callers must not mutate the result)."""
        if name not in self._columns:
            raise KeyError(f"attribute {name!r} not in relation {self.attribute_names}")
        return self._columns[name]

    def row(self, index: int) -> Tuple[object, ...]:
        """Return the tuple at position ``index`` in schema order."""
        if not 0 <= index < self._num_rows:
            raise IndexError(f"row index {index} out of range [0, {self._num_rows})")
        return tuple(self._columns[name][index] for name in self._schema.names)

    def value(self, index: int, name: str) -> object:
        """Return the value of attribute ``name`` in row ``index``."""
        return self.column(name)[index]

    def iter_rows(self) -> Iterator[Tuple[object, ...]]:
        """Iterate over rows as tuples in schema order."""
        for i in range(self._num_rows):
            yield self.row(i)

    def to_dicts(self) -> List[Dict[str, object]]:
        """Materialise the relation as a list of ``{attribute: value}`` dicts."""
        names = self._schema.names
        return [
            {name: self._columns[name][i] for name in names}
            for i in range(self._num_rows)
        ]

    # -- derived relations -----------------------------------------------------

    def project(self, names: Sequence[str]) -> "Relation":
        """Return a relation restricted to the attributes in ``names``."""
        schema = self._schema.project(names)
        return Relation(schema, {n: self._columns[n] for n in names})

    def take(self, indices: Iterable[int]) -> "Relation":
        """Return a relation containing exactly the rows at ``indices``."""
        idx = list(indices)
        columns = {
            name: [self._columns[name][i] for i in idx] for name in self._schema.names
        }
        return Relation(self._schema, columns)

    def head(self, n: int) -> "Relation":
        """Return the first ``n`` rows."""
        return self.take(range(min(n, self._num_rows)))

    def drop_rows(self, indices: Iterable[int]) -> "Relation":
        """Return a relation with the rows at ``indices`` removed.

        This is the ``r \\ s`` operation used throughout the paper's
        removal-set semantics.
        """
        removed = set(indices)
        keep = [i for i in range(self._num_rows) if i not in removed]
        return self.take(keep)

    def sample(self, n: int, seed: int = 0) -> "Relation":
        """Return a uniform sample (without replacement) of ``n`` rows."""
        if n >= self._num_rows:
            return self
        rng = random.Random(seed)
        idx = sorted(rng.sample(range(self._num_rows), n))
        return self.take(idx)

    def concat(self, other: "Relation") -> "Relation":
        """Append ``other``'s rows; schemas must have identical names."""
        if other.attribute_names != self.attribute_names:
            raise ValueError("cannot concatenate relations with different schemas")
        columns = {
            name: self._columns[name] + list(other.column(name))
            for name in self._schema.names
        }
        return Relation(self._schema, columns)

    def with_column(self, name: str, values: Sequence[object],
                    type: Optional[AttributeType] = None) -> "Relation":
        """Return a relation extended with (or replacing) column ``name``."""
        if len(values) != self._num_rows:
            raise ValueError(
                f"new column has {len(values)} values, expected {self._num_rows}"
            )
        if type is None:
            type = AttributeType.infer(values)
        attrs = [a for a in self._schema.attributes if a.name != name]
        attrs.append(Attribute(name, type))
        columns = {a.name: self._columns.get(a.name, []) for a in attrs}
        columns[name] = list(values)
        return Relation(Schema(attrs), columns)

    # -- encoding --------------------------------------------------------------

    def encoded(self, backend=None):
        """Return (and cache) the order-preserving integer encoding.

        ``backend`` selects the compute backend (an instance, a name such as
        ``"numpy"``, or ``None`` for the environment default); encodings are
        cached per backend.  See
        :class:`repro.dataset.encoding.EncodedRelation`.
        """
        from repro.backend import resolve_backend

        resolved = resolve_backend(backend)
        cached = self._encoded.get(resolved.name)
        if cached is None:
            from repro.dataset.encoding import EncodedRelation

            cached = EncodedRelation.from_relation(self, resolved)
            self._encoded[resolved.name] = cached
        return cached

    def adopt_encoding(self, encoded) -> None:
        """Seed the per-backend encoding cache with a precomputed encoding.

        Used by the incremental-maintenance path: a relation produced by
        :meth:`concat` adopts the delta-extended
        :class:`~repro.dataset.encoding.EncodedRelation` so the appended
        table never pays a cold re-encode.  The encoding must describe this
        relation (same schema, same number of rows).
        """
        if encoded.num_rows != self._num_rows:
            raise ValueError(
                f"encoding has {encoded.num_rows} rows, "
                f"relation has {self._num_rows}"
            )
        if encoded.schema.names != self._schema.names:
            raise ValueError("encoding schema does not match the relation")
        self._encoded[encoded.backend.name] = encoded

    # -- dunder / presentation -------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.attribute_names == other.attribute_names
            and all(
                self._columns[n] == other._columns[n] for n in self.attribute_names
            )
        )

    def __repr__(self) -> str:
        return (
            f"Relation({self._num_rows} rows x {self.num_attributes} attributes: "
            f"{self.attribute_names})"
        )

    def to_pretty_string(self, max_rows: int = 20) -> str:
        """Render the relation as a fixed-width text table (for examples/CLI)."""
        names = self._schema.names
        shown = min(max_rows, self._num_rows)
        cells = [[str(self._columns[n][i]) for n in names] for i in range(shown)]
        widths = [
            max(len(names[j]), *(len(row[j]) for row in cells)) if cells else len(names[j])
            for j in range(len(names))
        ]
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        sep = "-+-".join("-" * w for w in widths)
        lines = [header, sep]
        for row in cells:
            lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
        if shown < self._num_rows:
            lines.append(f"... ({self._num_rows - shown} more rows)")
        return "\n".join(lines)
