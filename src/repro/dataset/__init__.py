"""Dataset substrate: relations, schemas, encodings, partitions, generators.

The discovery and validation algorithms in this package never look at raw
values directly.  A :class:`~repro.dataset.relation.Relation` is encoded once
into dense, order-preserving integer ranks per column
(:class:`~repro.dataset.encoding.EncodedRelation`), and every algorithm then
operates on those ranks and on equivalence-class partitions
(:class:`~repro.dataset.partition.Partition`).
"""

from repro.dataset.schema import Attribute, AttributeType, Schema
from repro.dataset.relation import Relation
from repro.dataset.encoding import EncodedRelation, encode_column
from repro.dataset.partition import Partition, PartitionCache
from repro.dataset.csv_io import read_csv, write_csv

__all__ = [
    "Attribute",
    "AttributeType",
    "EncodedRelation",
    "Partition",
    "PartitionCache",
    "Relation",
    "Schema",
    "encode_column",
    "read_csv",
    "write_csv",
]
