"""Schemas and attributes.

A :class:`Schema` is an ordered collection of named, typed
:class:`Attribute` objects.  Attribute order matters only for presentation
(column order in a relation); the dependency model works with attribute
*names* and converts them to column indices internally.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple


class AttributeType(enum.Enum):
    """Logical type of an attribute.

    The type determines how raw values are compared when building the
    order-preserving encoding:

    * ``INTEGER`` and ``FLOAT`` compare numerically,
    * ``STRING`` compares lexicographically,
    * ``BOOLEAN`` compares ``False < True``.

    Missing values (``None``) are allowed for every type and always sort
    before any present value, mirroring ``NULLS FIRST`` semantics.
    """

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    BOOLEAN = "boolean"

    @classmethod
    def infer(cls, values: Iterable[object]) -> "AttributeType":
        """Infer the narrowest type that can represent ``values``.

        The inference ladder is ``BOOLEAN -> INTEGER -> FLOAT -> STRING``.
        ``None`` entries are ignored; an all-``None`` column is typed as
        ``STRING``.
        """
        saw_value = False
        could_be_bool = True
        could_be_int = True
        could_be_float = True
        for value in values:
            if value is None:
                continue
            saw_value = True
            if not isinstance(value, bool):
                could_be_bool = False
            if isinstance(value, bool) or not isinstance(value, int):
                could_be_int = False
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                could_be_float = False
            if not (could_be_bool or could_be_int or could_be_float):
                return cls.STRING
        if not saw_value:
            return cls.STRING
        if could_be_bool:
            return cls.BOOLEAN
        if could_be_int:
            return cls.INTEGER
        if could_be_float:
            return cls.FLOAT
        return cls.STRING


@dataclass(frozen=True)
class Attribute:
    """A single named, typed column of a relation."""

    name: str
    type: AttributeType = AttributeType.STRING
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")
        if not isinstance(self.type, AttributeType):
            raise TypeError(f"type must be an AttributeType, got {self.type!r}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True)
class Schema:
    """An ordered, duplicate-free collection of attributes."""

    attributes: Tuple[Attribute, ...]
    _index: dict = field(init=False, repr=False, compare=False, hash=False)

    def __init__(self, attributes: Sequence[Attribute]) -> None:
        attrs = tuple(attributes)
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate attribute names in schema: {dupes}")
        object.__setattr__(self, "attributes", attrs)
        object.__setattr__(self, "_index", {a.name: i for i, a in enumerate(attrs)})

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_names(
        cls,
        names: Sequence[str],
        types: Optional[Sequence[AttributeType]] = None,
    ) -> "Schema":
        """Build a schema from bare attribute names (all STRING by default)."""
        if types is None:
            types = [AttributeType.STRING] * len(names)
        if len(types) != len(names):
            raise ValueError("names and types must have the same length")
        return cls([Attribute(n, t) for n, t in zip(names, types)])

    # -- lookups ---------------------------------------------------------------

    @property
    def names(self) -> List[str]:
        """Attribute names, in schema order."""
        return [a.name for a in self.attributes]

    def index_of(self, name: str) -> int:
        """Return the column index of ``name``; raise ``KeyError`` if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(
                f"attribute {name!r} not in schema {self.names}"
            ) from None

    def indices_of(self, names: Iterable[str]) -> Tuple[int, ...]:
        """Return column indices for ``names`` in the given order."""
        return tuple(self.index_of(n) for n in names)

    def attribute(self, name: str) -> Attribute:
        """Return the :class:`Attribute` named ``name``."""
        return self.attributes[self.index_of(name)]

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __getitem__(self, index: int) -> Attribute:
        return self.attributes[index]

    # -- derived schemas -------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Return a new schema restricted to ``names`` (in the given order)."""
        return Schema([self.attribute(n) for n in names])

    def rename(self, mapping: dict) -> "Schema":
        """Return a new schema with attributes renamed according to ``mapping``."""
        return Schema(
            [
                Attribute(mapping.get(a.name, a.name), a.type, a.nullable)
                for a in self.attributes
            ]
        )

    def __hash__(self) -> int:
        return hash(self.attributes)
