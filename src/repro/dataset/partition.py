"""Equivalence-class partitions (position list indexes).

Definition 2.8 of the paper: an attribute set ``X`` partitions the tuples of
a table into equivalence classes ``E(t_X) = {s | s_X = t_X}``; the partition
``Pi_X`` is the set of all such classes.  The canonical OD framework
validates every candidate *within* the equivalence classes of its context,
so partitions are the central data structure of the discovery framework.

Following TANE and FASTOD, partitions are stored *stripped*: singleton
classes are dropped because a class with a single tuple can contain neither
a swap nor a split.  Partition products (``Pi_{X ∪ Y}`` from ``Pi_X`` and
``Pi_Y``) are computed with the standard probe-table refinement algorithm,
which is linear in the number of tuples appearing in the stripped classes.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.caching import BoundedLRU


class Partition:
    """A stripped partition of row indices into equivalence classes.

    Attributes
    ----------
    classes:
        List of equivalence classes with at least two members.  Each class
        is a sorted list of row indices.
    num_rows:
        Total number of rows in the underlying relation (including rows in
        stripped singleton classes).
    """

    __slots__ = ("classes", "num_rows", "_columnar")

    def __init__(self, classes: Sequence[Sequence[int]], num_rows: int) -> None:
        self.classes: List[List[int]] = [sorted(c) for c in classes if len(c) >= 2]
        self.classes.sort(key=lambda c: c[0])
        self.num_rows = num_rows
        # Backend-owned columnar view of `classes` (e.g. concatenated NumPy
        # row/class-id arrays), built lazily by the first vectorised kernel
        # that touches this partition and reused by all later candidates
        # sharing the context.  Not part of equality/repr.
        self._columnar = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def single(cls, ranks: Sequence[int]) -> "Partition":
        """Build the partition of a single encoded column."""
        groups: Dict[int, List[int]] = {}
        for row, rank in enumerate(ranks):
            groups.setdefault(rank, []).append(row)
        return cls(list(groups.values()), len(ranks))

    @classmethod
    def unit(cls, num_rows: int) -> "Partition":
        """Partition of the empty attribute set: one class with every row.

        This is the context of level-2 OC candidates such as ``{}: A ~ B``
        and of level-1 OFD candidates such as ``{}: [] -> A``.
        """
        if num_rows <= 1:
            return cls([], num_rows)
        return cls([list(range(num_rows))], num_rows)

    @classmethod
    def from_row_keys(cls, keys: Sequence[Tuple[int, ...]]) -> "Partition":
        """Build a partition by grouping rows with equal key tuples."""
        groups: Dict[Tuple[int, ...], List[int]] = {}
        for row, key in enumerate(keys):
            groups.setdefault(key, []).append(row)
        return cls(list(groups.values()), len(keys))

    @classmethod
    def _from_sorted_classes(
        cls, classes: List[List[int]], num_rows: int
    ) -> "Partition":
        """Internal fast path: adopt class lists whose rows are already
        sorted ascending and all of length >= 2, skipping the per-class
        normalisation (the delta-patching path produces exactly this)."""
        partition = cls.__new__(cls)
        classes.sort(key=lambda rows: rows[0])
        partition.classes = classes
        partition.num_rows = num_rows
        partition._columnar = None
        return partition

    # -- properties ------------------------------------------------------------

    @property
    def num_classes(self) -> int:
        """Number of (non-singleton) equivalence classes."""
        return len(self.classes)

    @property
    def num_grouped_rows(self) -> int:
        """Number of rows contained in non-singleton classes."""
        return sum(len(c) for c in self.classes)

    @property
    def num_singleton_rows(self) -> int:
        """Number of rows that form singleton classes (stripped away)."""
        return self.num_rows - self.num_grouped_rows

    def total_class_count(self) -> int:
        """Number of equivalence classes *including* singletons (``|Pi_X|``)."""
        return self.num_classes + self.num_singleton_rows

    def error_rows(self) -> int:
        """TANE's ``||Pi_X||`` error numerator: rows minus classes.

        This equals the minimal number of tuples to remove so that ``X``
        becomes a key.
        """
        return self.num_rows - self.total_class_count()

    def __iter__(self):
        return iter(self.classes)

    def __len__(self) -> int:
        return len(self.classes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return self.num_rows == other.num_rows and self.classes == other.classes

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Partition({self.num_classes} stripped classes over "
            f"{self.num_rows} rows)"
        )

    # -- refinement ------------------------------------------------------------

    def product(self, ranks: Sequence[int]) -> "Partition":
        """Refine this partition by an encoded column.

        ``self`` is ``Pi_X``; ``ranks`` is the rank column of an attribute
        ``A``.  The result is ``Pi_{X ∪ {A}}``, computed by splitting every
        class of ``Pi_X`` on the ranks of ``A``.
        """
        new_classes: List[List[int]] = []
        for cls_rows in self.classes:
            groups: Dict[int, List[int]] = {}
            for row in cls_rows:
                groups.setdefault(ranks[row], []).append(row)
            for group in groups.values():
                if len(group) >= 2:
                    new_classes.append(group)
        return Partition(new_classes, self.num_rows)

    def product_partition(self, other: "Partition") -> "Partition":
        """Compute ``Pi_{X ∪ Y}`` from ``Pi_X`` (self) and ``Pi_Y`` (other).

        Standard TANE probe-table algorithm on stripped partitions.
        """
        if self.num_rows != other.num_rows:
            raise ValueError("partitions are over relations of different sizes")
        class_of: Dict[int, int] = {}
        for class_id, rows in enumerate(other.classes):
            for row in rows:
                class_of[row] = class_id
        new_classes: List[List[int]] = []
        for rows in self.classes:
            groups: Dict[int, List[int]] = {}
            for row in rows:
                other_class = class_of.get(row)
                if other_class is None:
                    continue  # row is a singleton in `other`, so also in the product
                groups.setdefault(other_class, []).append(row)
            for group in groups.values():
                if len(group) >= 2:
                    new_classes.append(group)
        return Partition(new_classes, self.num_rows)

    def refines(self, other: "Partition") -> bool:
        """Return ``True`` iff every class of ``self`` is contained in a class
        of ``other`` (i.e. ``self`` is at least as fine as ``other``)."""
        class_of: Dict[int, int] = {}
        for class_id, rows in enumerate(other.classes):
            for row in rows:
                class_of[row] = class_id
        for rows in self.classes:
            owners = set()
            for row in rows:
                owner = class_of.get(row, ("singleton", row))
                owners.add(owner)
                if len(owners) > 1:
                    return False
        return True


class DeltaPatches:
    """Outcome of :meth:`PartitionCache.apply_delta`.

    ``affected`` — keys whose stripped classes changed; ``class_patches``
    maps each of them to ``(removed, added)`` class lists (what the delta
    replaced); ``dropped`` — keys evicted because nothing was left to patch
    them from.
    """

    __slots__ = ("affected", "dropped", "class_patches")

    def __init__(self) -> None:
        self.affected: Set[FrozenSet[int]] = set()
        self.dropped: Set[FrozenSet[int]] = set()
        self.class_patches: Dict[
            FrozenSet[int], Tuple[List[List[int]], List[List[int]]]
        ] = {}


def _class_diff(
    old_classes: Sequence[Sequence[int]], new_classes: Sequence[Sequence[int]]
) -> Tuple[List[List[int]], List[List[int]]]:
    """Symmetric difference of two class lists: ``(removed, added)``.

    Classes that survive a delta untouched appear in both lists and drop
    out, so downstream repair only ever re-runs kernels on classes whose
    membership genuinely changed.
    """
    old_set = {tuple(rows) for rows in old_classes}
    new_set = {tuple(rows) for rows in new_classes}
    removed = [list(rows) for rows in old_classes if tuple(rows) not in new_set]
    added = [list(rows) for rows in new_classes if tuple(rows) not in old_set]
    return removed, added


class PartitionCache:
    """Cache of partitions keyed by attribute-index sets.

    The level-wise lattice traversal requests the partition of many
    overlapping attribute sets; each partition is built once by refining a
    cached partition of a subset with one more single-attribute partition,
    as in the TANE / FASTOD implementations.

    Construction and refinement go through a pluggable compute backend
    (defaulting to the encoded relation's); every backend produces
    identical :class:`Partition` objects, so cache contents are
    backend-agnostic.

    ``max_entries`` bounds the number of retained partitions with LRU
    eviction (``None`` — the default — retains everything): long-lived
    sessions over wide schemas use it to cap the cache's O(rows)-per-context
    memory.  Evicted partitions are rebuilt on demand, so results never
    change; only :meth:`apply_delta`'s ability to patch (rather than drop)
    an entry depends on what is still cached.
    """

    def __init__(
        self, encoded_relation, backend=None, max_entries: Optional[int] = None
    ) -> None:
        from repro.backend import resolve_backend

        self._encoded = encoded_relation
        self._backend = resolve_backend(
            backend if backend is not None
            else getattr(encoded_relation, "backend", None)
        )
        self._cache: BoundedLRU = BoundedLRU(max_entries)
        self._hits = 0
        self._misses = 0

    @property
    def backend(self):
        """The compute backend used to build partitions."""
        return self._backend

    @property
    def num_rows(self) -> int:
        return self._encoded.num_rows

    @property
    def stats(self) -> Dict[str, int]:
        """Cache statistics (``hits``, ``misses``, ``entries``, ``evictions``)."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "entries": len(self._cache),
            "evictions": self._cache.evictions,
        }

    def cached_keys(self) -> Iterator[FrozenSet[int]]:
        """Iterate over the attribute-index sets currently cached."""
        return iter(list(self._cache))

    def get(self, attribute_indices: Iterable[int]) -> Partition:
        """Return ``Pi_X`` for the attribute-index set ``attribute_indices``."""
        key = frozenset(attribute_indices)
        cached = self._cache.get(key)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        partition = self._build(key)
        self._cache[key] = partition
        return partition

    def get_by_names(self, names: Iterable[str]) -> Partition:
        """Return ``Pi_X`` for attribute *names*."""
        indices = [self._encoded.schema.index_of(n) for n in names]
        return self.get(indices)

    def _build(self, key: FrozenSet[int]) -> Partition:
        if not key:
            return Partition.unit(self._encoded.num_rows)
        if len(key) == 1:
            (index,) = key
            return self._backend.partition_single(
                self._native_ranks(index), self._encoded.num_rows
            )
        # Prefer extending the largest cached proper subset; fall back to
        # refining attribute by attribute.
        best_subset: Optional[FrozenSet[int]] = None
        for cached_key in self._cache:
            if cached_key < key and (
                best_subset is None or len(cached_key) > len(best_subset)
            ):
                best_subset = cached_key
        if best_subset is None:
            ordered = sorted(key)
            partition = self.get(ordered[:1])
            remaining = ordered[1:]
        else:
            partition = self._cache[best_subset]
            remaining = sorted(key - best_subset)
        for index in remaining:
            partition = self._backend.partition_refine(
                partition, self._native_ranks(index)
            )
        return partition

    def _native_ranks(self, index: int):
        getter = getattr(self._encoded, "native_ranks_by_index", None)
        if getter is not None:
            return getter(index)
        return self._backend.to_native(self._encoded.ranks_by_index(index))

    def evict_level(self, level: int) -> None:
        """Drop cached partitions of attribute sets smaller than ``level``.

        The level-wise traversal only ever needs partitions from the two
        most recent levels; evicting older entries bounds memory on wide
        schemas, matching the original implementations.
        """
        for key in [k for k in self._cache if 0 < len(k) < level]:
            del self._cache[key]

    # -- incremental maintenance -------------------------------------------------

    def apply_delta(self, encoded_relation, old_num_rows: int) -> "DeltaPatches":
        """Rebind to an extended encoding and patch every cached partition.

        ``encoded_relation`` is the delta-encoded relation produced by
        :meth:`~repro.dataset.encoding.EncodedRelation.extend` (same schema,
        ``num_rows >= old_num_rows``).  Every cached partition is brought up
        to the new row count by a per-context merge: contexts are processed
        smallest-first, and a context ``X`` reuses the already-patched
        partition of a cached proper subset ``B`` — only ``B``-classes that
        contain an appended row can gain or change ``X``-classes (appending
        rows never splits an equivalence class), so only those classes are
        re-split on ``X \\ B``.  No full rebuild, and the stripped-away old
        singletons never need scanning: any old singleton that an appended
        row joins is already inside one of the touched ``B``-classes.

        The returned :class:`DeltaPatches` says per key what changed:
        ``affected`` holds the keys whose *stripped classes* changed (their
        validation outcomes may differ), with ``class_patches`` recording
        exactly which classes disappeared and which replaced them — every
        kernel is class-additive, so memoised counts for affected contexts
        can be *adjusted* by re-running kernels on just those classes (see
        :mod:`repro.incremental.repair`).  ``dropped`` holds keys that had
        to be evicted because no cached subset was left to patch from
        (their effect on validations is unknown, so callers must treat them
        as affected without a patch).  Keys in neither set kept identical
        class lists, so memoised removal counts for them remain exact; the
        re-encoded rank columns only ever differ from the old ones by an
        order-preserving bijection, which no kernel can observe.
        """
        new_num_rows = encoded_relation.num_rows
        if new_num_rows < old_num_rows:
            raise ValueError(
                f"apply_delta only supports appends: {old_num_rows} rows "
                f"cannot shrink to {new_num_rows}"
            )
        self._encoded = encoded_relation
        patches = DeltaPatches()
        if new_num_rows == old_num_rows:
            return patches
        by_size: Dict[int, List[FrozenSet[int]]] = {}
        for key in self._cache:
            by_size.setdefault(len(key), []).append(key)
        for key in sorted(self._cache, key=len):
            old_partition = self._cache[key]
            if len(key) <= 1:
                if not key:
                    patched = Partition.unit(new_num_rows)
                else:
                    (index,) = key
                    patched = self._backend.partition_single(
                        self._native_ranks(index), new_num_rows
                    )
                removed, added = _class_diff(
                    old_partition.classes, patched.classes
                )
            else:
                base_key = self._best_patch_base(key, by_size, patches.dropped)
                if base_key is None:
                    del self._cache[key]
                    patches.dropped.add(key)
                    continue
                patched, removed, added = self._patch_from_base(
                    key, base_key, old_partition, old_num_rows, new_num_rows
                )
            self._cache[key] = patched
            if removed or added:
                patches.affected.add(key)
                patches.class_patches[key] = (removed, added)
        return patches

    def _best_patch_base(
        self,
        key: FrozenSet[int],
        by_size: Dict[int, List[FrozenSet[int]]],
        dropped: Set[FrozenSet[int]],
    ) -> Optional[FrozenSet[int]]:
        """Largest cached, already-patched proper subset of ``key``.

        ``by_size`` indexes the cached keys by length, so the search walks
        the largest candidate subsets first and stops at the first hit
        instead of scanning the whole cache per key (smaller-first
        processing guarantees every smaller key is already patched).
        """
        for size in range(len(key) - 1, -1, -1):
            for cached_key in by_size.get(size, ()):
                if cached_key not in dropped and cached_key < key:
                    return cached_key
        return None

    def _patch_from_base(
        self,
        key: FrozenSet[int],
        base_key: FrozenSet[int],
        old_partition: Partition,
        old_num_rows: int,
        new_num_rows: int,
    ) -> Tuple[Partition, List[List[int]], List[List[int]]]:
        """Merge appended rows into ``Pi_key`` using the patched base,
        returning ``(patched, removed_classes, added_classes)``.

        ``Pi_key`` refines ``Pi_base``: every (non-singleton) ``key``-class
        lies inside a ``base``-class.  A ``key``-class can only gain rows or
        newly form inside a ``base``-class that contains an appended row, so
        the classes of such *touched* base classes are recomputed by
        splitting on the remaining attributes, and every other old class is
        carried over unchanged.
        """
        base = self._cache[base_key]
        extra = sorted(key - base_key)
        columns = [self._encoded.ranks_by_index(index) for index in extra]
        touched_classes = [
            rows for rows in base.classes if rows[-1] >= old_num_rows
        ]  # class rows are sorted ascending, so the last one is the maximum
        touched_rows = set()
        for rows in touched_classes:
            touched_rows.update(rows)
        carried: List[List[int]] = []
        replaced: List[List[int]] = []
        for rows in old_partition.classes:
            # An old class lies inside exactly one base class; its first row
            # tells us whether that base class was touched by the delta.
            if rows[0] in touched_rows:
                replaced.append(rows)
            else:
                carried.append(rows)
        rebuilt: List[List[int]] = []
        if len(columns) == 1:
            # Splitting on one attribute is by far the common case (the
            # patch base is usually the context minus one attribute);
            # single-int keys skip the tuple building of the general path.
            (column,) = columns
            for base_rows in touched_classes:
                groups: Dict[int, List[int]] = {}
                for row in base_rows:
                    groups.setdefault(column[row], []).append(row)
                rebuilt.extend(g for g in groups.values() if len(g) >= 2)
        else:
            for base_rows in touched_classes:
                key_groups: Dict[Tuple[int, ...], List[int]] = {}
                for row in base_rows:
                    group_key = tuple(column[row] for column in columns)
                    key_groups.setdefault(group_key, []).append(row)
                rebuilt.extend(g for g in key_groups.values() if len(g) >= 2)
        removed, added = _class_diff(replaced, rebuilt)
        # Carried classes are adopted by reference (and stay shared with the
        # old partition object, which is discarded by the cache right away);
        # all class lists are already row-sorted, so skip renormalising.
        return (
            Partition._from_sorted_classes(carried + rebuilt, new_num_rows),
            removed,
            added,
        )
