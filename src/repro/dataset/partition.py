"""Equivalence-class partitions (position list indexes).

Definition 2.8 of the paper: an attribute set ``X`` partitions the tuples of
a table into equivalence classes ``E(t_X) = {s | s_X = t_X}``; the partition
``Pi_X`` is the set of all such classes.  The canonical OD framework
validates every candidate *within* the equivalence classes of its context,
so partitions are the central data structure of the discovery framework.

Following TANE and FASTOD, partitions are stored *stripped*: singleton
classes are dropped because a class with a single tuple can contain neither
a swap nor a split.  Partition products (``Pi_{X ∪ Y}`` from ``Pi_X`` and
``Pi_Y``) are computed with the standard probe-table refinement algorithm,
which is linear in the number of tuples appearing in the stripped classes.

Layout
------
A partition is stored flat, in CSR (compressed sparse row) form:

* ``row_indices`` — the concatenation of every stripped class's row ids;
* ``class_offsets`` — ``num_classes + 1`` offsets into ``row_indices``
  (``class_offsets[0] == 0``), so class ``i`` is the half-open slice
  ``row_indices[class_offsets[i]:class_offsets[i + 1]]``.

Invariants: rows are ascending within a class, every class has >= 2 rows,
and classes are ordered by their first row (firsts are unique because
classes are disjoint).  The arrays are plain lists under the reference
backend and ``int64`` NumPy arrays under the vectorised one — this is the
exact layout the distributed validators ship to workers, so shard planning
and kernel dispatch slice the arrays directly without ever materialising
per-class Python lists.  The legacy list-of-lists view survives as the lazy
:attr:`Partition.classes` compatibility property for tests, baselines and
other cold consumers.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.caching import BoundedLRU


def _plain(sequence):
    """A plain-list view of a CSR array (no-op for lists)."""
    return sequence.tolist() if hasattr(sequence, "tolist") else sequence


class Partition:
    """A stripped partition of row indices into equivalence classes.

    Attributes
    ----------
    row_indices:
        Concatenated row ids of every stripped class (list or ``int64``
        array; see the module docstring for the layout invariants).
    class_offsets:
        ``num_classes + 1`` offsets delimiting each class's slice of
        ``row_indices``.
    num_rows:
        Total number of rows in the underlying relation (including rows in
        stripped singleton classes).
    """

    __slots__ = ("row_indices", "class_offsets", "num_rows", "_classes",
                 "_columnar")

    def __init__(self, classes: Sequence[Sequence[int]], num_rows: int) -> None:
        kept = [sorted(c) for c in classes if len(c) >= 2]
        kept.sort(key=lambda c: c[0])
        flat: List[int] = []
        offsets: List[int] = [0]
        for rows in kept:
            flat.extend(rows)
            offsets.append(len(flat))
        self.row_indices = flat
        self.class_offsets = offsets
        self.num_rows = num_rows
        self._classes: Optional[List[List[int]]] = kept
        # Backend-owned columnar view (concatenated NumPy row/class-id
        # arrays), built lazily by the first vectorised kernel that touches
        # this partition and reused by all later candidates sharing the
        # context.  Not part of equality/repr.
        self._columnar = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_csr(cls, row_indices, class_offsets, num_rows: int) -> "Partition":
        """Adopt CSR arrays verbatim (trusted constructor).

        The caller guarantees the layout invariants: ascending rows within
        each class, every class of size >= 2, classes ordered by first row,
        ``class_offsets[0] == 0``.
        """
        partition = cls.__new__(cls)
        partition.row_indices = row_indices
        partition.class_offsets = class_offsets
        partition.num_rows = num_rows
        partition._classes = None
        partition._columnar = None
        return partition

    @classmethod
    def single(cls, ranks: Sequence[int]) -> "Partition":
        """Build the partition of a single encoded column.

        Routed through the default compute backend, so cold construction
        uses the vectorised lexsort path whenever NumPy is active; the
        pure-Python grouping lives in :func:`build_partition_single`.
        """
        from repro.backend import resolve_backend

        return resolve_backend(None).partition_single(ranks, len(ranks))

    @classmethod
    def unit(cls, num_rows: int) -> "Partition":
        """Partition of the empty attribute set: one class with every row.

        This is the context of level-2 OC candidates such as ``{}: A ~ B``
        and of level-1 OFD candidates such as ``{}: [] -> A``.
        """
        if num_rows <= 1:
            return cls.from_csr([], [0], num_rows)
        return cls.from_csr(list(range(num_rows)), [0, num_rows], num_rows)

    @classmethod
    def from_row_keys(cls, keys: Sequence[Tuple[int, ...]]) -> "Partition":
        """Build a partition by grouping rows with equal key tuples.

        Like :meth:`single`, construction goes through the default backend
        (the NumPy backend lexsorts the stacked key columns).
        """
        from repro.backend import resolve_backend

        return resolve_backend(None).partition_from_row_keys(keys, len(keys))

    @classmethod
    def _from_sorted_classes(
        cls, classes: List[List[int]], num_rows: int
    ) -> "Partition":
        """Internal fast path: adopt class lists whose rows are already
        sorted ascending and all of length >= 2, skipping the per-class
        normalisation."""
        classes.sort(key=lambda rows: rows[0])
        flat: List[int] = []
        offsets: List[int] = [0]
        for rows in classes:
            flat.extend(rows)
            offsets.append(len(flat))
        partition = cls.from_csr(flat, offsets, num_rows)
        partition._classes = classes
        return partition

    # -- properties ------------------------------------------------------------

    @property
    def classes(self) -> List[List[int]]:
        """Legacy list-of-lists view of the classes (lazy compatibility).

        Hot paths never touch this: construction, products, delta patching,
        shard planning and the vectorised kernels all work on the flat CSR
        arrays.  The materialised lists are cached for repeat consumers.
        """
        if self._classes is None:
            rows = _plain(self.row_indices)
            offsets = _plain(self.class_offsets)
            self._classes = [
                rows[offsets[i]:offsets[i + 1]]
                for i in range(len(offsets) - 1)
            ]
        return self._classes

    @property
    def num_classes(self) -> int:
        """Number of (non-singleton) equivalence classes."""
        return len(self.class_offsets) - 1

    @property
    def num_grouped_rows(self) -> int:
        """Number of rows contained in non-singleton classes (O(1))."""
        return len(self.row_indices)

    @property
    def num_singleton_rows(self) -> int:
        """Number of rows that form singleton classes (stripped away)."""
        return self.num_rows - self.num_grouped_rows

    def total_class_count(self) -> int:
        """Number of equivalence classes *including* singletons (``|Pi_X|``)."""
        return self.num_classes + self.num_singleton_rows

    def error_rows(self) -> int:
        """TANE's ``||Pi_X||`` error numerator: rows minus classes.

        This equals the minimal number of tuples to remove so that ``X``
        becomes a key.
        """
        return self.num_rows - self.total_class_count()

    def __iter__(self):
        return iter(self.classes)

    def __len__(self) -> int:
        return self.num_classes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return (
            self.num_rows == other.num_rows
            and _plain(self.class_offsets) == _plain(other.class_offsets)
            and _plain(self.row_indices) == _plain(other.row_indices)
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Partition({self.num_classes} stripped classes over "
            f"{self.num_rows} rows)"
        )

    # -- refinement ------------------------------------------------------------

    def product(self, ranks: Sequence[int]) -> "Partition":
        """Refine this partition by an encoded column (reference algorithm).

        ``self`` is ``Pi_X``; ``ranks`` is the rank column of an attribute
        ``A``.  The result is ``Pi_{X ∪ {A}}``, computed by splitting every
        class of ``Pi_X`` on the ranks of ``A``.
        """
        rows = _plain(self.row_indices)
        offsets = _plain(self.class_offsets)
        split: List[List[int]] = []
        for i in range(len(offsets) - 1):
            groups: Dict[int, List[int]] = {}
            for position in range(offsets[i], offsets[i + 1]):
                row = rows[position]
                groups.setdefault(ranks[row], []).append(row)
            split.extend(g for g in groups.values() if len(g) >= 2)
        return _partition_from_groups(split, self.num_rows)

    def product_partition(self, other: "Partition") -> "Partition":
        """Compute ``Pi_{X ∪ Y}`` from ``Pi_X`` (self) and ``Pi_Y`` (other).

        Standard TANE probe-table algorithm on stripped partitions.
        """
        if self.num_rows != other.num_rows:
            raise ValueError("partitions are over relations of different sizes")
        class_of = _row_owners(other)
        rows = _plain(self.row_indices)
        offsets = _plain(self.class_offsets)
        split: List[List[int]] = []
        for i in range(len(offsets) - 1):
            groups: Dict[int, List[int]] = {}
            for position in range(offsets[i], offsets[i + 1]):
                row = rows[position]
                other_class = class_of.get(row)
                if other_class is None:
                    continue  # row is a singleton in `other`, so also in the product
                groups.setdefault(other_class, []).append(row)
            split.extend(g for g in groups.values() if len(g) >= 2)
        return _partition_from_groups(split, self.num_rows)

    def refines(self, other: "Partition") -> bool:
        """Return ``True`` iff every class of ``self`` is contained in a class
        of ``other`` (i.e. ``self`` is at least as fine as ``other``)."""
        class_of = _row_owners(other)
        rows = _plain(self.row_indices)
        offsets = _plain(self.class_offsets)
        for i in range(len(offsets) - 1):
            owners = set()
            for position in range(offsets[i], offsets[i + 1]):
                row = rows[position]
                owners.add(class_of.get(row, ("singleton", row)))
                if len(owners) > 1:
                    return False
        return True


def _row_owners(partition: Partition) -> Dict[int, int]:
    """Map each grouped row of ``partition`` to its class id."""
    rows = _plain(partition.row_indices)
    offsets = _plain(partition.class_offsets)
    class_of: Dict[int, int] = {}
    for class_id in range(len(offsets) - 1):
        for position in range(offsets[class_id], offsets[class_id + 1]):
            class_of[rows[position]] = class_id
    return class_of


def _partition_from_groups(groups: List[List[int]], num_rows: int) -> Partition:
    """Partition from per-class row lists whose rows are already ascending.

    Strips classes of size < 2, orders survivors by first row and lays them
    out flat.  This is the shared tail of every pure-Python construction
    path; the materialised lists are kept as the partition's cached legacy
    view since they were paid for anyway.
    """
    kept = [rows for rows in groups if len(rows) >= 2]
    kept.sort(key=lambda rows: rows[0])
    flat: List[int] = []
    offsets: List[int] = [0]
    for rows in kept:
        flat.extend(rows)
        offsets.append(len(flat))
    partition = Partition.from_csr(flat, offsets, num_rows)
    partition._classes = kept
    return partition


def build_partition_single(ranks: Sequence[int], num_rows: int) -> Partition:
    """Reference (pure-Python) construction of a single-column partition.

    Kept separate from :meth:`Partition.single` — which routes through the
    resolved default backend — so the Python backend can call the dict
    grouping directly without recursing through backend resolution.
    """
    groups: Dict[int, List[int]] = {}
    for row, rank in enumerate(ranks):
        groups.setdefault(rank, []).append(row)
    return _partition_from_groups(list(groups.values()), num_rows)


def build_partition_from_row_keys(
    keys: Sequence[Tuple[int, ...]], num_rows: int
) -> Partition:
    """Reference (pure-Python) grouping of rows by equal key tuples."""
    groups: Dict[Tuple[int, ...], List[int]] = {}
    for row, key in enumerate(keys):
        groups.setdefault(key, []).append(row)
    return _partition_from_groups(list(groups.values()), num_rows)


class DeltaPatches:
    """Outcome of :meth:`PartitionCache.apply_delta`.

    ``affected`` — keys whose stripped classes changed; ``class_patches``
    maps each of them to ``(removed, added)`` class lists (what the delta
    replaced); ``dropped`` — keys evicted because nothing was left to patch
    them from.
    """

    __slots__ = ("affected", "dropped", "class_patches")

    def __init__(self) -> None:
        self.affected: Set[FrozenSet[int]] = set()
        self.dropped: Set[FrozenSet[int]] = set()
        self.class_patches: Dict[
            FrozenSet[int], Tuple[List[List[int]], List[List[int]]]
        ] = {}


def _class_diff(
    old_classes: Sequence[Sequence[int]], new_classes: Sequence[Sequence[int]]
) -> Tuple[List[List[int]], List[List[int]]]:
    """Symmetric difference of two class lists: ``(removed, added)``.

    Classes that survive a delta untouched appear in both lists and drop
    out, so downstream repair only ever re-runs kernels on classes whose
    membership genuinely changed.
    """
    old_set = {tuple(rows) for rows in old_classes}
    new_set = {tuple(rows) for rows in new_classes}
    removed = [list(rows) for rows in old_classes if tuple(rows) not in new_set]
    added = [list(rows) for rows in new_classes if tuple(rows) not in old_set]
    return removed, added


def _gather_segments(rows, offsets, ids):
    """Concatenate the classes ``ids`` selects out of a CSR array pair.

    Pure index arithmetic: ``starts - out_offsets`` repeated per element
    plus a flat ``arange`` turns the per-class slices into one gather.
    """
    import numpy as np

    lengths = np.diff(offsets)[ids]
    starts = offsets[:-1][ids]
    out_starts = np.cumsum(lengths) - lengths
    total = int(lengths.sum())
    flat = np.repeat(starts - out_starts, lengths) + np.arange(total)
    return rows[flat], lengths


def _select_partition(rows, offsets, ids, num_rows: int) -> Partition:
    """Partition made of the classes ``ids`` selects (ids ascending)."""
    import numpy as np

    flat, lengths = _gather_segments(rows, offsets, ids)
    new_offsets = np.concatenate(
        ([0], np.cumsum(lengths))
    ).astype(np.int64, copy=False)
    return Partition.from_csr(flat, new_offsets, num_rows)


def _diff_partitions(
    old: Partition, new: Partition
) -> Tuple[List[List[int]], List[List[int]]]:
    """Symmetric difference of two partitions' classes: ``(removed, added)``.

    Both partitions keep their classes ordered by (unique) first row, so a
    two-pointer merge over the offset arrays pairs classes up without
    materialising the ones that survived unchanged — only genuinely changed
    classes become Python lists for the repair kernels.
    """
    o_rows, o_offsets = old.row_indices, old.class_offsets
    n_rows, n_offsets = new.row_indices, new.class_offsets
    if not isinstance(o_rows, list) and not isinstance(n_rows, list):
        return _diff_partitions_arrays(o_rows, o_offsets, n_rows, n_offsets)
    o_rows, o_offsets = _plain(o_rows), _plain(o_offsets)
    n_rows, n_offsets = _plain(n_rows), _plain(n_offsets)
    removed: List[List[int]] = []
    added: List[List[int]] = []
    i = j = 0
    num_old, num_new = len(o_offsets) - 1, len(n_offsets) - 1
    while i < num_old and j < num_new:
        old_first = o_rows[o_offsets[i]]
        new_first = n_rows[n_offsets[j]]
        if old_first < new_first:
            removed.append(o_rows[o_offsets[i]:o_offsets[i + 1]])
            i += 1
        elif new_first < old_first:
            added.append(n_rows[n_offsets[j]:n_offsets[j + 1]])
            j += 1
        else:
            old_class = o_rows[o_offsets[i]:o_offsets[i + 1]]
            new_class = n_rows[n_offsets[j]:n_offsets[j + 1]]
            if old_class != new_class:
                removed.append(old_class)
                added.append(new_class)
            i += 1
            j += 1
    while i < num_old:
        removed.append(o_rows[o_offsets[i]:o_offsets[i + 1]])
        i += 1
    while j < num_new:
        added.append(n_rows[n_offsets[j]:n_offsets[j + 1]])
        j += 1
    return removed, added


def _diff_partitions_arrays(o_rows, o_offsets, n_rows, n_offsets):
    """Vectorised :func:`_diff_partitions` over ``int64`` CSR arrays.

    Classes are matched by first row (unique and ascending on both sides);
    matched pairs differ when their lengths differ or any element does —
    checked with one segmented comparison over all equal-length pairs.
    """
    import numpy as np

    o_firsts = o_rows[o_offsets[:-1]]
    n_firsts = n_rows[n_offsets[:-1]]
    position = np.searchsorted(n_firsts, o_firsts)
    matched = position < n_firsts.size
    if n_firsts.size:
        safe = np.minimum(position, n_firsts.size - 1)
        matched &= n_firsts[safe] == o_firsts
    o_match = np.nonzero(matched)[0]
    n_match = position[o_match]
    o_lengths = np.diff(o_offsets)
    n_lengths = np.diff(n_offsets)
    changed = o_lengths[o_match] != n_lengths[n_match]
    same_length = np.nonzero(~changed)[0]
    if same_length.size:
        left, lengths = _gather_segments(o_rows, o_offsets, o_match[same_length])
        right, _ = _gather_segments(n_rows, n_offsets, n_match[same_length])
        starts = np.cumsum(lengths) - lengths
        changed[same_length] = np.add.reduceat(left != right, starts) > 0
    removed_ids = np.sort(
        np.concatenate([np.nonzero(~matched)[0], o_match[changed]])
    )
    new_unmatched = np.ones(n_firsts.size, dtype=bool)
    new_unmatched[n_match] = False
    added_ids = np.sort(
        np.concatenate([np.nonzero(new_unmatched)[0], n_match[changed]])
    )
    removed = _segments_as_lists(o_rows, o_offsets, removed_ids)
    added = _segments_as_lists(n_rows, n_offsets, added_ids)
    return removed, added


def _segments_as_lists(rows, offsets, ids) -> List[List[int]]:
    """Materialise the selected classes as plain row lists."""
    return [
        rows[offsets[i]:offsets[i + 1]].tolist() for i in ids.tolist()
    ]


def _merge_disjoint(a: Partition, b: Partition, num_rows: int) -> Partition:
    """Merge two partitions with disjoint classes, ordered by first row."""
    if a.num_classes == 0:
        return Partition.from_csr(b.row_indices, b.class_offsets, num_rows)
    if b.num_classes == 0:
        return Partition.from_csr(a.row_indices, a.class_offsets, num_rows)
    a_rows, a_offsets = a.row_indices, a.class_offsets
    b_rows, b_offsets = b.row_indices, b.class_offsets
    if not isinstance(a_rows, list) and not isinstance(b_rows, list):
        import numpy as np

        rows_all = np.concatenate([a_rows, b_rows])
        starts = np.concatenate([a_offsets[:-1], b_offsets[:-1] + a_rows.size])
        lengths = np.concatenate([np.diff(a_offsets), np.diff(b_offsets)])
        order = np.argsort(rows_all[starts], kind="stable")
        starts, lengths = starts[order], lengths[order]
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        flat = np.repeat(starts - offsets[:-1], lengths) + np.arange(
            int(offsets[-1])
        )
        return Partition.from_csr(rows_all[flat], offsets, num_rows)
    a_rows, a_offsets = _plain(a_rows), _plain(a_offsets)
    b_rows, b_offsets = _plain(b_rows), _plain(b_offsets)
    flat: List[int] = []
    offsets: List[int] = [0]
    i = j = 0
    num_a, num_b = len(a_offsets) - 1, len(b_offsets) - 1
    while i < num_a or j < num_b:
        take_a = j >= num_b or (
            i < num_a and a_rows[a_offsets[i]] < b_rows[b_offsets[j]]
        )
        if take_a:
            flat.extend(a_rows[a_offsets[i]:a_offsets[i + 1]])
            i += 1
        else:
            flat.extend(b_rows[b_offsets[j]:b_offsets[j + 1]])
            j += 1
        offsets.append(len(flat))
    return Partition.from_csr(flat, offsets, num_rows)


def _touched_base_classes(base: Partition, old_num_rows: int,
                          new_num_rows: int):
    """Select the base classes a delta touched, plus a membership tester.

    A base class is *touched* iff it contains an appended row — class rows
    are ascending, so its last row decides.  Returns ``(touched, member)``
    where ``touched`` is the sub-partition of those classes (over the new
    row count) and ``member`` tests whether an old row id lies in a touched
    class (a boolean mask for array partitions, a set for list ones).
    """
    rows, offsets = base.row_indices, base.class_offsets
    if not isinstance(rows, list):
        import numpy as np

        lasts = rows[offsets[1:] - 1]
        ids = np.nonzero(lasts >= old_num_rows)[0]
        touched = _select_partition(rows, offsets, ids, new_num_rows)
        member = np.zeros(old_num_rows, dtype=bool)
        touched_rows = touched.row_indices
        member[touched_rows[touched_rows < old_num_rows]] = True
        return touched, member
    flat: List[int] = []
    t_offsets: List[int] = [0]
    member: Set[int] = set()
    for i in range(len(offsets) - 1):
        if rows[offsets[i + 1] - 1] >= old_num_rows:
            segment = rows[offsets[i]:offsets[i + 1]]
            flat.extend(segment)
            t_offsets.append(len(flat))
            member.update(segment)
    return Partition.from_csr(flat, t_offsets, new_num_rows), member


def _split_by_touched(old: Partition, member, new_num_rows: int):
    """Split ``old``'s classes into ``(carried, replaced)`` partitions.

    An old class lies inside exactly one base class; its first row (always
    below the old row count) tells whether that base class was touched.
    """
    rows, offsets = old.row_indices, old.class_offsets
    if not isinstance(rows, list) and not isinstance(member, set):
        import numpy as np

        firsts = rows[offsets[:-1]]
        replaced_mask = member[firsts]
        carried = _select_partition(
            rows, offsets, np.nonzero(~replaced_mask)[0], new_num_rows
        )
        replaced = _select_partition(
            rows, offsets, np.nonzero(replaced_mask)[0], old.num_rows
        )
        return carried, replaced
    contains = member.__contains__ if isinstance(member, set) else (
        lambda row: bool(member[row])
    )
    rows, offsets = _plain(rows), _plain(offsets)
    c_flat: List[int] = []
    c_offsets: List[int] = [0]
    r_flat: List[int] = []
    r_offsets: List[int] = [0]
    for i in range(len(offsets) - 1):
        segment = rows[offsets[i]:offsets[i + 1]]
        if contains(segment[0]):
            r_flat.extend(segment)
            r_offsets.append(len(r_flat))
        else:
            c_flat.extend(segment)
            c_offsets.append(len(c_flat))
    carried = Partition.from_csr(c_flat, c_offsets, new_num_rows)
    replaced = Partition.from_csr(r_flat, r_offsets, old.num_rows)
    return carried, replaced


class PartitionCache:
    """Cache of partitions keyed by attribute-index sets.

    The level-wise lattice traversal requests the partition of many
    overlapping attribute sets; each partition is built once by refining a
    cached partition of a subset with one more single-attribute partition,
    as in the TANE / FASTOD implementations.

    Construction and refinement go through a pluggable compute backend
    (defaulting to the encoded relation's); every backend produces
    identical :class:`Partition` objects, so cache contents are
    backend-agnostic.

    ``max_entries`` bounds the number of retained partitions with LRU
    eviction (``None`` — the default — retains everything): long-lived
    sessions over wide schemas use it to cap the cache's O(rows)-per-context
    memory.  Evicted partitions are rebuilt on demand, so results never
    change; only :meth:`apply_delta`'s ability to patch (rather than drop)
    an entry depends on what is still cached.
    """

    def __init__(
        self, encoded_relation, backend=None, max_entries: Optional[int] = None
    ) -> None:
        from repro.backend import resolve_backend

        self._encoded = encoded_relation
        self._backend = resolve_backend(
            backend if backend is not None
            else getattr(encoded_relation, "backend", None)
        )
        self._cache: BoundedLRU = BoundedLRU(max_entries)
        self._hits = 0
        self._misses = 0

    @property
    def backend(self):
        """The compute backend used to build partitions."""
        return self._backend

    @property
    def num_rows(self) -> int:
        return self._encoded.num_rows

    @property
    def stats(self) -> Dict[str, int]:
        """Cache statistics (``hits``, ``misses``, ``entries``, ``evictions``)."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "entries": len(self._cache),
            "evictions": self._cache.evictions,
        }

    def cached_keys(self) -> Iterator[FrozenSet[int]]:
        """Iterate over the attribute-index sets currently cached."""
        return iter(list(self._cache))

    def get(self, attribute_indices: Iterable[int]) -> Partition:
        """Return ``Pi_X`` for the attribute-index set ``attribute_indices``."""
        key = frozenset(attribute_indices)
        cached = self._cache.get(key)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        partition = self._build(key)
        self._cache[key] = partition
        return partition

    def get_by_names(self, names: Iterable[str]) -> Partition:
        """Return ``Pi_X`` for attribute *names*."""
        indices = [self._encoded.schema.index_of(n) for n in names]
        return self.get(indices)

    def _build(self, key: FrozenSet[int]) -> Partition:
        if not key:
            return self._backend.partition_unit(self._encoded.num_rows)
        if len(key) == 1:
            (index,) = key
            return self._backend.partition_single(
                self._native_ranks(index), self._encoded.num_rows
            )
        # Prefer extending the largest cached proper subset; fall back to
        # refining attribute by attribute.
        best_subset: Optional[FrozenSet[int]] = None
        for cached_key in self._cache:
            if cached_key < key and (
                best_subset is None or len(cached_key) > len(best_subset)
            ):
                best_subset = cached_key
        if best_subset is None:
            ordered = sorted(key)
            partition = self.get(ordered[:1])
            remaining = ordered[1:]
        else:
            partition = self._cache[best_subset]
            remaining = sorted(key - best_subset)
        for index in remaining:
            partition = self._backend.partition_refine(
                partition, self._native_ranks(index)
            )
        return partition

    def _native_ranks(self, index: int):
        getter = getattr(self._encoded, "native_ranks_by_index", None)
        if getter is not None:
            return getter(index)
        return self._backend.to_native(self._encoded.ranks_by_index(index))

    def evict_level(self, level: int) -> None:
        """Drop cached partitions of attribute sets smaller than ``level``.

        The level-wise traversal only ever needs partitions from the two
        most recent levels; evicting older entries bounds memory on wide
        schemas, matching the original implementations.
        """
        for key in [k for k in self._cache if 0 < len(k) < level]:
            del self._cache[key]

    # -- incremental maintenance -------------------------------------------------

    def apply_delta(self, encoded_relation, old_num_rows: int) -> "DeltaPatches":
        """Rebind to an extended encoding and patch every cached partition.

        ``encoded_relation`` is the delta-encoded relation produced by
        :meth:`~repro.dataset.encoding.EncodedRelation.extend` (same schema,
        ``num_rows >= old_num_rows``).  Every cached partition is brought up
        to the new row count by a per-context merge: contexts are processed
        smallest-first, and a context ``X`` reuses the already-patched
        partition of a cached proper subset ``B`` — only ``B``-classes that
        contain an appended row can gain or change ``X``-classes (appending
        rows never splits an equivalence class), so only those classes are
        re-split on ``X \\ B``.  No full rebuild, and the stripped-away old
        singletons never need scanning: any old singleton that an appended
        row joins is already inside one of the touched ``B``-classes.

        The whole merge happens on the flat CSR arrays: touched classes are
        gathered into a sub-partition, re-split through the backend's
        ``partition_refine`` (the same vectorised path a cold build uses),
        and stitched back between the untouched classes with one
        first-row-ordered merge — no per-class Python lists.

        The returned :class:`DeltaPatches` says per key what changed:
        ``affected`` holds the keys whose *stripped classes* changed (their
        validation outcomes may differ), with ``class_patches`` recording
        exactly which classes disappeared and which replaced them — every
        kernel is class-additive, so memoised counts for affected contexts
        can be *adjusted* by re-running kernels on just those classes (see
        :mod:`repro.incremental.repair`).  ``dropped`` holds keys that had
        to be evicted because no cached subset was left to patch from
        (their effect on validations is unknown, so callers must treat them
        as affected without a patch).  Keys in neither set kept identical
        class lists, so memoised removal counts for them remain exact; the
        re-encoded rank columns only ever differ from the old ones by an
        order-preserving bijection, which no kernel can observe.
        """
        new_num_rows = encoded_relation.num_rows
        if new_num_rows < old_num_rows:
            raise ValueError(
                f"apply_delta only supports appends: {old_num_rows} rows "
                f"cannot shrink to {new_num_rows}"
            )
        self._encoded = encoded_relation
        patches = DeltaPatches()
        if new_num_rows == old_num_rows:
            return patches
        by_size: Dict[int, List[FrozenSet[int]]] = {}
        for key in self._cache:
            by_size.setdefault(len(key), []).append(key)
        for key in sorted(self._cache, key=len):
            old_partition = self._cache[key]
            if len(key) <= 1:
                if not key:
                    patched = self._backend.partition_unit(new_num_rows)
                else:
                    (index,) = key
                    patched = self._backend.partition_single(
                        self._native_ranks(index), new_num_rows
                    )
                removed, added = _diff_partitions(old_partition, patched)
            else:
                base_key = self._best_patch_base(key, by_size, patches.dropped)
                if base_key is None:
                    del self._cache[key]
                    patches.dropped.add(key)
                    continue
                patched, removed, added = self._patch_from_base(
                    key, base_key, old_partition, old_num_rows, new_num_rows
                )
            self._cache[key] = patched
            if removed or added:
                patches.affected.add(key)
                patches.class_patches[key] = (removed, added)
        return patches

    def _best_patch_base(
        self,
        key: FrozenSet[int],
        by_size: Dict[int, List[FrozenSet[int]]],
        dropped: Set[FrozenSet[int]],
    ) -> Optional[FrozenSet[int]]:
        """Largest cached, already-patched proper subset of ``key``.

        ``by_size`` indexes the cached keys by length, so the search walks
        the largest candidate subsets first and stops at the first hit
        instead of scanning the whole cache per key (smaller-first
        processing guarantees every smaller key is already patched).
        """
        for size in range(len(key) - 1, -1, -1):
            for cached_key in by_size.get(size, ()):
                if cached_key not in dropped and cached_key < key:
                    return cached_key
        return None

    def _patch_from_base(
        self,
        key: FrozenSet[int],
        base_key: FrozenSet[int],
        old_partition: Partition,
        old_num_rows: int,
        new_num_rows: int,
    ) -> Tuple[Partition, List[List[int]], List[List[int]]]:
        """Merge appended rows into ``Pi_key`` using the patched base,
        returning ``(patched, removed_classes, added_classes)``.

        ``Pi_key`` refines ``Pi_base``: every (non-singleton) ``key``-class
        lies inside a ``base``-class.  A ``key``-class can only gain rows or
        newly form inside a ``base``-class that contains an appended row, so
        the *touched* base classes are gathered into a sub-partition and
        re-split on the remaining attributes through the backend's refine
        kernel, while every other old class is carried over unchanged.
        """
        base = self._cache[base_key]
        touched, member = _touched_base_classes(
            base, old_num_rows, new_num_rows
        )
        rebuilt = touched
        for index in sorted(key - base_key):
            rebuilt = self._backend.partition_refine(
                rebuilt, self._native_ranks(index)
            )
        carried, replaced = _split_by_touched(
            old_partition, member, new_num_rows
        )
        removed, added = _diff_partitions(replaced, rebuilt)
        return _merge_disjoint(carried, rebuilt, new_num_rows), removed, added
