"""Equivalence-class partitions (position list indexes).

Definition 2.8 of the paper: an attribute set ``X`` partitions the tuples of
a table into equivalence classes ``E(t_X) = {s | s_X = t_X}``; the partition
``Pi_X`` is the set of all such classes.  The canonical OD framework
validates every candidate *within* the equivalence classes of its context,
so partitions are the central data structure of the discovery framework.

Following TANE and FASTOD, partitions are stored *stripped*: singleton
classes are dropped because a class with a single tuple can contain neither
a swap nor a split.  Partition products (``Pi_{X ∪ Y}`` from ``Pi_X`` and
``Pi_Y``) are computed with the standard probe-table refinement algorithm,
which is linear in the number of tuples appearing in the stripped classes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple


class Partition:
    """A stripped partition of row indices into equivalence classes.

    Attributes
    ----------
    classes:
        List of equivalence classes with at least two members.  Each class
        is a sorted list of row indices.
    num_rows:
        Total number of rows in the underlying relation (including rows in
        stripped singleton classes).
    """

    __slots__ = ("classes", "num_rows", "_columnar")

    def __init__(self, classes: Sequence[Sequence[int]], num_rows: int) -> None:
        self.classes: List[List[int]] = [sorted(c) for c in classes if len(c) >= 2]
        self.classes.sort(key=lambda c: c[0])
        self.num_rows = num_rows
        # Backend-owned columnar view of `classes` (e.g. concatenated NumPy
        # row/class-id arrays), built lazily by the first vectorised kernel
        # that touches this partition and reused by all later candidates
        # sharing the context.  Not part of equality/repr.
        self._columnar = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def single(cls, ranks: Sequence[int]) -> "Partition":
        """Build the partition of a single encoded column."""
        groups: Dict[int, List[int]] = {}
        for row, rank in enumerate(ranks):
            groups.setdefault(rank, []).append(row)
        return cls(list(groups.values()), len(ranks))

    @classmethod
    def unit(cls, num_rows: int) -> "Partition":
        """Partition of the empty attribute set: one class with every row.

        This is the context of level-2 OC candidates such as ``{}: A ~ B``
        and of level-1 OFD candidates such as ``{}: [] -> A``.
        """
        if num_rows <= 1:
            return cls([], num_rows)
        return cls([list(range(num_rows))], num_rows)

    @classmethod
    def from_row_keys(cls, keys: Sequence[Tuple[int, ...]]) -> "Partition":
        """Build a partition by grouping rows with equal key tuples."""
        groups: Dict[Tuple[int, ...], List[int]] = {}
        for row, key in enumerate(keys):
            groups.setdefault(key, []).append(row)
        return cls(list(groups.values()), len(keys))

    # -- properties ------------------------------------------------------------

    @property
    def num_classes(self) -> int:
        """Number of (non-singleton) equivalence classes."""
        return len(self.classes)

    @property
    def num_grouped_rows(self) -> int:
        """Number of rows contained in non-singleton classes."""
        return sum(len(c) for c in self.classes)

    @property
    def num_singleton_rows(self) -> int:
        """Number of rows that form singleton classes (stripped away)."""
        return self.num_rows - self.num_grouped_rows

    def total_class_count(self) -> int:
        """Number of equivalence classes *including* singletons (``|Pi_X|``)."""
        return self.num_classes + self.num_singleton_rows

    def error_rows(self) -> int:
        """TANE's ``||Pi_X||`` error numerator: rows minus classes.

        This equals the minimal number of tuples to remove so that ``X``
        becomes a key.
        """
        return self.num_rows - self.total_class_count()

    def __iter__(self):
        return iter(self.classes)

    def __len__(self) -> int:
        return len(self.classes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return self.num_rows == other.num_rows and self.classes == other.classes

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Partition({self.num_classes} stripped classes over "
            f"{self.num_rows} rows)"
        )

    # -- refinement ------------------------------------------------------------

    def product(self, ranks: Sequence[int]) -> "Partition":
        """Refine this partition by an encoded column.

        ``self`` is ``Pi_X``; ``ranks`` is the rank column of an attribute
        ``A``.  The result is ``Pi_{X ∪ {A}}``, computed by splitting every
        class of ``Pi_X`` on the ranks of ``A``.
        """
        new_classes: List[List[int]] = []
        for cls_rows in self.classes:
            groups: Dict[int, List[int]] = {}
            for row in cls_rows:
                groups.setdefault(ranks[row], []).append(row)
            for group in groups.values():
                if len(group) >= 2:
                    new_classes.append(group)
        return Partition(new_classes, self.num_rows)

    def product_partition(self, other: "Partition") -> "Partition":
        """Compute ``Pi_{X ∪ Y}`` from ``Pi_X`` (self) and ``Pi_Y`` (other).

        Standard TANE probe-table algorithm on stripped partitions.
        """
        if self.num_rows != other.num_rows:
            raise ValueError("partitions are over relations of different sizes")
        class_of: Dict[int, int] = {}
        for class_id, rows in enumerate(other.classes):
            for row in rows:
                class_of[row] = class_id
        new_classes: List[List[int]] = []
        for rows in self.classes:
            groups: Dict[int, List[int]] = {}
            for row in rows:
                other_class = class_of.get(row)
                if other_class is None:
                    continue  # row is a singleton in `other`, so also in the product
                groups.setdefault(other_class, []).append(row)
            for group in groups.values():
                if len(group) >= 2:
                    new_classes.append(group)
        return Partition(new_classes, self.num_rows)

    def refines(self, other: "Partition") -> bool:
        """Return ``True`` iff every class of ``self`` is contained in a class
        of ``other`` (i.e. ``self`` is at least as fine as ``other``)."""
        class_of: Dict[int, int] = {}
        for class_id, rows in enumerate(other.classes):
            for row in rows:
                class_of[row] = class_id
        for rows in self.classes:
            owners = set()
            for row in rows:
                owner = class_of.get(row, ("singleton", row))
                owners.add(owner)
                if len(owners) > 1:
                    return False
        return True


class PartitionCache:
    """Cache of partitions keyed by attribute-index sets.

    The level-wise lattice traversal requests the partition of many
    overlapping attribute sets; each partition is built once by refining a
    cached partition of a subset with one more single-attribute partition,
    as in the TANE / FASTOD implementations.

    Construction and refinement go through a pluggable compute backend
    (defaulting to the encoded relation's); every backend produces
    identical :class:`Partition` objects, so cache contents are
    backend-agnostic.
    """

    def __init__(self, encoded_relation, backend=None) -> None:
        from repro.backend import resolve_backend

        self._encoded = encoded_relation
        self._backend = resolve_backend(
            backend if backend is not None
            else getattr(encoded_relation, "backend", None)
        )
        self._cache: Dict[FrozenSet[int], Partition] = {}
        self._hits = 0
        self._misses = 0

    @property
    def backend(self):
        """The compute backend used to build partitions."""
        return self._backend

    @property
    def num_rows(self) -> int:
        return self._encoded.num_rows

    @property
    def stats(self) -> Dict[str, int]:
        """Cache statistics (``hits``, ``misses``, ``entries``)."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "entries": len(self._cache),
        }

    def get(self, attribute_indices: Iterable[int]) -> Partition:
        """Return ``Pi_X`` for the attribute-index set ``attribute_indices``."""
        key = frozenset(attribute_indices)
        cached = self._cache.get(key)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        partition = self._build(key)
        self._cache[key] = partition
        return partition

    def get_by_names(self, names: Iterable[str]) -> Partition:
        """Return ``Pi_X`` for attribute *names*."""
        indices = [self._encoded.schema.index_of(n) for n in names]
        return self.get(indices)

    def _build(self, key: FrozenSet[int]) -> Partition:
        if not key:
            return Partition.unit(self._encoded.num_rows)
        if len(key) == 1:
            (index,) = key
            return self._backend.partition_single(
                self._native_ranks(index), self._encoded.num_rows
            )
        # Prefer extending the largest cached proper subset; fall back to
        # refining attribute by attribute.
        best_subset: Optional[FrozenSet[int]] = None
        for cached_key in self._cache:
            if cached_key < key and (
                best_subset is None or len(cached_key) > len(best_subset)
            ):
                best_subset = cached_key
        if best_subset is None:
            ordered = sorted(key)
            partition = self.get(ordered[:1])
            remaining = ordered[1:]
        else:
            partition = self._cache[best_subset]
            remaining = sorted(key - best_subset)
        for index in remaining:
            partition = self._backend.partition_refine(
                partition, self._native_ranks(index)
            )
        return partition

    def _native_ranks(self, index: int):
        getter = getattr(self._encoded, "native_ranks_by_index", None)
        if getter is not None:
            return getter(index)
        return self._backend.to_native(self._encoded.ranks_by_index(index))

    def evict_level(self, level: int) -> None:
        """Drop cached partitions of attribute sets smaller than ``level``.

        The level-wise traversal only ever needs partitions from the two
        most recent levels; evicting older entries bounds memory on wide
        schemas, matching the original implementations.
        """
        for key in [k for k in self._cache if 0 < len(k) < level]:
            del self._cache[key]
