"""Sorted views of equivalence classes.

OC validation repeatedly needs "order the tuples of an equivalence class by
``[A ASC, B ASC]`` and look at the projection over ``B``" (Algorithm 2,
line 3) or the variant with a descending tie-break used by the list-based OD
extension.  These helpers centralise that logic so every validator sorts in
exactly the same way.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def sort_class_asc_asc(
    rows: Sequence[int], a_ranks: Sequence[int], b_ranks: Sequence[int]
) -> List[int]:
    """Sort row indices by ``[A ASC, B ASC]`` (Algorithm 2, line 3)."""
    return sorted(rows, key=lambda row: (a_ranks[row], b_ranks[row]))


def sort_class_asc_desc(
    rows: Sequence[int], a_ranks: Sequence[int], b_ranks: Sequence[int]
) -> List[int]:
    """Sort row indices by ``A`` ascending, breaking ties by ``B`` descending.

    This is the ordering used to extend Algorithm 2 to list-based
    approximate ODs ``X: A -> B`` (Section 3.3): with the descending
    tie-break, split violations within an ``A`` group show up as decreases
    in the ``B`` projection and are therefore removed by the LNDS step.
    """
    return sorted(rows, key=lambda row: (a_ranks[row], -b_ranks[row]))


def projection(rows: Sequence[int], ranks: Sequence[int]) -> List[int]:
    """Project sorted row indices onto a rank column (``t_B`` in the paper)."""
    return [ranks[row] for row in rows]


def tie_groups(
    sorted_rows: Sequence[int], ranks: Sequence[int]
) -> List[Tuple[int, List[int]]]:
    """Group consecutive rows of an already-sorted class by equal rank.

    Returns ``[(rank, [rows...]), ...]`` in ascending rank order.  Used by
    swap counting, where pairs with equal ``A`` values never form swaps.
    """
    groups: List[Tuple[int, List[int]]] = []
    for row in sorted_rows:
        rank = ranks[row]
        if groups and groups[-1][0] == rank:
            groups[-1][1].append(row)
        else:
            groups.append((rank, [row]))
    return groups


def is_non_decreasing(values: Sequence[int]) -> bool:
    """Return ``True`` iff ``values`` is monotonically non-decreasing."""
    return all(values[i] <= values[i + 1] for i in range(len(values) - 1))


def is_strictly_increasing(values: Sequence[int]) -> bool:
    """Return ``True`` iff ``values`` is strictly increasing."""
    return all(values[i] < values[i + 1] for i in range(len(values) - 1))
