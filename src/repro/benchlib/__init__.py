"""Measurement harness shared by the ``benchmarks/`` suites.

The paper's evaluation (Section 4) consists of parameter sweeps — over the
number of tuples (Exp-1), the number of attributes (Exp-2) and the
approximation threshold (Exp-3) — each producing one runtime series per
algorithm ("OD", "AOD (optimal)", "AOD (iterative)") plus the number of
discovered dependencies annotated on the plots.  This package provides:

* :mod:`repro.benchlib.harness` — timed runs of the discovery framework
  with each validator, with timeouts and projection for the iterative
  series (the paper projects the points it could not finish within 24h),
* :mod:`repro.benchlib.workloads` — the named workload definitions used by
  the experiments (scaled-down flight-like and ncvoter-like tables),
* :mod:`repro.benchlib.reporting` — plain-text tables and series renderers
  that print the same rows/series the paper reports.
"""

from repro.benchlib.harness import (
    DiscoveryMeasurement,
    compare_validators_on_candidates,
    measure_discovery,
    run_sweep,
)
from repro.benchlib.workloads import WorkloadSpec, make_workload
from repro.benchlib.reporting import format_series_table, render_figure

__all__ = [
    "DiscoveryMeasurement",
    "WorkloadSpec",
    "compare_validators_on_candidates",
    "format_series_table",
    "make_workload",
    "measure_discovery",
    "render_figure",
    "run_sweep",
]
