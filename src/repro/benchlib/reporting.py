"""Plain-text rendering of benchmark series and tables.

The benchmark suites print, for every figure of the paper, a table with the
same x-axis points and the same series the paper plots (runtime per
algorithm, annotated with the number of discovered OCs/AOCs).  These
renderers keep that output consistent across experiments and readable in a
terminal / CI log.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        " | ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "-+-".join("-" * width for width in widths),
    ]
    for row in materialised:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_series_table(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    annotations: Optional[Mapping[str, Sequence[object]]] = None,
    value_format: str = "{:.3f}",
) -> str:
    """Render one figure's data as a table: one row per x value, one column
    per series (plus optional annotation columns such as "#AOCs")."""
    headers: List[str] = [x_label]
    for name in series:
        headers.append(name)
    if annotations:
        for name in annotations:
            headers.append(name)
    rows = []
    for index, x in enumerate(x_values):
        row: List[object] = [x]
        for name in series:
            values = series[name]
            row.append(value_format.format(values[index]) if index < len(values) else "-")
        if annotations:
            for name in annotations:
                values = annotations[name]
                row.append(values[index] if index < len(values) else "-")
        rows.append(row)
    return format_table(headers, rows)


def render_figure(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    annotations: Optional[Mapping[str, Sequence[object]]] = None,
    notes: Optional[Sequence[str]] = None,
) -> str:
    """A titled block: the table plus free-form notes (paper-vs-measured)."""
    parts = [f"=== {title} ===",
             format_series_table(x_label, x_values, series, annotations)]
    if notes:
        parts.append("")
        parts.extend(f"  note: {note}" for note in notes)
    return "\n".join(parts)


def render_bench_summary(payload: Mapping[str, object]) -> str:
    """Render ``benchmarks/results/summary.txt`` from the merged
    ``BENCH_discovery.json`` payload.

    The summary is *regenerated wholesale* on every benchmark run — it is a
    view of the JSON, never appended to — so repeated runs can no longer
    accumulate duplicate blocks (they previously did: every session's
    ``figure_report`` appended its figures to the same file).
    Records the payload does not carry are skipped, so a partial run
    (e.g. only the partition micro-suite) still renders cleanly.
    """
    blocks: List[str] = []

    partition = payload.get("partition")
    if isinstance(partition, Mapping):
        backends = partition.get("backends") or {}
        operations = sorted({
            op for timings in backends.values() for op in timings
        })
        headers = ["operation"] + [f"{name} (s)" for name in backends]
        rows = [
            [op] + [
                f"{backends[name].get(op, float('nan')):.3f}"
                for name in backends
            ]
            for op in operations
        ]
        notes = [
            f"workload: flight-like, {partition.get('rows')} rows, "
            f"{partition.get('attributes')} attributes; "
            f"delta of {partition.get('delta_rows')} rows",
        ]
        if partition.get("product_speedup_vs_list") is not None:
            notes.append(
                "numpy product vs seed list-of-lists baseline: "
                f"{partition['product_speedup_vs_list']}x "
                f"(baseline {partition.get('numpy_product_list_baseline_s')}s)"
            )
        blocks.append("\n".join(
            ["=== Partition micro-benchmarks (CSR layout) ===",
             format_table(headers, rows), ""]
            + [f"  note: {note}" for note in notes]
        ))

    runs = payload.get("runs")
    if isinstance(runs, list) and runs:
        notes = [f"workload: {payload.get('workload')}",
                 "identical OC/OFD sets across all configurations (asserted)"]
        if payload.get("batched_speedup"):
            notes.append("batched speedup vs per-candidate: "
                         f"{payload['batched_speedup']}")
        if payload.get("worker_scaling"):
            notes.append("worker scaling (pipelined, column plane): "
                         f"{payload['worker_scaling']}")
        blocks.append("\n".join(
            ["=== End-to-end discovery: per-candidate vs batched vs sharded ===",
             format_table(
                 ["configuration", "seconds", "validation share"],
                 [[run.get("label"), f"{run.get('seconds', 0.0):.3f}",
                   f"{run.get('validation_share', 0.0):.3f}"]
                  for run in runs],
             ), ""]
            + [f"  note: {note}" for note in notes]
        ))

    planner = payload.get("planner")
    if isinstance(planner, Mapping):
        best = planner.get("best_fixed") or {}
        worst = planner.get("worst_fixed") or {}
        blocks.append("\n".join([
            "=== Adaptive planner vs fixed configurations ===",
            format_table(
                ["configuration", "seconds"],
                [[planner.get("label"), f"{planner.get('seconds', 0.0):.3f}"]]
                + [[case, f"{seconds:.3f}"] for case, seconds
                   in sorted((planner.get("fixed") or {}).items())],
            ),
            "",
            f"  note: best fixed {best.get('case')} {best.get('seconds')}s "
            f"(planner ratio {planner.get('vs_best')}); worst fixed "
            f"{worst.get('case')} {worst.get('seconds')}s "
            f"(ratio {planner.get('vs_worst')})",
            f"  note: cpu_count {planner.get('cpu_count')}, worker ceiling "
            f"{planner.get('max_workers')}",
        ]))

    sweep = payload.get("sweep")
    if isinstance(sweep, Mapping):
        blocks.append(
            "=== Session sweep: cold vs warm ===\n"
            f"  thresholds {sweep.get('thresholds')} "
            f"({sweep.get('backend')}): cold {sweep.get('cold_seconds')}s "
            f"vs warm {sweep.get('warm_seconds')}s = "
            f"{sweep.get('speedup')}x (memo hits: {sweep.get('memo_hits')})"
        )

    incremental = payload.get("incremental")
    if isinstance(incremental, Mapping):
        blocks.append(
            "=== Incremental append vs cold re-discovery ===\n"
            f"  append of {incremental.get('delta_rows')} rows "
            f"({incremental.get('backend')}): cold "
            f"{incremental.get('cold_seconds')}s vs incremental "
            f"{incremental.get('incremental_seconds')}s = "
            f"{incremental.get('speedup')}x "
            f"(memo hits: {incremental.get('memo_hits')})"
        )

    observability = payload.get("observability")
    if isinstance(observability, Mapping):
        blocks.append("\n".join([
            "=== Observability overhead (tracing off vs on) ===",
            f"  instrumentation touchpoints: "
            f"{observability.get('touchpoints')} "
            f"(noop span cost {observability.get('noop_span_cost_us')}us)",
            f"  tracing off: {observability.get('off_seconds')}s, "
            f"projected overhead "
            f"{observability.get('tracing_off_overhead_pct')}% "
            f"(bar: <= {observability.get('overhead_budget_pct')}%)",
            f"  tracing on: {observability.get('on_seconds')}s, "
            f"{observability.get('spans')} spans recorded "
            f"(results byte-identical: "
            f"{observability.get('byte_identical')})",
        ]))

    serve = payload.get("serve")
    if isinstance(serve, Mapping):
        backends = serve.get("backends") or {}
        blocks.append("\n".join(
            ["=== Serve-layer load (admission control under concurrency) ===",
             format_table(
                 ["backend", "accepted", "rejected", "rejection rate",
                  "p50 (ms)", "p95 (ms)"],
                 [[name,
                   str(record.get("accepted")),
                   str(record.get("rejected")),
                   f"{record.get('rejection_rate', 0.0):.3f}",
                   f"{record.get('p50_latency_ms', 0.0):.2f}",
                   f"{record.get('p95_latency_ms', 0.0):.2f}"]
                  for name, record in sorted(backends.items())],
             ), "",
             f"  note: {serve.get('concurrency')} clients x "
             f"{serve.get('requests_per_client')} requests against one "
             f"dataset ({serve.get('rows')} rows), "
             f"queue_depth={serve.get('queue_depth')}, "
             f"max_inflight={serve.get('max_inflight')}",
             "  note: rejections are 429/503 responses (no client "
             "retries); percentiles cover accepted requests only",
             ]
        ))

    rendered = "\n\n".join(blocks)
    header = (
        "Benchmark summary — generated from BENCH_discovery.json by "
        "repro.benchlib.reporting.write_bench_summary; do not edit.\n"
    )
    return header + "\n" + rendered + ("\n" if rendered else "")


def write_bench_summary(json_path, summary_path) -> str:
    """Regenerate ``summary_path`` from the ``json_path`` payload; returns
    the rendered text."""
    import json
    from pathlib import Path

    payload = json.loads(Path(json_path).read_text(encoding="utf-8"))
    text = render_bench_summary(payload)
    Path(summary_path).write_text(text, encoding="utf-8")
    return text


def speedup_series(
    baseline: Sequence[float], improved: Sequence[float]
) -> List[float]:
    """Element-wise speed-up factors ``baseline / improved``."""
    factors = []
    for slow, fast in zip(baseline, improved):
        factors.append(slow / fast if fast > 0 else float("inf"))
    return factors


def projected_quadratic_runtime(
    measured_seconds: float, measured_rows: int, target_rows: int
) -> float:
    """Project a quadratic-cost runtime to a larger input size.

    The paper projects the iterative series' missing points (those that did
    not finish within 24 hours); the same projection lets the benches report
    comparable numbers without actually burning hours on the baseline.
    """
    if measured_rows <= 0:
        raise ValueError("measured_rows must be positive")
    scale = target_rows / measured_rows
    return measured_seconds * scale * scale
