"""Plain-text rendering of benchmark series and tables.

The benchmark suites print, for every figure of the paper, a table with the
same x-axis points and the same series the paper plots (runtime per
algorithm, annotated with the number of discovered OCs/AOCs).  These
renderers keep that output consistent across experiments and readable in a
terminal / CI log.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        " | ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "-+-".join("-" * width for width in widths),
    ]
    for row in materialised:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_series_table(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    annotations: Optional[Mapping[str, Sequence[object]]] = None,
    value_format: str = "{:.3f}",
) -> str:
    """Render one figure's data as a table: one row per x value, one column
    per series (plus optional annotation columns such as "#AOCs")."""
    headers: List[str] = [x_label]
    for name in series:
        headers.append(name)
    if annotations:
        for name in annotations:
            headers.append(name)
    rows = []
    for index, x in enumerate(x_values):
        row: List[object] = [x]
        for name in series:
            values = series[name]
            row.append(value_format.format(values[index]) if index < len(values) else "-")
        if annotations:
            for name in annotations:
                values = annotations[name]
                row.append(values[index] if index < len(values) else "-")
        rows.append(row)
    return format_table(headers, rows)


def render_figure(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    annotations: Optional[Mapping[str, Sequence[object]]] = None,
    notes: Optional[Sequence[str]] = None,
) -> str:
    """A titled block: the table plus free-form notes (paper-vs-measured)."""
    parts = [f"=== {title} ===",
             format_series_table(x_label, x_values, series, annotations)]
    if notes:
        parts.append("")
        parts.extend(f"  note: {note}" for note in notes)
    return "\n".join(parts)


def speedup_series(
    baseline: Sequence[float], improved: Sequence[float]
) -> List[float]:
    """Element-wise speed-up factors ``baseline / improved``."""
    factors = []
    for slow, fast in zip(baseline, improved):
        factors.append(slow / fast if fast > 0 else float("inf"))
    return factors


def projected_quadratic_runtime(
    measured_seconds: float, measured_rows: int, target_rows: int
) -> float:
    """Project a quadratic-cost runtime to a larger input size.

    The paper projects the iterative series' missing points (those that did
    not finish within 24 hours); the same projection lets the benches report
    comparable numbers without actually burning hours on the baseline.
    """
    if measured_rows <= 0:
        raise ValueError("measured_rows must be positive")
    scale = target_rows / measured_rows
    return measured_seconds * scale * scale
