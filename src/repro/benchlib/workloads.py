"""Named workload definitions for the benchmark suites.

The paper's experiments fix a dataset (flight or ncvoter), a number of
tuples, a number of attributes and an approximation threshold.  A
:class:`WorkloadSpec` captures that tuple of parameters; :func:`make_workload`
materialises the corresponding synthetic relation (see DESIGN.md for the
substitution rationale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dataset.generators import (
    GeneratedWorkload,
    generate_flight_like,
    generate_ncvoter_like,
)

#: Registry of dataset-name -> generator function.
DATASET_GENERATORS = {
    "flight": generate_flight_like,
    "ncvoter": generate_ncvoter_like,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """A fully specified benchmark workload."""

    dataset: str
    num_rows: int
    num_attributes: int = 10
    error_rate: float = 0.08
    seed: int = 7

    def __post_init__(self) -> None:
        if self.dataset not in DATASET_GENERATORS:
            raise ValueError(
                f"unknown dataset {self.dataset!r}; expected one of "
                f"{sorted(DATASET_GENERATORS)}"
            )

    @property
    def label(self) -> str:
        """Short label used in benchmark output (e.g. ``flight-10K-10``)."""
        return f"{self.dataset}-{_format_count(self.num_rows)}-{self.num_attributes}"


def _format_count(count: int) -> str:
    """Human-style tuple counts: 1000 -> 1K, 1000000 -> 1M."""
    if count % 1_000_000 == 0 and count >= 1_000_000:
        return f"{count // 1_000_000}M"
    if count % 1_000 == 0 and count >= 1_000:
        return f"{count // 1_000}K"
    return str(count)


_CACHE: Dict[WorkloadSpec, GeneratedWorkload] = {}


def make_workload(spec: WorkloadSpec, use_cache: bool = True) -> GeneratedWorkload:
    """Materialise (and memoise) the relation described by ``spec``.

    Workload generation is deterministic, so caching by spec is safe and
    keeps repeated benchmark fixtures cheap.
    """
    if use_cache and spec in _CACHE:
        return _CACHE[spec]
    generator = DATASET_GENERATORS[spec.dataset]
    workload = generator(
        num_rows=spec.num_rows,
        num_attributes=spec.num_attributes,
        error_rate=spec.error_rate,
        seed=spec.seed,
    )
    if use_cache:
        _CACHE[spec] = workload
    return workload


def clear_workload_cache() -> None:
    """Drop all memoised workloads (used by tests of this module)."""
    _CACHE.clear()
