"""Timed discovery runs and validator comparisons.

The harness wraps the discovery engine with wall-clock measurement, a
configurable timeout (standing in for the paper's 24-hour cut-off on the
iterative series), and per-candidate validator comparisons used by Exp-4
(removal-set sizes and missed AOCs).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dataset.relation import Relation
from repro.dependencies.oc import CanonicalOC
from repro.discovery.api import discover_aods
from repro.discovery.config import DiscoveryConfig, DiscoveryRequest
from repro.discovery.engine import DiscoveryEngine
from repro.discovery.results import DiscoveryResult
from repro.discovery.session import Profiler
from repro.validation.approx_oc_iterative import validate_aoc_iterative
from repro.validation.approx_oc_optimal import validate_aoc_optimal


def time_best_of(fn: Callable[[], object], repeats: int = 5) -> float:
    """Best-of-``repeats`` wall-clock seconds for one call of ``fn``.

    The micro-benchmarks use the *minimum* over repeats: on a shared runner
    it is the least noisy estimator of the work actually required, and the
    one the recorded speedup ratios are stable under.
    """
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


@dataclass
class DiscoveryMeasurement:
    """One timed discovery run."""

    label: str
    seconds: float
    num_ocs: int
    num_ofds: int
    timed_out: bool
    validation_share: float
    result: DiscoveryResult
    #: Which compute backend produced this measurement (resolved name).
    backend: str = "python"
    #: Whether the level-synchronous batched scheduler was active.
    batched: bool = True
    #: Worker processes sharding batched OC validation (1 = in-process).
    num_workers: int = 1
    #: Whether level validation overlapped workers with coordinator work.
    pipelined: bool = False
    #: Execution-planning mode ("fixed" or "auto", see :mod:`repro.planner`).
    plan: str = "fixed"

    def as_row(self) -> Dict[str, object]:
        """Flatten to a dict for the reporting tables."""
        return {
            "label": self.label,
            "backend": self.backend,
            "batched": self.batched,
            "workers": self.num_workers,
            "pipelined": self.pipelined,
            "plan": self.plan,
            "seconds": round(self.seconds, 4),
            "ocs": self.num_ocs,
            "ofds": self.num_ofds,
            "timed_out": self.timed_out,
            "validation_share": round(self.validation_share, 4),
        }


def measure_discovery(
    relation: Relation,
    mode: str,
    threshold: float = 0.1,
    attributes: Optional[Sequence[str]] = None,
    max_level: Optional[int] = None,
    time_limit_seconds: Optional[float] = None,
    label: Optional[str] = None,
    backend: Optional[str] = None,
    batch_validation: bool = True,
    num_workers: int = 1,
    pipeline_validation: bool = True,
    plan: str = "fixed",
) -> DiscoveryMeasurement:
    """Run discovery in one of the paper's three modes and time it.

    ``mode`` is ``"od"`` (exact discovery, the "OD" series), ``"aod-optimal"``
    or ``"aod-iterative"``.  ``backend`` selects the compute backend,
    ``batch_validation`` / ``num_workers`` the scheduling mode; all three are
    recorded on the measurement so reports can attribute every number to the
    configuration that produced it.
    """
    common = dict(
        attributes=attributes,
        max_level=max_level,
        time_limit_seconds=time_limit_seconds,
        backend=backend,
        batch_validation=batch_validation,
        num_workers=num_workers,
        pipeline_validation=pipeline_validation,
        plan=plan,
    )
    if mode == "od":
        config = DiscoveryConfig.exact(**common)
    elif mode == "aod-optimal":
        config = DiscoveryConfig.approximate(
            threshold=threshold, validator="optimal", **common
        )
    elif mode == "aod-iterative":
        config = DiscoveryConfig.approximate(
            threshold=threshold, validator="iterative", **common
        )
    else:
        raise ValueError(
            f"mode must be 'od', 'aod-optimal' or 'aod-iterative', got {mode!r}"
        )
    start = time.perf_counter()
    result = DiscoveryEngine(relation, config).run()
    elapsed = time.perf_counter() - start
    return DiscoveryMeasurement(
        label=label or mode,
        seconds=elapsed,
        num_ocs=result.num_ocs,
        num_ofds=result.num_ofds,
        timed_out=result.timed_out,
        validation_share=result.stats.validation_share,
        result=result,
        backend=result.stats.backend,
        batched=result.stats.batched,
        num_workers=result.stats.num_workers,
        pipelined=result.stats.pipelined,
        plan=result.stats.plan_mode,
    )


@dataclass
class SweepMeasurement:
    """Cold-vs-warm comparison of a threshold sweep (the session API's
    headline win: one :class:`~repro.discovery.session.Profiler` reusing
    partitions, pools and validation outcomes across ε values)."""

    thresholds: List[float]
    #: One fresh engine per threshold (the pre-session one-shot pattern).
    cold_seconds: float
    #: One warm session running :meth:`Profiler.sweep`.
    warm_seconds: float
    cold_results: List[DiscoveryResult]
    warm_results: List[DiscoveryResult]
    backend: str = "python"
    num_workers: int = 1

    @property
    def speedup(self) -> float:
        """How much faster the warm session sweep ran."""
        if self.warm_seconds <= 0:
            return float("inf")
        return self.cold_seconds / self.warm_seconds

    def as_row(self) -> Dict[str, object]:
        """Flatten to a dict for the reporting tables / JSON artifacts."""
        return {
            "thresholds": list(self.thresholds),
            "backend": self.backend,
            "workers": self.num_workers,
            "cold_seconds": round(self.cold_seconds, 4),
            "warm_seconds": round(self.warm_seconds, 4),
            "speedup": round(self.speedup, 2),
            "memo_hits": [
                r.stats.validation_memo_hits for r in self.warm_results
            ],
        }


def measure_sweep(
    relation: Relation,
    thresholds: Sequence[float],
    validator: str = "optimal",
    attributes: Optional[Sequence[str]] = None,
    max_level: Optional[int] = None,
    backend: Optional[str] = None,
    num_workers: int = 1,
) -> SweepMeasurement:
    """Time a threshold sweep cold (repeated one-shot runs) and warm (one
    session), asserting nothing — per-threshold result comparisons are the
    caller's job.

    The cold series *is* repeated :func:`discover_aods` calls (fresh
    one-shot session state per threshold); the warm series runs
    :meth:`Profiler.sweep` on one session.  The relation is encoded once
    up front so both series time discovery, not encoding.
    """
    relation.encoded(backend)
    request = DiscoveryRequest(
        validator=validator,
        attributes=None if attributes is None else list(attributes),
        max_level=max_level,
    )

    cold_results: List[DiscoveryResult] = []
    cold_start = time.perf_counter()
    for threshold in thresholds:
        cold_results.append(discover_aods(
            relation,
            threshold=threshold,
            validator=validator,
            attributes=attributes,
            max_level=max_level,
            backend=backend,
            num_workers=num_workers,
        ))
    cold_seconds = time.perf_counter() - cold_start

    warm_start = time.perf_counter()
    with Profiler(relation, backend=backend, num_workers=num_workers) as session:
        warm_results = session.sweep(thresholds, request=request)
    warm_seconds = time.perf_counter() - warm_start

    return SweepMeasurement(
        thresholds=list(thresholds),
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        cold_results=cold_results,
        warm_results=warm_results,
        backend=warm_results[0].stats.backend if warm_results else "python",
        num_workers=num_workers,
    )


@dataclass
class IncrementalMeasurement:
    """Incremental-vs-cold comparison after a row append.

    ``incremental_seconds`` times :meth:`Profiler.extend` plus
    :meth:`Profiler.discover_incremental` on a warm session;
    ``cold_seconds`` times what the pre-incremental world had to do
    instead — a from-scratch session over the concatenated table (encoding,
    partitions, every validation) running one discovery.
    """

    base_rows: int
    delta_rows: int
    threshold: float
    cold_seconds: float
    incremental_seconds: float
    cold_result: DiscoveryResult
    incremental_result: DiscoveryResult
    num_revoked: int
    num_added: int
    memo_hits: int
    backend: str = "python"

    @property
    def speedup(self) -> float:
        """How much faster the incremental path re-established the result."""
        if self.incremental_seconds <= 0:
            return float("inf")
        return self.cold_seconds / self.incremental_seconds

    def as_row(self) -> Dict[str, object]:
        """Flatten to a dict for the reporting tables / JSON artifacts."""
        return {
            "base_rows": self.base_rows,
            "delta_rows": self.delta_rows,
            "threshold": self.threshold,
            "backend": self.backend,
            "cold_seconds": round(self.cold_seconds, 4),
            "incremental_seconds": round(self.incremental_seconds, 4),
            "speedup": round(self.speedup, 2),
            "revoked": self.num_revoked,
            "added": self.num_added,
            "memo_hits": self.memo_hits,
        }


def measure_incremental(
    base_relation: Relation,
    delta_rows: Sequence[Sequence[object]],
    threshold: float = 0.1,
    validator: str = "optimal",
    attributes: Optional[Sequence[str]] = None,
    max_level: Optional[int] = None,
    backend: Optional[str] = None,
    num_workers: int = 1,
) -> IncrementalMeasurement:
    """Time incremental maintenance against a cold re-discovery.

    A warm session first discovers over ``base_relation`` (untimed — that
    is the state any long-lived session already has), then the appended
    rows arrive: the incremental leg times ``extend`` +
    ``discover_incremental``; the cold leg times a fresh one-shot session
    over the concatenated table.  Equality of the two results is the
    caller's assertion to make.
    """
    request = DiscoveryRequest(
        threshold=threshold,
        validator=validator,
        attributes=None if attributes is None else list(attributes),
        max_level=max_level,
    )
    delta_rows = [list(row) for row in delta_rows]

    with Profiler(
        base_relation, backend=backend, num_workers=num_workers
    ) as session:
        session.discover(request)  # the warm baseline (untimed)
        incremental_start = time.perf_counter()
        session.extend(delta_rows)
        outcome = session.discover_incremental(request)
        incremental_seconds = time.perf_counter() - incremental_start
        extended_relation = session.relation

    delta_relation = Relation(
        base_relation.schema,
        {
            name: [row[index] for row in delta_rows]
            for index, name in enumerate(base_relation.attribute_names)
        },
    )
    concatenated = base_relation.concat(delta_relation)
    cold_start = time.perf_counter()
    with Profiler(
        concatenated, backend=backend, num_workers=num_workers,
        cache_validations=False, retain_partitions=False,
    ) as cold_session:
        cold_result = cold_session.discover(request)
    cold_seconds = time.perf_counter() - cold_start

    assert extended_relation.num_rows == concatenated.num_rows
    return IncrementalMeasurement(
        base_rows=base_relation.num_rows,
        delta_rows=len(delta_rows),
        threshold=threshold,
        cold_seconds=cold_seconds,
        incremental_seconds=incremental_seconds,
        cold_result=cold_result,
        incremental_result=outcome.result,
        num_revoked=outcome.num_revoked,
        num_added=outcome.num_added,
        memo_hits=outcome.result.stats.validation_memo_hits,
        backend=outcome.result.stats.backend,
    )


def run_sweep(
    relation_factory: Callable[[object], Relation],
    sweep_values: Iterable[object],
    modes: Sequence[str] = ("od", "aod-optimal", "aod-iterative"),
    threshold: float = 0.1,
    time_limit_seconds: Optional[float] = None,
    max_level: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[str, List[DiscoveryMeasurement]]:
    """Run every mode over a parameter sweep.

    ``relation_factory(value)`` builds the relation for one sweep point
    (e.g. the prefix of a dataset of a given size); the result maps each
    mode to its series of measurements, ready for
    :func:`repro.benchlib.reporting.format_series_table`.
    """
    series: Dict[str, List[DiscoveryMeasurement]] = {mode: [] for mode in modes}
    for value in sweep_values:
        relation = relation_factory(value)
        for mode in modes:
            measurement = measure_discovery(
                relation,
                mode,
                threshold=threshold,
                time_limit_seconds=time_limit_seconds,
                max_level=max_level,
                label=f"{mode}@{value}",
                backend=backend,
            )
            series[mode].append(measurement)
    return series


@dataclass
class CandidateComparison:
    """Optimal-vs-iterative comparison for a single OC candidate (Exp-4)."""

    oc: CanonicalOC
    optimal_removal: int
    iterative_removal: int
    optimal_factor: float
    iterative_factor: float

    @property
    def overestimate(self) -> int:
        """How many extra tuples the greedy validator removed."""
        return self.iterative_removal - self.optimal_removal

    @property
    def relative_overestimate(self) -> float:
        """Relative removal-set inflation (the paper reports ≈1% on average)."""
        if self.optimal_removal == 0:
            return 0.0 if self.iterative_removal == 0 else float("inf")
        return (self.iterative_removal - self.optimal_removal) / self.optimal_removal


@dataclass
class ComparisonSummary:
    """Aggregate of :func:`compare_validators_on_candidates`."""

    comparisons: List[CandidateComparison] = field(default_factory=list)
    threshold: Optional[float] = None

    @property
    def num_candidates(self) -> int:
        return len(self.comparisons)

    @property
    def mean_relative_overestimate(self) -> float:
        """Average removal-set inflation over candidates with violations."""
        relevant = [
            c.relative_overestimate
            for c in self.comparisons
            if c.optimal_removal > 0 and c.relative_overestimate != float("inf")
        ]
        if not relevant:
            return 0.0
        return sum(relevant) / len(relevant)

    def missed_by_iterative(self) -> List[CandidateComparison]:
        """Candidates valid under the optimal validator but rejected by the
        greedy one (requires a threshold) — the paper's "missed AOCs"."""
        if self.threshold is None:
            return []
        return [
            c
            for c in self.comparisons
            if c.optimal_factor <= self.threshold < c.iterative_factor
        ]


def compare_validators_on_candidates(
    relation: Relation,
    candidates: Iterable[CanonicalOC],
    threshold: Optional[float] = None,
    backend: Optional[str] = None,
) -> ComparisonSummary:
    """Validate every candidate with both algorithms and compare removal sets."""
    summary = ComparisonSummary(threshold=threshold)
    for oc in candidates:
        optimal = validate_aoc_optimal(relation, oc, backend=backend)
        iterative = validate_aoc_iterative(relation, oc, backend=backend)
        summary.comparisons.append(
            CandidateComparison(
                oc=oc,
                optimal_removal=optimal.removal_size,
                iterative_removal=iterative.removal_size,
                optimal_factor=optimal.approximation_factor,
                iterative_factor=iterative.approximation_factor,
            )
        )
    return summary
