"""Stdlib HTTP client for the serve layer.

A thin, dependency-free counterpart to :mod:`repro.serve`: it speaks the
service's JSON/NDJSON protocol, carries the optional bearer token, and —
the part worth centralising — retries on backpressure.  ``429`` and
``503`` responses are retried with exponential backoff, honouring the
server's ``Retry-After`` header when present (the serve layer computes it
from the per-dataset EWMA of run durations, so it is an honest estimate,
not a constant).

Example
-------
>>> client = ServeClient("http://127.0.0.1:8337", token="s3cret")
>>> client.upload_csv("flight", "a,b\\n1,2\\n")
>>> result = client.discover("flight", {"max_lhs_size": 2})
>>> client.delete_dataset("flight")

Transport errors (connection refused/reset) surface as
:class:`ServeUnavailable` after retries are exhausted; HTTP error payloads
surface as :class:`ServeHTTPError` with the decoded JSON body attached.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "ServeClient",
    "ServeClientError",
    "ServeHTTPError",
    "ServeUnavailable",
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_BACKOFF_SECONDS",
    "DEFAULT_BACKOFF_CAP_SECONDS",
]

#: Retry budget for retryable failures (429/503/transport errors).
DEFAULT_MAX_RETRIES = 4
#: First backoff sleep; doubles per attempt when no ``Retry-After`` is given.
DEFAULT_BACKOFF_SECONDS = 0.1
#: Upper bound on any single backoff sleep.
DEFAULT_BACKOFF_CAP_SECONDS = 5.0

_RETRYABLE_STATUSES = (429, 503)


class ServeClientError(Exception):
    """Base class for client-side failures."""


class ServeHTTPError(ServeClientError):
    """A non-2xx response from the server."""

    def __init__(self, status: int, payload: Optional[Dict[str, Any]], url: str):
        self.status = status
        self.payload = payload or {}
        self.url = url
        message = self.payload.get("error") or f"HTTP {status}"
        super().__init__(f"{message} ({status} from {url})")


class ServeUnavailable(ServeClientError):
    """The server could not be reached (or stayed overloaded) after retries."""


class ServeClient:
    """Small synchronous client with retry/backoff for the serve layer.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of a ``repro serve`` process.
    token:
        Optional bearer token, sent as ``Authorization: Bearer <token>``
        (required by the server for lifecycle endpoints when it was
        started with ``--auth-token``).
    timeout:
        Per-request socket timeout in seconds.
    max_retries / backoff_seconds / backoff_cap_seconds:
        Retry policy for 429/503 and transport errors.  ``Retry-After``
        from the server takes precedence over the computed backoff.
    sleep:
        Injection point for tests; defaults to :func:`time.sleep`.
    """

    def __init__(
        self,
        base_url: str,
        *,
        token: Optional[str] = None,
        timeout: float = 60.0,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
        backoff_cap_seconds: float = DEFAULT_BACKOFF_CAP_SECONDS,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.token = token
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self.backoff_cap_seconds = backoff_cap_seconds
        self._sleep = sleep
        #: Count of retry sleeps performed (useful in tests/benchmarks).
        self.retries_performed = 0

    # ------------------------------------------------------------------ core

    def _headers(self, content_type: Optional[str] = None) -> Dict[str, str]:
        headers: Dict[str, str] = {"Accept": "application/json"}
        if content_type:
            headers["Content-Type"] = content_type
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        return headers

    def _backoff(self, attempt: int, retry_after: Optional[float]) -> float:
        if retry_after is not None and retry_after > 0:
            return min(retry_after, self.backoff_cap_seconds)
        return min(
            self.backoff_seconds * (2 ** attempt), self.backoff_cap_seconds
        )

    @staticmethod
    def _retry_after_seconds(headers: Any) -> Optional[float]:
        value = headers.get("Retry-After") if headers is not None else None
        if value is None:
            return None
        try:
            return max(0.0, float(value))
        except (TypeError, ValueError):
            return None

    def _request(
        self,
        method: str,
        path: str,
        *,
        body: Optional[bytes] = None,
        content_type: Optional[str] = None,
        stream: bool = False,
    ) -> Any:
        """Issue one logical request with retry/backoff.

        Returns the decoded JSON payload, or the open ``http.client``
        response object when ``stream=True`` (caller must close it).
        """
        url = f"{self.base_url}{path}"
        last_error: Optional[Exception] = None
        for attempt in range(self.max_retries + 1):
            request = urllib.request.Request(
                url,
                data=body,
                method=method,
                headers=self._headers(content_type),
            )
            try:
                response = urllib.request.urlopen(request, timeout=self.timeout)
            except urllib.error.HTTPError as error:
                raw = error.read()
                try:
                    payload = json.loads(raw.decode("utf-8")) if raw else None
                except ValueError:
                    payload = None
                if error.code in _RETRYABLE_STATUSES and attempt < self.max_retries:
                    delay = self._backoff(
                        attempt, self._retry_after_seconds(error.headers)
                    )
                    self.retries_performed += 1
                    self._sleep(delay)
                    last_error = ServeHTTPError(error.code, payload, url)
                    continue
                raise ServeHTTPError(error.code, payload, url) from None
            except (urllib.error.URLError, ConnectionError, OSError) as error:
                if attempt < self.max_retries:
                    delay = self._backoff(attempt, None)
                    self.retries_performed += 1
                    self._sleep(delay)
                    last_error = error
                    continue
                raise ServeUnavailable(f"{url}: {error}") from error
            if stream:
                return response
            with response:
                raw = response.read()
            return json.loads(raw.decode("utf-8")) if raw else None
        raise ServeUnavailable(f"{url}: retries exhausted ({last_error})")

    # ------------------------------------------------------------- endpoints

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        response = self._request("GET", "/metrics", stream=True)
        with response:
            return response.read().decode("utf-8")

    def datasets(self) -> Dict[str, Any]:
        return self._request("GET", "/datasets")

    def discover(
        self,
        dataset: Optional[str],
        request: Optional[Dict[str, Any]] = None,
        *,
        deadline_seconds: Optional[float] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"request": dict(request or {})}
        if dataset is not None:
            payload["dataset"] = dataset
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        return self._request(
            "POST",
            "/discover",
            body=json.dumps(payload).encode("utf-8"),
            content_type="application/json",
        )

    def discover_stream(
        self,
        dataset: Optional[str],
        request: Optional[Dict[str, Any]] = None,
        *,
        deadline_seconds: Optional[float] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Yield NDJSON discovery events; the final event is
        ``run_completed`` carrying the full result."""
        payload: Dict[str, Any] = {"request": dict(request or {}), "stream": True}
        if dataset is not None:
            payload["dataset"] = dataset
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        response = self._request(
            "POST",
            "/discover",
            body=json.dumps(payload).encode("utf-8"),
            content_type="application/json",
            stream=True,
        )
        try:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            response.close()

    def append(
        self,
        dataset: str,
        rows: Sequence[Sequence[Any]],
        request: Optional[Dict[str, Any]] = None,
        *,
        deadline_seconds: Optional[float] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"rows": [list(row) for row in rows]}
        if request is not None:
            payload["request"] = dict(request)
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        return self._request(
            "POST",
            f"/datasets/{dataset}/append",
            body=json.dumps(payload).encode("utf-8"),
            content_type="application/json",
        )

    def upload_csv(
        self, dataset: str, csv_text: str, *, pinned: bool = False
    ) -> Dict[str, Any]:
        path = f"/datasets/{dataset}"
        if pinned:
            path += "?pinned=1"
        return self._request(
            "PUT",
            path,
            body=csv_text.encode("utf-8"),
            content_type="text/csv",
        )

    def upload_rows(
        self,
        dataset: str,
        attributes: Sequence[str],
        rows: Sequence[Sequence[Any]],
        *,
        pinned: bool = False,
    ) -> Dict[str, Any]:
        payload = {
            "attributes": list(attributes),
            "rows": [list(row) for row in rows],
            "pinned": pinned,
        }
        return self._request(
            "PUT",
            f"/datasets/{dataset}",
            body=json.dumps(payload).encode("utf-8"),
            content_type="application/json",
        )

    def delete_dataset(self, dataset: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/datasets/{dataset}")
