"""The canonical mapping from list-based ODs to set-based canonical ODs.

Section 2.2 of the paper: a list-based OD ``X ↦→ Y`` holds iff

* ``X ↦→ XY`` holds, which is equivalent to every attribute of ``Y`` being
  constant in the context of the set ``X`` (a collection of OFDs), and
* ``X ~ Y`` holds, which is equivalent to every pair ``(X_i, Y_j)`` being
  order compatible in the context of the union of the strict prefixes
  ``{X_1..X_{i-1}}`` and ``{Y_1..Y_{j-1}}`` (a collection of canonical OCs).

Example 2.13: ``[A, B] ↦→ [C, D]`` maps to
``{A,B}: [] ↦→ C``, ``{A,B}: [] ↦→ D``, ``{}: A ~ C``, ``{A}: B ~ C``,
``{C}: A ~ D`` and ``{A, C}: B ~ D``.
"""

from __future__ import annotations

from typing import List, Union

from repro.dependencies.oc import CanonicalOC
from repro.dependencies.od import ListOD
from repro.dependencies.ofd import OFD

CanonicalDependency = Union[CanonicalOC, OFD]


def canonicalize_list_od(od: ListOD) -> List[CanonicalDependency]:
    """Map a list-based OD onto its equivalent set of canonical OCs and OFDs.

    The result preserves the paper's ordering: OFDs first (one per
    right-hand-side attribute), then OCs in row-major ``(i, j)`` order.
    Trivial statements (an OC whose two sides are the same attribute, or
    whose side already appears in its context, and OFDs whose attribute is in
    the context) are skipped, because they hold vacuously on every relation.
    """
    dependencies: List[CanonicalDependency] = []
    lhs_set = frozenset(od.lhs)

    for attribute in od.rhs:
        if attribute in lhs_set:
            continue  # trivially constant within Pi_X, no statement needed
        dependencies.append(OFD(lhs_set, attribute))

    for i, x_attr in enumerate(od.lhs):
        for j, y_attr in enumerate(od.rhs):
            context = frozenset(od.lhs[:i]) | frozenset(od.rhs[:j])
            if x_attr == y_attr:
                continue  # A ~ A is trivial
            if x_attr in context or y_attr in context:
                continue  # a side that is constant within the context is trivial
            oc = CanonicalOC(context, x_attr, y_attr)
            if oc not in dependencies:
                dependencies.append(oc)
    return dependencies


def canonical_od_components(context, a: str, b: str):
    """Components of the canonical OD ``X: A ↦→ B`` (``OD ≡ OC + OFD``)."""
    return CanonicalOC(context, a, b), OFD(frozenset(context) | {a}, b)
