"""Classic functional dependencies ``X -> A``.

FDs are included because the canonical OD framework factors every OD into an
order-compatibility part and an FD part (``OD ≡ OC + OFD``), and because the
TANE baseline discovers FDs directly.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable


class FD:
    """A functional dependency with a set-valued left-hand side.

    ``FD({"pos", "exp"}, "sal")`` states that ``pos, exp`` functionally
    determines ``sal``.
    """

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: Iterable[str], rhs: str) -> None:
        self.lhs: FrozenSet[str] = frozenset(lhs)
        self.rhs: str = rhs
        if rhs in self.lhs:
            raise ValueError(f"trivial FD: {rhs!r} appears on both sides")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FD):
            return NotImplemented
        return self.lhs == other.lhs and self.rhs == other.rhs

    def __hash__(self) -> int:
        return hash((self.lhs, self.rhs))

    def __repr__(self) -> str:
        lhs = ", ".join(sorted(self.lhs)) or "[]"
        return f"FD({{{lhs}}} -> {self.rhs})"

    def attributes(self) -> FrozenSet[str]:
        """All attributes mentioned by the dependency."""
        return self.lhs | {self.rhs}

    def is_trivial(self) -> bool:
        """An FD is trivial when the right-hand side is in the left-hand side;
        construction forbids that, so this always returns ``False`` — the
        method exists for interface symmetry with the other dependency
        classes."""
        return False
