"""Bidirectional order compatibilities (the [10] extension).

The VLDB Journal version of the set-based framework (Szlichta et al. 2018)
generalises ODs to *bidirectional* statements in which each attribute may be
ordered ascending or descending — e.g. "the later the flight departs, the
*less* time remains to the connection".  The unidirectional canonical OC
``X: A ~ B`` is the special case where both sides are ascending.

The LNDS-based validator extends to the bidirectional case with no change
to the algorithm: a descending side simply negates that attribute's ranks
before sorting, because reversing a domain's order turns "non-decreasing"
into "non-increasing" and vice versa.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

from repro.dependencies.oc import CanonicalOC


class BidirectionalOC:
    """A bidirectional order compatibility ``X: A (asc|desc) ~ B (asc|desc)``."""

    __slots__ = ("context", "a", "b", "a_ascending", "b_ascending")

    def __init__(
        self,
        context: Iterable[str],
        a: str,
        b: str,
        a_ascending: bool = True,
        b_ascending: bool = True,
    ) -> None:
        self.context: FrozenSet[str] = frozenset(context)
        if a == b:
            raise ValueError(f"trivial bidirectional OC: both sides are {a!r}")
        if a in self.context or b in self.context:
            raise ValueError("OC sides must not appear in the context")
        self.a = a
        self.b = b
        self.a_ascending = a_ascending
        self.b_ascending = b_ascending

    # -- identity ----------------------------------------------------------------

    def key(self) -> Tuple:
        """Symmetric, polarity-normalised identity.

        Swapping the two sides does not change the statement, and flipping
        *both* directions does not either (a total order that is ascending in
        both is descending in both when read backwards); the key normalises
        accordingly.
        """
        first = (self.a, self.a_ascending)
        second = (self.b, self.b_ascending)
        if first > second:
            first, second = second, first
        if not first[1]:  # normalise polarity: first side ascending
            first = (first[0], True)
            second = (second[0], not second[1])
        return (self.context, first, second)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BidirectionalOC):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        ctx = ", ".join(sorted(self.context))
        a_dir = "asc" if self.a_ascending else "desc"
        b_dir = "asc" if self.b_ascending else "desc"
        return f"BOC({{{ctx}}}: {self.a} [{a_dir}] ~ {self.b} [{b_dir}])"

    # -- helpers -------------------------------------------------------------------

    @property
    def is_unidirectional(self) -> bool:
        """True when both sides share the same polarity (equivalent to a
        plain canonical OC)."""
        return self.a_ascending == self.b_ascending

    def to_canonical(self) -> CanonicalOC:
        """The equivalent plain OC (only defined when unidirectional)."""
        if not self.is_unidirectional:
            raise ValueError(
                "a mixed-polarity bidirectional OC has no unidirectional equivalent"
            )
        return CanonicalOC(self.context, self.a, self.b)

    def attributes(self) -> FrozenSet[str]:
        """All attributes mentioned by the statement."""
        return self.context | {self.a, self.b}

    def flipped_polarity(self) -> "BidirectionalOC":
        """The same statement with both polarities flipped (equal to self)."""
        return BidirectionalOC(
            self.context, self.a, self.b,
            not self.a_ascending, not self.b_ascending,
        )
