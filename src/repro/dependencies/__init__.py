"""Dependency model: ODs, OCs, OFDs, FDs and the canonical mapping.

The paper works with two equivalent representations:

* **list-based** order dependencies ``X ↦→ Y`` over attribute *lists*
  (:class:`~repro.dependencies.od.ListOD`), the natural ``ORDER BY`` style
  statement, and
* **set-based canonical** dependencies with a *context*: canonical order
  compatibilities ``X: A ~ B``
  (:class:`~repro.dependencies.oc.CanonicalOC`) and order functional
  dependencies ``X: [] ↦→ A`` (:class:`~repro.dependencies.ofd.OFD`).

:func:`~repro.dependencies.canonical.canonicalize_list_od` maps the former
onto a polynomial-size set of the latter (Section 2.2, Example 2.13), which
is what makes the set-based lattice search of the discovery framework
possible.
"""

from repro.dependencies.fd import FD
from repro.dependencies.oc import CanonicalOC
from repro.dependencies.od import CanonicalOD, ListOD
from repro.dependencies.ofd import OFD
from repro.dependencies.canonical import canonicalize_list_od
from repro.dependencies.nested_order import nested_compare, nested_leq, nested_lt
from repro.dependencies.violations import (
    count_splits,
    count_swaps,
    find_splits,
    find_swaps,
    od_holds,
)

__all__ = [
    "CanonicalOC",
    "CanonicalOD",
    "FD",
    "ListOD",
    "OFD",
    "canonicalize_list_od",
    "count_splits",
    "count_swaps",
    "find_splits",
    "find_swaps",
    "nested_compare",
    "nested_leq",
    "nested_lt",
    "od_holds",
]
