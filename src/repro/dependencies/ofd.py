"""Order functional dependencies ``X: [] ↦→ A`` — Definition 2.11.

An OFD states that the attribute ``A`` is constant within every equivalence
class of the context ``X``; it is logically equivalent to the list-based OD
``X' ↦→ X'A`` for any permutation ``X'`` of ``X``, and to the classic FD
``X -> A``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable


class OFD:
    """An order functional dependency ``X: [] ↦→ A``."""

    __slots__ = ("context", "attribute")

    def __init__(self, context: Iterable[str], attribute: str) -> None:
        self.context: FrozenSet[str] = frozenset(context)
        if attribute in self.context:
            raise ValueError(
                f"trivial OFD: {attribute!r} appears in the context "
                f"{sorted(self.context)}"
            )
        self.attribute = attribute

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OFD):
            return NotImplemented
        return self.context == other.context and self.attribute == other.attribute

    def __hash__(self) -> int:
        return hash((self.context, self.attribute))

    def __repr__(self) -> str:
        ctx = ", ".join(sorted(self.context))
        return f"OFD({{{ctx}}}: [] -> {self.attribute})"

    @property
    def level(self) -> int:
        """Lattice level at which this OFD is generated (``|X| + 1``)."""
        return len(self.context) + 1

    def attributes(self) -> FrozenSet[str]:
        """All attributes mentioned by the dependency."""
        return self.context | {self.attribute}

    def to_fd(self):
        """Return the equivalent classic FD ``X -> A`` (empty contexts map to
        an FD with an empty left-hand side, i.e. "A is constant")."""
        from repro.dependencies.fd import FD

        if not self.context:
            # FD with empty LHS: representable, means the attribute is constant.
            fd = FD.__new__(FD)
            fd.lhs = frozenset()
            fd.rhs = self.attribute
            return fd
        return FD(self.context, self.attribute)

    def is_trivial(self) -> bool:
        """OFDs constructed through this class are never trivial."""
        return False
