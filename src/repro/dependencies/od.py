"""Order dependencies: list-based ``X ↦→ Y`` and canonical ``X: A ↦→ B``.

:class:`ListOD` is the natural ``ORDER BY``-style statement over attribute
lists (Definition 2.2).  :class:`CanonicalOD` is the set-based form
``X: A ↦→ B`` used by the discovery framework: it is logically equivalent to
the canonical OC ``X: A ~ B`` together with the OFD ``XA: [] ↦→ B``
(Section 2.2).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Tuple

from repro.dependencies.oc import CanonicalOC
from repro.dependencies.ofd import OFD


class ListOD:
    """A list-based order dependency ``X ↦→ Y``.

    ``ListOD(["sal"], ["taxGrp"])`` states that ordering the table by
    ``sal`` also orders it by ``taxGrp``.  Attribute order within each side
    matters; duplicates within a side are rejected (they never change the
    semantics of the nested order and only inflate the statement).
    """

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: Sequence[str], rhs: Sequence[str]) -> None:
        self.lhs: Tuple[str, ...] = tuple(lhs)
        self.rhs: Tuple[str, ...] = tuple(rhs)
        if len(set(self.lhs)) != len(self.lhs):
            raise ValueError(f"duplicate attributes on the left side: {self.lhs}")
        if len(set(self.rhs)) != len(self.rhs):
            raise ValueError(f"duplicate attributes on the right side: {self.rhs}")
        if not self.rhs:
            raise ValueError("right side of an OD must be non-empty")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ListOD):
            return NotImplemented
        return self.lhs == other.lhs and self.rhs == other.rhs

    def __hash__(self) -> int:
        return hash((self.lhs, self.rhs))

    def __repr__(self) -> str:
        return f"OD([{', '.join(self.lhs)}] -> [{', '.join(self.rhs)}])"

    def attributes(self) -> FrozenSet[str]:
        """All attributes mentioned by the dependency."""
        return frozenset(self.lhs) | frozenset(self.rhs)

    def reversed(self) -> "ListOD":
        """Return ``Y ↦→ X`` (used to express order equivalence)."""
        return ListOD(self.rhs, self.lhs)

    def canonicalize(self) -> List[object]:
        """Map to the logically equivalent set of canonical OCs and OFDs.

        See :func:`repro.dependencies.canonical.canonicalize_list_od`.
        """
        from repro.dependencies.canonical import canonicalize_list_od

        return canonicalize_list_od(self)


class CanonicalOD:
    """A canonical order dependency ``X: A ↦→ B``.

    Equivalent to ``CanonicalOC(X, A, B)`` plus ``OFD(X ∪ {A}, B)``
    (Section 2.2: ``OD ≡ OC + OFD``).  The class mostly exists so that
    discovery results and the list-based validator have a first-class object
    to report; :meth:`components` exposes the decomposition.
    """

    __slots__ = ("context", "a", "b")

    def __init__(self, context: Iterable[str], a: str, b: str) -> None:
        self.context: FrozenSet[str] = frozenset(context)
        if a == b:
            raise ValueError(f"trivial OD: both sides are {a!r}")
        if a in self.context or b in self.context:
            raise ValueError(
                f"OD sides {a!r}, {b!r} must not appear in the context "
                f"{sorted(self.context)}"
            )
        self.a = a
        self.b = b

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CanonicalOD):
            return NotImplemented
        return (
            self.context == other.context and self.a == other.a and self.b == other.b
        )

    def __hash__(self) -> int:
        return hash((self.context, self.a, self.b))

    def __repr__(self) -> str:
        ctx = ", ".join(sorted(self.context))
        return f"OD({{{ctx}}}: {self.a} -> {self.b})"

    @property
    def level(self) -> int:
        """Lattice level at which this OD is generated (``|X| + 2``)."""
        return len(self.context) + 2

    def attributes(self) -> FrozenSet[str]:
        """All attributes mentioned by the dependency."""
        return self.context | {self.a, self.b}

    def components(self) -> Tuple[CanonicalOC, OFD]:
        """Return the canonical OC and OFD whose conjunction equals this OD."""
        return (
            CanonicalOC(self.context, self.a, self.b),
            OFD(self.context | {self.a}, self.b),
        )

    def to_list_od(self) -> ListOD:
        """Return an equivalent list-based OD ``X'A ↦→ X'B`` (one particular
        permutation of the context is chosen: lexicographic order)."""
        prefix = tuple(sorted(self.context))
        return ListOD(prefix + (self.a,), prefix + (self.b,))
