"""Violation semantics: swaps, splits and direct (brute-force) OD checks.

Definitions 2.5 and 2.6 of the paper:

* a **swap** w.r.t. the OC ``X: A ~ B`` is a pair of tuples ``s, t`` in the
  same equivalence class of ``X`` with ``s ≺_A t`` but ``t ≺_B s``;
* a **split** w.r.t. the FD ``X -> Y`` is a pair with ``s_X = t_X`` but
  ``s_Y ≠ t_Y``.

The functions here enumerate violations by brute force (quadratic in the
class size).  They are *not* used by the discovery framework — that is what
the validators in :mod:`repro.validation` are for — but they provide the
ground truth the tests and the removal-set experiments (Exp-4) compare
against, and they power the violation reports of
:mod:`repro.applications.outlier_detection`.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, List, Sequence, Tuple

from repro.dataset.partition import Partition
from repro.dataset.relation import Relation
from repro.dependencies.nested_order import nested_compare
from repro.dependencies.oc import CanonicalOC
from repro.dependencies.od import ListOD
from repro.dependencies.ofd import OFD


def _context_classes(relation: Relation, context: Iterable[str]) -> List[List[int]]:
    """Equivalence classes of the context, *including* singletons-free strip.

    Singleton classes can contain no violating pair, so the stripped
    partition is sufficient for violation enumeration.
    """
    context = list(context)
    encoded = relation.encoded()
    if not context:
        return list(Partition.unit(relation.num_rows))
    keys = [tuple(encoded.ranks(a)[row] for a in context)
            for row in range(relation.num_rows)]
    return list(Partition.from_row_keys(keys))


def find_swaps(relation: Relation, oc: CanonicalOC) -> List[Tuple[int, int]]:
    """Enumerate all swap pairs (row indices, ``i < j``) w.r.t. a canonical OC."""
    encoded = relation.encoded()
    a_ranks = encoded.ranks(oc.a)
    b_ranks = encoded.ranks(oc.b)
    swaps: List[Tuple[int, int]] = []
    for class_rows in _context_classes(relation, oc.context):
        for s, t in combinations(class_rows, 2):
            a_cmp = (a_ranks[s] > a_ranks[t]) - (a_ranks[s] < a_ranks[t])
            b_cmp = (b_ranks[s] > b_ranks[t]) - (b_ranks[s] < b_ranks[t])
            if a_cmp * b_cmp == -1:  # strictly opposite orders on A and B
                swaps.append((min(s, t), max(s, t)))
    swaps.sort()
    return swaps


def count_swaps(relation: Relation, oc: CanonicalOC) -> int:
    """Number of swap pairs w.r.t. a canonical OC."""
    return len(find_swaps(relation, oc))


def find_splits(relation: Relation, ofd: OFD) -> List[Tuple[int, int]]:
    """Enumerate all split pairs (row indices, ``i < j``) w.r.t. an OFD.

    A split is a pair of tuples agreeing on the context but disagreeing on
    the OFD's attribute.
    """
    encoded = relation.encoded()
    value_ranks = encoded.ranks(ofd.attribute)
    splits: List[Tuple[int, int]] = []
    for class_rows in _context_classes(relation, ofd.context):
        for s, t in combinations(class_rows, 2):
            if value_ranks[s] != value_ranks[t]:
                splits.append((min(s, t), max(s, t)))
    splits.sort()
    return splits


def count_splits(relation: Relation, ofd: OFD) -> int:
    """Number of split pairs w.r.t. an OFD."""
    return len(find_splits(relation, ofd))


def oc_holds(relation: Relation, oc: CanonicalOC) -> bool:
    """Brute-force check of a canonical OC: no swaps exist."""
    return not find_swaps(relation, oc)


def ofd_holds(relation: Relation, ofd: OFD) -> bool:
    """Brute-force check of an OFD: no splits exist."""
    return not find_splits(relation, ofd)


def od_holds(relation: Relation, od: ListOD) -> bool:
    """Brute-force check of a list-based OD straight from Definition 2.2.

    ``r |= X ↦→ Y`` iff for all tuple pairs ``s, t``: ``s ⪯_X t`` implies
    ``s ⪯_Y t``.  Quadratic in the number of tuples — intended for tests and
    small examples only.
    """
    encoded = relation.encoded()
    lhs = list(od.lhs)
    rhs = list(od.rhs)
    for s in range(relation.num_rows):
        for t in range(relation.num_rows):
            if s == t:
                continue
            if nested_compare(encoded, s, t, lhs) <= 0:
                if nested_compare(encoded, s, t, rhs) > 0:
                    return False
    return True


def order_equivalent(relation: Relation, x: Sequence[str], y: Sequence[str]) -> bool:
    """Brute-force check of order equivalence ``X ↔ Y`` (Definition 2.2)."""
    return od_holds(relation, ListOD(x, y)) and od_holds(relation, ListOD(y, x))


def order_compatible(relation: Relation, x: Sequence[str], y: Sequence[str]) -> bool:
    """Brute-force check of list order compatibility ``X ~ Y``
    (Definition 2.3: ``XY ↔ YX``)."""
    xy = list(x) + [a for a in y if a not in x]
    yx = list(y) + [a for a in x if a not in y]
    return order_equivalent(relation, xy, yx)


def removal_set_is_valid(relation: Relation, oc: CanonicalOC,
                         removal_rows: Iterable[int]) -> bool:
    """Check that dropping ``removal_rows`` makes the OC hold (Definition 2.14).

    Used by tests and Exp-4 to certify removal sets returned by either
    validator.
    """
    remaining = relation.drop_rows(removal_rows)
    return oc_holds(remaining, oc)


def minimal_removal_size_bruteforce(relation: Relation, oc: CanonicalOC) -> int:
    """Exact minimal removal set size by exhaustive search.

    Exponential — only usable on very small relations; serves as the ground
    truth oracle in property-based tests of Theorem 3.3 (minimality of the
    LNDS-based removal set).
    """
    rows = list(range(relation.num_rows))
    if oc_holds(relation, oc):
        return 0
    for size in range(1, relation.num_rows + 1):
        for candidate in combinations(rows, size):
            if removal_set_is_valid(relation, oc, candidate):
                return size
    return relation.num_rows
