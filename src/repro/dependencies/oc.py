"""Canonical order compatibilities ``X: A ~ B`` — Definition 2.10.

A canonical OC states that, within every equivalence class of the context
``X``, the attributes ``A`` and ``B`` are order compatible: there is a total
order of the class's tuples that is sorted by ``A`` and by ``B``
simultaneously.  Order compatibility is symmetric (``A ~ B`` iff ``B ~ A``),
so two OCs with the same context and the same unordered attribute pair are
considered equal.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple


class CanonicalOC:
    """A canonical order compatibility ``X: A ~ B``."""

    __slots__ = ("context", "a", "b")

    def __init__(self, context: Iterable[str], a: str, b: str) -> None:
        self.context: FrozenSet[str] = frozenset(context)
        if a == b:
            raise ValueError(f"trivial OC: both sides are {a!r}")
        if a in self.context or b in self.context:
            raise ValueError(
                f"OC sides {a!r}, {b!r} must not appear in the context "
                f"{sorted(self.context)}"
            )
        self.a = a
        self.b = b

    # -- identity (symmetric in a, b) ------------------------------------------

    def key(self) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        """Hashable identity: context plus the unordered attribute pair."""
        return (self.context, frozenset((self.a, self.b)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CanonicalOC):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        ctx = ", ".join(sorted(self.context))
        return f"OC({{{ctx}}}: {self.a} ~ {self.b})"

    # -- helpers ---------------------------------------------------------------

    @property
    def level(self) -> int:
        """Lattice level at which this OC is generated (``|X| + 2``).

        The discovery framework checks ``X \\ {A, B}: A ~ B`` while
        processing the attribute set ``X``; the OC's context has two fewer
        attributes than its lattice node.
        """
        return len(self.context) + 2

    def attributes(self) -> FrozenSet[str]:
        """All attributes mentioned by the dependency (context plus sides)."""
        return self.context | {self.a, self.b}

    def flipped(self) -> "CanonicalOC":
        """Return the symmetric statement ``X: B ~ A`` (equal to ``self``)."""
        return CanonicalOC(self.context, self.b, self.a)

    def normalized(self) -> "CanonicalOC":
        """Return the OC with sides in lexicographic order (stable display)."""
        if self.a <= self.b:
            return self
        return self.flipped()

    def is_trivial(self) -> bool:
        """Canonical OCs constructed through this class are never trivial."""
        return False
