"""Nested (lexicographic) order over attribute lists — Definition 2.1.

Given two tuples ``s`` and ``t`` and an attribute list ``X``:

* ``s ⪯_[] t`` always holds,
* ``s ⪯_[A|T] t`` iff ``s_A < t_A``, or ``s_A = t_A`` and ``s ⪯_T t``,
* ``s ≺_X t`` iff ``s ⪯_X t`` and not ``t ⪯_X s``.

These operators are defined on the *encoded* relation so that the comparison
respects each attribute's domain order regardless of its raw Python type.
"""

from __future__ import annotations

from typing import Sequence

from repro.dataset.encoding import EncodedRelation


def nested_compare(
    encoded: EncodedRelation, s: int, t: int, attributes: Sequence[str]
) -> int:
    """Three-way lexicographic comparison of rows ``s`` and ``t`` over
    ``attributes``.

    Returns ``-1`` if ``s ≺_X t``, ``0`` if the projections are equal, and
    ``1`` if ``t ≺_X s``.
    """
    for attribute in attributes:
        ranks = encoded.ranks(attribute)
        if ranks[s] < ranks[t]:
            return -1
        if ranks[s] > ranks[t]:
            return 1
    return 0


def nested_leq(
    encoded: EncodedRelation, s: int, t: int, attributes: Sequence[str]
) -> bool:
    """``s ⪯_X t`` — weak nested order (Definition 2.1)."""
    return nested_compare(encoded, s, t, attributes) <= 0


def nested_lt(
    encoded: EncodedRelation, s: int, t: int, attributes: Sequence[str]
) -> bool:
    """``s ≺_X t`` — strict nested order."""
    return nested_compare(encoded, s, t, attributes) < 0


def sort_rows_by(
    encoded: EncodedRelation, rows: Sequence[int], attributes: Sequence[str]
) -> list:
    """Return ``rows`` sorted by the nested order over ``attributes``."""
    rank_columns = [encoded.ranks(a) for a in attributes]
    return sorted(rows, key=lambda row: tuple(col[row] for col in rank_columns))
