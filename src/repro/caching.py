"""Size-bounded LRU mappings for warm-session state.

A long-lived :class:`~repro.discovery.session.Profiler` accumulates two
kinds of warm state that grow with every distinct request: the validation
memo (one small entry per validated candidate) and the partition cache
(O(rows) per visited context).  :class:`BoundedLRU` is the shared eviction
policy behind both ``max_memo_entries`` and ``max_cached_partitions``: a
plain mutable mapping when unbounded, a least-recently-used cache when a
limit is set.  Reads through :meth:`get` / ``[]`` refresh recency; inserts
evict the stalest entries once the limit is exceeded.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class BoundedLRU(OrderedDict):
    """An ``OrderedDict`` with optional LRU eviction.

    ``max_entries=None`` disables eviction entirely (the mapping behaves
    like a dict, with insertion order preserved).  With a limit, every hit
    moves the entry to the most-recent end and every insert evicts from the
    least-recent end until the size bound holds again.

    ``evictions`` counts entries dropped by the bound (not by explicit
    ``del`` / ``pop``), so sessions can report cache pressure.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be at least 1 or None, got {max_entries}"
            )
        super().__init__()
        self.max_entries = max_entries
        self.evictions = 0

    def get(self, key, default=None):
        if key not in self:
            return default
        return self[key]

    def __getitem__(self, key):
        value = super().__getitem__(key)
        if self.max_entries is not None:
            self.move_to_end(key)
        return value

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        if self.max_entries is not None:
            self.move_to_end(key)
            while len(self) > self.max_entries:
                self.popitem(last=False)
                self.evictions += 1

    def touch(self, key) -> None:
        """Refresh ``key``'s recency without reading its value."""
        if self.max_entries is not None and key in self:
            self.move_to_end(key)
