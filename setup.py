"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that editable installs keep working on environments whose setuptools/pip
combination lacks PEP 660 support (e.g. offline machines without the
``wheel`` package): ``python setup.py develop`` or ``pip install -e .``
both resolve through here.
"""

from setuptools import setup

setup()
