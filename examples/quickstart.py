"""Quickstart: validate and discover (approximate) order dependencies.

Runs entirely on the paper's running example (Table 1, employee salaries)
and reproduces its worked examples:

* ``sal ~ taxGrp`` holds exactly,
* ``sal ~ tax`` is broken by data-entry errors but holds approximately with
  factor 4/9 (Example 2.15 / 3.2),
* the greedy iterative validator overestimates that factor (Example 3.1),
* full OD/AOD discovery through one reusable ``Profiler`` session — the
  table is encoded once, partitions are shared, and both runs (exact and
  approximate) reuse the warm state.

Run with::

    python examples/quickstart.py
"""

from repro import (
    CanonicalOC,
    DiscoveryRequest,
    Profiler,
    employee_salary_table,
    validate_aoc_iterative,
    validate_aoc_optimal,
)


def main() -> None:
    table = employee_salary_table()
    print("Table 1 — employee salaries")
    print(table.to_pretty_string())
    print()

    # --- single-candidate validation -----------------------------------------
    exact_oc = CanonicalOC([], "sal", "taxGrp")
    dirty_oc = CanonicalOC([], "sal", "tax")

    print("Validating individual OC candidates with Algorithm 2 (optimal):")
    for oc in (exact_oc, dirty_oc):
        result = validate_aoc_optimal(table, oc)
        print(f"  {oc!r}: removal set size {result.removal_size}, "
              f"approximation factor {result.approximation_factor:.3f}")
    print()

    print("The iterative baseline (Algorithm 1) overestimates sal ~ tax:")
    greedy = validate_aoc_iterative(table, dirty_oc)
    optimal = validate_aoc_optimal(table, dirty_oc)
    print(f"  iterative removes {greedy.removal_size} tuples "
          f"(factor {greedy.approximation_factor:.3f})")
    print(f"  optimal   removes {optimal.removal_size} tuples "
          f"(factor {optimal.approximation_factor:.3f})")
    print()

    # --- discovery through one warm session -----------------------------------
    with Profiler(table) as session:
        print("Exact OD discovery (threshold 0):")
        exact = session.discover(DiscoveryRequest.exact())
        print(exact.summary())
        print()

        print("Approximate OD discovery (threshold 15%), same session:")
        approximate = session.discover(DiscoveryRequest(threshold=0.15))
        print(approximate.summary())
        print()
        print("Most interesting approximate order compatibilities:")
        for found in approximate.ranked_ocs(5):
            print(f"  {found}")
        print()

        cache = session.cache_info()
        print(f"Session reuse: partition cache {cache['hits']} hits / "
              f"{cache['misses']} misses across both runs "
              f"[{cache['backend']} backend]")

    # Results are plain JSON over the service boundary (what `repro serve`
    # returns); one line is enough to persist or ship a run.
    payload = approximate.to_json()
    print(f"Serialised result: {len(payload)} bytes of JSON "
          f"({approximate.num_dependencies} dependencies)")


if __name__ == "__main__":
    main()
