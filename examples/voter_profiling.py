"""Profiling a voter-registration-like table end to end (CSV workflow).

Shows the workflow a downstream user would follow with their own data:

1. write the synthetic ncvoter-like workload out as a CSV file (standing in
   for a real export from https://www.ncsbe.gov),
2. load it back with :func:`repro.dataset.read_csv`,
3. run the one-call profiler (column statistics + AOD discovery + ranking),
4. print the report and the qualitative AOCs the paper highlights
   (``municipalityAbbrv ~ municipalityDesc``, ``streetAddress ~
   mailAddress``).

Run with::

    python examples/voter_profiling.py [num_rows]
"""

import sys
import tempfile
from pathlib import Path

from repro.applications.profiling import profile_relation
from repro.dataset.csv_io import read_csv, write_csv
from repro.dataset.generators import generate_ncvoter_like


def main(num_rows: int = 800) -> None:
    workload = generate_ncvoter_like(num_rows, num_attributes=10,
                                     error_rate=0.08, seed=19)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ncvoter_sample.csv"
        write_csv(workload.relation, path)
        print(f"Wrote {path} ({path.stat().st_size} bytes)")
        relation = read_csv(path)

    report = profile_relation(relation, threshold=0.1, max_level=3)
    print(report.render(top_k=8))
    print()

    discovery = report.discovery
    print("Qualitative AOCs the paper highlights (Exp-4 / Exp-6):")
    for a, b in [("municipalityDesc", "municipalityAbbrv"),
                 ("streetAddress", "mailAddress"),
                 ("countyId", "zipCode")]:
        found = discovery.find_oc(a, b)
        if found is None:
            print(f"  {a} ~ {b}: not valid at the 10% threshold on this sample")
        else:
            print(f"  {a} ~ {b}: approximation factor "
                  f"{found.approximation_factor:.1%}, "
                  f"interestingness {found.interestingness:.3f}")


if __name__ == "__main__":
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    main(rows)
