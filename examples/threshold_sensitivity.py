"""Effect of the approximation threshold on discovery (Exp-3 in miniature).

Sweeps the approximation threshold from 0% to 25% on an ncvoter-like
workload and reports, for the optimal and the iterative validator:

* total discovery runtime,
* share of the runtime spent validating candidates,
* number of discovered OCs/AOCs and their average lattice level.

The expected shape matches Figure 4 of the paper: the optimal validator's
runtime is flat (or slightly decreasing thanks to extra pruning), while the
iterative validator's runtime grows roughly linearly with the threshold.

Run with::

    python examples/threshold_sensitivity.py [num_rows]
"""

import sys

from repro.benchlib.harness import measure_discovery
from repro.benchlib.reporting import format_series_table
from repro.dataset.generators import generate_ncvoter_like


def main(num_rows: int = 800) -> None:
    workload = generate_ncvoter_like(num_rows, num_attributes=8,
                                     error_rate=0.1, seed=7)
    relation = workload.relation
    print(workload.description)
    print()

    thresholds = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25]
    optimal_seconds, iterative_seconds = [], []
    optimal_counts, levels = [], []
    for threshold in thresholds:
        optimal = measure_discovery(relation, "aod-optimal", threshold=threshold,
                                    max_level=4)
        iterative = measure_discovery(relation, "aod-iterative", threshold=threshold,
                                      max_level=4)
        optimal_seconds.append(optimal.seconds)
        iterative_seconds.append(iterative.seconds)
        optimal_counts.append(optimal.num_ocs)
        average = optimal.result.average_oc_level()
        levels.append(round(average, 2) if average else "-")

    print(format_series_table(
        "threshold",
        [f"{t:.0%}" for t in thresholds],
        {
            "AOD (optimal) s": optimal_seconds,
            "AOD (iterative) s": iterative_seconds,
        },
        annotations={"#AOCs": optimal_counts, "avg level": levels},
    ))
    print()
    print("Expected shape (paper, Figure 4): the optimal series stays flat as")
    print("the threshold grows; the iterative series increases roughly linearly.")


if __name__ == "__main__":
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    main(rows)
