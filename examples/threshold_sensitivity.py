"""Threshold sensitivity through a warm ``Profiler`` session (Exp-3's loop).

Sweeps the approximation threshold from 0% to 25% on an ncvoter-like
workload with **one warm `Profiler` session per validator** — the session
encodes the relation once, shares the partition cache across all ε values
and memoises validation outcomes, so later thresholds revalidate only what
a new removal budget actually changes.  Reported per validator:

* per-threshold runtime *inside the warm session* (the sweep executes
  largest-ε first, so almost all cost lands on the first run and the
  rest is served from the memo — the timing column demonstrates
  warm-cache reuse, **not** per-threshold validator cost),
* number of discovered OCs/AOCs and their average lattice level.

The discovered-dependency series matches the paper: more (and more
general, lower-level) AOCs as the threshold grows.  For the *cold*
per-threshold runtime shape of Figure 4 — optimal flat, iterative roughly
linear in ε — run ``benchmarks/bench_exp3_threshold.py``, which times
every threshold from scratch.

Run with::

    python examples/threshold_sensitivity.py [num_rows]
"""

import sys

from repro import Profiler
from repro.benchlib.reporting import format_series_table
from repro.dataset.generators import generate_ncvoter_like


def main(num_rows: int = 800) -> None:
    workload = generate_ncvoter_like(num_rows, num_attributes=8,
                                     error_rate=0.1, seed=7)
    relation = workload.relation
    print(workload.description)
    print()

    thresholds = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25]
    series = {}
    caches = {}
    for validator in ("optimal", "iterative"):
        with Profiler(relation) as session:
            series[validator] = session.sweep(
                thresholds, validator=validator, max_level=4
            )
            caches[validator] = session.cache_info()

    optimal = series["optimal"]
    levels = []
    for result in optimal:
        average = result.average_oc_level()
        levels.append(round(average, 2) if average else "-")

    print(format_series_table(
        "threshold",
        [f"{t:.0%}" for t in thresholds],
        {
            "optimal (warm) s": [r.stats.total_seconds for r in optimal],
            "iterative (warm) s": [
                r.stats.total_seconds for r in series["iterative"]
            ],
        },
        annotations={
            "#AOCs": [r.num_ocs for r in optimal],
            "avg level": levels,
            "memo hits": [r.stats.validation_memo_hits for r in optimal],
        },
    ))
    print()
    for validator, cache in caches.items():
        print(f"warm session ({validator}): partition cache {cache['hits']} hits"
              f" / {cache['misses']} misses, "
              f"{cache['validation_memo_entries']} memoised validations "
              f"[{cache['backend']} backend]")
    print()
    print("Each validator ran inside ONE Profiler session: the relation was")
    print("encoded once and partitions/validation outcomes were reused across")
    print("all thresholds.  Sweeps execute largest-ε first so removal counts")
    print("transfer to every smaller budget — that is why the timing columns")
    print("concentrate on the largest threshold and the memo serves the rest.")
    print()
    print("The dependency series matches the paper: more (and lower-level)")
    print("AOCs as ε grows.  For Figure 4's COLD per-threshold runtime shape")
    print("(optimal flat, iterative ~linear), run")
    print("benchmarks/bench_exp3_threshold.py.")


if __name__ == "__main__":
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    main(rows)
