"""Data-cleaning scenario on a flight-records-like dataset.

The paper's Exp-4/Exp-6 use the ``flight`` dataset to show how discovered
AOCs expose data-quality problems — e.g. ``arrivalDelay ~
lateAircraftDelay`` holds with a 9.5% approximation factor, flagging flights
whose delay had other causes, and ``originAirport ~ IATACode`` flags
mis-mapped airport codes.  This example regenerates that workflow on the
synthetic flight-like workload:

1. generate a dirty dataset with planted errors,
2. discover approximate order dependencies,
3. rank them by interestingness,
4. use the removal sets to flag suspicious tuples (outlier detection),
5. apply a removal repair and verify the dependencies now hold exactly.

Run with::

    python examples/data_cleaning_flight.py [num_rows]
"""

import sys

from repro.applications.error_repair import propose_repairs
from repro.applications.outlier_detection import detect_outliers
from repro.dataset.generators import generate_flight_like
from repro.dependencies.violations import oc_holds
from repro.discovery.api import discover_aods


def main(num_rows: int = 1000) -> None:
    workload = generate_flight_like(num_rows, num_attributes=10,
                                    error_rate=0.06, seed=42)
    relation = workload.relation
    print(workload.description)
    print(f"Planted dirty dependencies: "
          f"{[(p.a, p.b) for p in workload.planted_ocs]}")
    print()

    print("Discovering approximate ODs (threshold 10%)...")
    result = discover_aods(relation, threshold=0.10, max_level=3)
    print(result.summary())
    print()

    print("Top-ranked approximate order compatibilities:")
    for found in result.ranked_ocs(8):
        print(f"  {found}  (interestingness {found.interestingness:.3f})")
    print()

    print("Flagging suspicious tuples from the removal sets...")
    report = detect_outliers(relation, result)
    planted_rows = set()
    for planted in workload.planted_ocs:
        planted_rows |= set(planted.approx_rows)
    top = report.top(20)
    hits = sum(1 for row, _ in top if row in planted_rows)
    print(f"  {len(report.scores)} tuples flagged; "
          f"{hits}/{len(top)} of the top 20 are genuinely dirty")
    print()

    print("Applying a removal repair for the planted dependencies...")
    ocs = [result.find_oc(p.a, p.b).oc
           for p in workload.planted_ocs
           if result.find_oc(p.a, p.b) is not None]
    plan = propose_repairs(relation, ocs=ocs)
    repaired = plan.apply_removals(relation)
    print(f"  removed {plan.num_removals} of {relation.num_rows} tuples")
    for oc in ocs:
        print(f"  {oc!r} holds exactly after repair: {oc_holds(repaired, oc)}")


if __name__ == "__main__":
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    main(rows)
