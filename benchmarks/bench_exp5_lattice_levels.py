"""Exp-5 / Figure 5 — lattice level of discovered OCs vs AOCs and the
runtime effect of earlier pruning.

The paper shows (ncvoter, 5M tuples, 10 attributes) that approximate OCs
concentrate at lower lattice levels than exact OCs — the average level drops
from 5.6 to 4.3 — and that, because dependencies found earlier prune more of
the lattice, AOD discovery can be up to 34% (tuples experiment) / 76%
(attributes experiment) *faster* than exact OD discovery despite the more
expensive per-candidate validation.

Scaled-down reproduction: ncvoter-like and flight-like tables, histogram of
discovered OCs/AOCs per level plus the OD-vs-AOD runtime ratio.
"""

import pytest

from repro.benchlib.harness import measure_discovery
from repro.benchlib.workloads import WorkloadSpec, make_workload

NUM_ROWS = 1_500
NUM_ATTRIBUTES = 10
THRESHOLD = 0.10

MEASUREMENTS = {}


@pytest.mark.parametrize("dataset", ["flight", "ncvoter"])
@pytest.mark.parametrize("mode", ["od", "aod-optimal"])
def test_discovery_for_level_histogram(benchmark, dataset, mode):
    workload = make_workload(
        WorkloadSpec(dataset, NUM_ROWS, NUM_ATTRIBUTES, error_rate=0.08)
    )
    measurement = benchmark.pedantic(
        lambda: measure_discovery(workload.relation, mode, threshold=THRESHOLD),
        rounds=1,
        iterations=1,
    )
    MEASUREMENTS[(dataset, mode)] = measurement
    assert measurement.num_ocs > 0


@pytest.fixture(scope="module", autouse=True)
def _render(figure_report):
    yield
    for dataset in ("flight", "ncvoter"):
        exact = MEASUREMENTS.get((dataset, "od"))
        approx = MEASUREMENTS.get((dataset, "aod-optimal"))
        if exact is None or approx is None:
            continue
        exact_levels = exact.result.ocs_per_level()
        approx_levels = approx.result.ocs_per_level()
        levels = sorted(set(exact_levels) | set(approx_levels))
        exact_avg = exact.result.average_oc_level()
        approx_avg = approx.result.average_oc_level()
        speedup = exact.seconds / approx.seconds if approx.seconds else float("inf")
        figure_report(
            f"Exp-5 / Figure 5 — discovered OCs/AOCs per lattice level "
            f"({dataset}-like, {NUM_ROWS} tuples, {NUM_ATTRIBUTES} attributes)",
            "lattice level",
            levels,
            {
                "#OCs (exact)": [float(exact_levels.get(l, 0)) for l in levels],
                "#AOCs (eps=10%)": [float(approx_levels.get(l, 0)) for l in levels],
            },
            notes=[
                f"average lattice level: exact {exact_avg:.2f} vs approximate "
                f"{approx_avg:.2f} (paper: 5.6 -> 4.3 on ncvoter-5M)",
                f"OD runtime / AOD runtime = {speedup:.2f} "
                "(paper: AOD up to 34%/76% faster thanks to earlier pruning; "
                "on small scaled-down inputs the per-candidate overhead of the "
                "approximate validator can still dominate)",
            ],
        )
        # The headline claim of Exp-5: approximate OCs live at lower levels.
        if exact_avg and approx_avg:
            assert approx_avg <= exact_avg + 0.5
