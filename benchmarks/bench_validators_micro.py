"""Micro-benchmarks of the three AOC validators on a single candidate.

Reproduces the complexity claims of Sections 3.2 and 3.3: validating one
AOC candidate is

* ``O(n)`` for the exact check,
* ``O(n log n)`` for the optimal LNDS-based validator (Algorithm 2), and
* ``O(n log n + ε·n²)`` for the iterative validator (Algorithm 1),

so the iterative validator's per-candidate cost explodes with the input
size while the optimal validator stays within a small factor of the exact
check.  The workload is a planted-AOC table whose approximation factor is
exactly the 10% default threshold, i.e. the regime where the iterative
validator does maximal work.
"""

import pytest

from repro.backend import available_backends
from repro.dataset.generators import generate_planted_oc_table
from repro.dependencies.oc import CanonicalOC
from repro.validation.approx_oc_iterative import validate_aoc_iterative
from repro.validation.approx_oc_optimal import validate_aoc_optimal
from repro.validation.exact_oc import validate_exact_oc

SIZES = [1_000, 4_000, 16_000]
ITERATIVE_SIZES = [1_000, 4_000]  # quadratic: keep the largest size out
BACKENDS = available_backends()

RESULTS = {"exact": {}, "optimal": {}, "iterative": {}}
# backend -> {num_rows: seconds}; "cold" includes encoding + partitioning,
# which is where the columnar backend's vectorisation pays off the most.
BACKEND_COLD = {name: {} for name in BACKENDS}
BACKEND_EXACT = {name: {} for name in BACKENDS}


def _workload(num_rows):
    workload = generate_planted_oc_table(num_rows, approximation_factor=0.1, seed=13)
    (planted,) = workload.planted_ocs
    return workload.relation, CanonicalOC(planted.context, planted.a, planted.b)


@pytest.mark.parametrize("num_rows", SIZES)
def test_exact_validator(benchmark, num_rows):
    relation, oc = _workload(num_rows)
    relation.encoded()  # encoding cost is shared by all validators; exclude it
    result = benchmark(lambda: validate_exact_oc(relation, oc))
    RESULTS["exact"][num_rows] = benchmark.stats.stats.mean
    assert not result.is_valid  # the planted table has violations


@pytest.mark.parametrize("num_rows", SIZES)
def test_optimal_validator(benchmark, num_rows):
    relation, oc = _workload(num_rows)
    relation.encoded()
    result = benchmark(lambda: validate_aoc_optimal(relation, oc, threshold=0.1))
    RESULTS["optimal"][num_rows] = benchmark.stats.stats.mean
    assert result.is_valid
    assert result.removal_size == round(0.1 * num_rows)


@pytest.mark.parametrize("num_rows", ITERATIVE_SIZES)
def test_iterative_validator(benchmark, num_rows):
    relation, oc = _workload(num_rows)
    relation.encoded()
    result = benchmark.pedantic(
        lambda: validate_aoc_iterative(relation, oc, threshold=0.1),
        rounds=1,
        iterations=1,
    )
    RESULTS["iterative"][num_rows] = benchmark.stats.stats.mean
    # The greedy removal set is at least as large as the minimal one; at this
    # threshold it may or may not stay within budget — record either way.
    assert result.removal_size >= round(0.1 * num_rows) or result.exceeded_threshold


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("num_rows", SIZES)
def test_optimal_validator_backends_cold(benchmark, backend, num_rows):
    """End-to-end single-candidate validation: encoding + partitions + LNDS.

    This is what one `repro-discover` CLI invocation pays per candidate on a
    cold relation, and the regime where the columnar backend's vectorised
    encoding and partition construction dominate.
    """
    source, oc = _workload(num_rows)

    def cold_validate():
        # A fresh Relation over the same columns: drops the per-backend
        # encoding cache so the run pays encode + partition + validate, but
        # excludes the synthetic data generation itself.
        relation = source.project(source.attribute_names)
        return validate_aoc_optimal(relation, oc, threshold=0.1, backend=backend)

    result = benchmark.pedantic(cold_validate, rounds=5, iterations=1)
    BACKEND_COLD[backend][num_rows] = benchmark.stats.stats.mean
    assert result.is_valid
    assert result.removal_size == round(0.1 * num_rows)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("num_rows", SIZES)
def test_exact_validator_backends_warm(benchmark, backend, num_rows):
    """Exact OC check per backend with the encoding pre-built (kernel only)."""
    relation, oc = _workload(num_rows)
    relation.encoded(backend)
    result = benchmark(lambda: validate_exact_oc(relation, oc, backend=backend))
    BACKEND_EXACT[backend][num_rows] = benchmark.stats.stats.mean
    assert not result.is_valid


@pytest.fixture(scope="module", autouse=True)
def _render(figure_report):
    yield
    _render_backend_comparison(figure_report)
    sizes = [s for s in SIZES if s in RESULTS["optimal"]]
    if not sizes:
        return
    figure_report(
        "Single-candidate AOC validation cost (Sections 3.2 / 3.3)",
        "tuples",
        sizes,
        {
            "exact check (s)": [RESULTS["exact"].get(s, float("nan")) for s in sizes],
            "Algorithm 2 optimal (s)": [
                RESULTS["optimal"].get(s, float("nan")) for s in sizes
            ],
            "Algorithm 1 iterative (s)": [
                RESULTS["iterative"].get(s, float("nan")) for s in sizes
            ],
        },
        notes=[
            "iterative is omitted at the largest size (quadratic cost)",
            "paper claim: optimal stays near the exact check; iterative grows "
            "quadratically once removals start",
        ],
    )


def _render_backend_comparison(figure_report):
    """Side-by-side backend figure with explicit speedup ratios."""
    from repro.benchlib.reporting import speedup_series

    if "numpy" not in BACKENDS:
        return
    for title, results in (
        ("cold end-to-end AOC validation (encode + partition + LNDS)",
         BACKEND_COLD),
        ("warm exact OC check (kernel only)", BACKEND_EXACT),
    ):
        sizes = [s for s in SIZES
                 if s in results["python"] and s in results["numpy"]]
        if not sizes:
            continue
        python_series = [results["python"][s] for s in sizes]
        numpy_series = [results["numpy"][s] for s in sizes]
        ratios = speedup_series(python_series, numpy_series)
        figure_report(
            f"Compute backends — {title}",
            "tuples",
            sizes,
            {
                "python backend (s)": python_series,
                "numpy backend (s)": numpy_series,
                "speedup (python/numpy)": ratios,
            },
            notes=[
                "both backends produce byte-identical ValidationResults "
                "(enforced by tests/backend/test_differential.py)",
                "the numpy backend should win at >=10k tuples; the ratio "
                "column is the claimed speedup",
            ],
        )
