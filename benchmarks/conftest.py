"""Shared infrastructure for the benchmark suites.

Every ``bench_exp*.py`` module reproduces one experiment (table or figure)
of the paper's evaluation section.  Benchmarks accumulate their measurements
in module-level dictionaries and, when the module finishes, render the same
series the paper plots via the ``figure_report`` fixture (printed to
stdout).  The persistent artifact is ``results/BENCH_discovery.json``;
``results/summary.txt`` is *regenerated wholesale* from that JSON
(:func:`repro.benchlib.reporting.write_bench_summary`, invoked by the e2e
suite) — it is never appended to, so repeated runs cannot accumulate
duplicate blocks the way the old append-on-report flow did.

The workloads are synthetic, scaled-down stand-ins for the paper's
``flight`` and ``ncvoter`` datasets (see DESIGN.md); the absolute numbers
differ from the paper's Java/Xeon setup, but the *shape* of every series —
who wins, by roughly what factor, where the curves cross — is what the
suite regenerates and what EXPERIMENTS.md records.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

# ``conftest.py`` at the repository root already puts ``src`` on sys.path;
# repeat it here so the benchmarks also run when invoked from this directory.
SRC = Path(__file__).parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


@pytest.fixture(scope="session")
def figure_report():
    """Return a callable that renders one figure's data to stdout.

    Persistence happens through ``BENCH_discovery.json`` (and the
    summary regenerated from it), not here: appending the rendered text
    to ``summary.txt`` per call made the file drift — every run grew a
    fresh copy of every figure."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(title, x_label, x_values, series, annotations=None, notes=None):
        from repro.benchlib.reporting import render_figure

        text = render_figure(title, x_label, x_values, series, annotations, notes)
        print()
        print(text)
        return text

    return _report


@pytest.fixture(scope="session")
def small_scale():
    """Global scale factor for the benchmark workloads.

    The paper runs on millions of tuples on a Xeon with a Java
    implementation; this pure-Python reproduction uses thousands.  The
    factor is centralised here so a user with more patience can raise it
    (e.g. ``REPRO_BENCH_SCALE=10 pytest benchmarks/ --benchmark-only``).
    """
    import os

    return int(os.environ.get("REPRO_BENCH_SCALE", "1"))
