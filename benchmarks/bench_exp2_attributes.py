"""Exp-2 / Figure 3 — discovery scalability in the number of attributes.

The paper fixes 1K tuples and grows the schema in steps of five attributes
(up to 35 for flight, 30 for ncvoter); runtime grows exponentially because
the number of candidate ODs does (the Y-axis of Figure 3 is logarithmic).
The AOD(optimal) and OD series stay close — with the approximate runs
sometimes *faster* thanks to earlier pruning — while AOD(iterative) is about
an order of magnitude slower.

Scaled-down reproduction: 300 tuples, 4-12 attributes (the exponential
growth is already unmistakable there), same three series.
"""

import pytest

from repro.benchlib.harness import measure_discovery
from repro.benchlib.workloads import WorkloadSpec, make_workload

NUM_ROWS = 300
THRESHOLD = 0.10
ATTRIBUTE_COUNTS = [4, 6, 8, 10, 12]
ITERATIVE_ATTRIBUTE_COUNTS = [4, 6, 8]
TIME_BUDGET_SECONDS = 60.0

RESULTS = {}
COUNTS = {}


def _relation(dataset, num_attributes):
    spec = WorkloadSpec(dataset, NUM_ROWS, num_attributes, error_rate=0.08)
    return make_workload(spec).relation


def _record(dataset, mode, num_attributes, measurement):
    RESULTS.setdefault((dataset, mode), {})[num_attributes] = measurement.seconds
    COUNTS.setdefault((dataset, mode), {})[num_attributes] = measurement.num_ocs


@pytest.mark.parametrize("dataset", ["flight", "ncvoter"])
@pytest.mark.parametrize("num_attributes", ATTRIBUTE_COUNTS)
def test_exact_od_discovery(benchmark, dataset, num_attributes):
    relation = _relation(dataset, num_attributes)
    measurement = benchmark.pedantic(
        lambda: measure_discovery(
            relation, "od", time_limit_seconds=TIME_BUDGET_SECONDS
        ),
        rounds=1,
        iterations=1,
    )
    _record(dataset, "od", num_attributes, measurement)


@pytest.mark.parametrize("dataset", ["flight", "ncvoter"])
@pytest.mark.parametrize("num_attributes", ATTRIBUTE_COUNTS)
def test_aod_optimal_discovery(benchmark, dataset, num_attributes):
    relation = _relation(dataset, num_attributes)
    measurement = benchmark.pedantic(
        lambda: measure_discovery(
            relation,
            "aod-optimal",
            threshold=THRESHOLD,
            time_limit_seconds=TIME_BUDGET_SECONDS,
        ),
        rounds=1,
        iterations=1,
    )
    _record(dataset, "aod-optimal", num_attributes, measurement)


@pytest.mark.parametrize("dataset", ["flight", "ncvoter"])
@pytest.mark.parametrize("num_attributes", ITERATIVE_ATTRIBUTE_COUNTS)
def test_aod_iterative_discovery(benchmark, dataset, num_attributes):
    relation = _relation(dataset, num_attributes)
    measurement = benchmark.pedantic(
        lambda: measure_discovery(
            relation,
            "aod-iterative",
            threshold=THRESHOLD,
            time_limit_seconds=TIME_BUDGET_SECONDS,
        ),
        rounds=1,
        iterations=1,
    )
    _record(dataset, "aod-iterative", num_attributes, measurement)


@pytest.fixture(scope="module", autouse=True)
def _render(figure_report):
    yield
    for dataset in ("flight", "ncvoter"):
        od = RESULTS.get((dataset, "od"), {})
        optimal = RESULTS.get((dataset, "aod-optimal"), {})
        iterative = RESULTS.get((dataset, "aod-iterative"), {})
        if not od:
            continue
        figure_report(
            f"Exp-2 / Figure 3 — scalability in |R| ({dataset}-like, "
            f"{NUM_ROWS} tuples, eps={THRESHOLD:.0%})",
            "attributes",
            ATTRIBUTE_COUNTS,
            {
                "OD (s)": [od.get(a, float("nan")) for a in ATTRIBUTE_COUNTS],
                "AOD optimal (s)": [
                    optimal.get(a, float("nan")) for a in ATTRIBUTE_COUNTS
                ],
                "AOD iterative (s)": [
                    iterative.get(a, float("nan")) for a in ATTRIBUTE_COUNTS
                ],
            },
            annotations={
                "#OCs (OD)": [
                    COUNTS.get((dataset, "od"), {}).get(a, "-")
                    for a in ATTRIBUTE_COUNTS
                ],
                "#AOCs (optimal)": [
                    COUNTS.get((dataset, "aod-optimal"), {}).get(a, "-")
                    for a in ATTRIBUTE_COUNTS
                ],
            },
            notes=[
                "runtime grows exponentially with the schema width "
                "(log-scale Y axis in the paper's Figure 3)",
                "paper shape: OD and AOD(optimal) close, AOD(iterative) about "
                "an order of magnitude slower at equal width",
            ],
        )
