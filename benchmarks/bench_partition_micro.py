"""Partition micro-benchmarks: build / product / apply_delta on the CSR layout.

The CSR refactor's acceptance bar is measured here: single-column partition
construction, partition products and ``PartitionCache.apply_delta`` are
timed per backend, and the NumPy product is additionally raced against the
*seed* list-of-lists path (lexsort followed by per-class ``tolist()``
materialisation plus the normalising list constructor — exactly what
``_split_segments`` used to do).  The ``partition`` record merged into
``benchmarks/results/BENCH_discovery.json`` carries the timings and the
``product_speedup_vs_list`` ratio the CI smoke job checks.
"""

import json
import os
from itertools import combinations
from pathlib import Path

import pytest

from repro.backend import available_backends, get_backend
from repro.benchlib.harness import time_best_of
from repro.dataset.generators import generate_flight_like
from repro.dataset.partition import Partition, PartitionCache

QUICK = os.environ.get("REPRO_BENCH_QUICK", "").strip() not in ("", "0")
NUM_ROWS = int(
    os.environ.get("REPRO_BENCH_PARTITION_ROWS", "2000" if QUICK else "16000")
)
NUM_ATTRIBUTES = 6
REPEATS = 3 if QUICK else 5
DELTA_ROWS = max(4, NUM_ROWS // 100)
BACKENDS = available_backends()

#: backend -> {"build_s": ..., "product_s": ..., "apply_delta_s": ...}
RESULTS = {}
BASELINE = {}


@pytest.fixture(scope="module")
def workload():
    base = generate_flight_like(
        NUM_ROWS, num_attributes=NUM_ATTRIBUTES, error_rate=0.08, seed=7
    ).relation
    donor = generate_flight_like(
        NUM_ROWS + DELTA_ROWS, num_attributes=NUM_ATTRIBUTES,
        error_rate=0.08, seed=13,
    ).relation
    delta = {
        name: donor.take(range(NUM_ROWS, NUM_ROWS + DELTA_ROWS)).column(name)
        for name in base.attribute_names
    }
    return base, delta


def _legacy_product(left: Partition, right: Partition) -> Partition:
    """The seed NumPy product: lexsort, then per-class Python lists.

    Byte-identical results to ``partition_product``; the difference under
    measurement is purely the representation — per-class ``tolist()``
    materialisation plus the normalising list-of-lists constructor versus
    the flat CSR gather.
    """
    import numpy as np

    backend = get_backend("numpy")
    class_of = np.full(left.num_rows, -1, dtype=np.int64)
    right_rows, right_ids, _ = backend._columnar_classes(right)
    class_of[right_rows] = right_ids
    rows, class_ids, _ = backend._columnar_classes(left)
    other = class_of[rows]
    grouped = other >= 0
    rows, class_ids, other = rows[grouped], class_ids[grouped], other[grouped]
    if rows.size == 0:
        return Partition([], left.num_rows)
    order = np.lexsort((other, class_ids))
    sorted_rows = rows[order]
    keys = (class_ids[order], other[order])
    change = np.zeros(sorted_rows.size - 1, dtype=bool)
    for key in keys:
        change |= np.diff(key) != 0
    boundaries = np.concatenate(
        ([0], np.nonzero(change)[0] + 1, [sorted_rows.size])
    )
    classes = []
    for i in range(boundaries.size - 1):
        start, end = int(boundaries[i]), int(boundaries[i + 1])
        if end - start >= 2:
            classes.append(sorted_rows[start:end].tolist())
    return Partition(classes, left.num_rows)


def _singles(backend, encoded):
    return [
        backend.partition_single(
            encoded.native_ranks_by_index(index), encoded.num_rows
        )
        for index in range(NUM_ATTRIBUTES)
    ]


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_partition_build(workload, backend_name):
    base, _ = workload
    backend = get_backend(backend_name)
    encoded = base.encoded(backend)
    encoded.native_ranks_by_index(0)  # exclude lazy column conversion

    seconds = time_best_of(lambda: _singles(backend, encoded), REPEATS)
    RESULTS.setdefault(backend_name, {})["build_s"] = round(seconds, 5)
    assert all(p.num_classes > 0 for p in _singles(backend, encoded))


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_partition_product(workload, backend_name):
    base, _ = workload
    backend = get_backend(backend_name)
    encoded = base.encoded(backend)
    singles = _singles(backend, encoded)
    pairs = list(combinations(range(NUM_ATTRIBUTES), 2))

    def products():
        return [
            backend.partition_product(singles[a], singles[b])
            for a, b in pairs
        ]

    seconds = time_best_of(products, REPEATS)
    RESULTS.setdefault(backend_name, {})["product_s"] = round(seconds, 5)

    if backend_name == "numpy":
        def legacy_products():
            return [
                _legacy_product(singles[a], singles[b]) for a, b in pairs
            ]

        legacy_seconds = time_best_of(legacy_products, REPEATS)
        BASELINE["numpy_product_list_baseline_s"] = round(legacy_seconds, 5)
        BASELINE["product_speedup_vs_list"] = round(
            legacy_seconds / seconds, 2
        ) if seconds > 0 else None
        # Parity first, speed second: the baseline must agree exactly.
        for a, b in pairs[:3]:
            assert _legacy_product(singles[a], singles[b]) == \
                backend.partition_product(singles[a], singles[b])


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_partition_apply_delta(workload, backend_name):
    base, delta = workload
    backend = get_backend(backend_name)
    keys = [frozenset()]
    for size in (1, 2):
        keys.extend(frozenset(c)
                    for c in combinations(range(NUM_ATTRIBUTES), size))

    # apply_delta consumes the cache, so each repeat patches a fresh one;
    # cache construction happens outside the timed region.
    def fresh_cache():
        encoded = base.encoded(backend)
        cache = PartitionCache(encoded, backend=backend)
        for key in keys:
            cache.get(key)
        extended, _ = encoded.extend(delta)
        return cache, extended

    prepared = [fresh_cache() for _ in range(REPEATS)]
    timings = []
    import time

    for cache, extended in prepared:
        start = time.perf_counter()
        patches = cache.apply_delta(extended, NUM_ROWS)
        timings.append(time.perf_counter() - start)
        assert not patches.dropped
    RESULTS.setdefault(backend_name, {})["apply_delta_s"] = round(
        min(timings), 5
    )


@pytest.fixture(scope="module", autouse=True)
def _report(figure_report):
    yield
    if not RESULTS:
        return
    record = {
        "rows": NUM_ROWS,
        "attributes": NUM_ATTRIBUTES,
        "quick_mode": QUICK,
        "delta_rows": DELTA_ROWS,
        "backends": RESULTS,
    }
    record.update(BASELINE)

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    path = results_dir / "BENCH_discovery.json"
    payload = {}
    if path.exists():
        payload = json.loads(path.read_text(encoding="utf-8"))
    payload["partition"] = record
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    metrics = ["build_s", "product_s", "apply_delta_s"]
    figure_report(
        "Partition micro-benchmarks (CSR layout)",
        "operation",
        metrics,
        {
            f"{backend} (s)": [RESULTS[backend].get(m) for m in metrics]
            for backend in RESULTS
        },
        notes=[
            f"workload: flight-like, {NUM_ROWS} rows, "
            f"{NUM_ATTRIBUTES} attributes; delta of {DELTA_ROWS} rows",
            f"numpy product vs seed list-of-lists baseline: "
            f"{BASELINE.get('product_speedup_vs_list')}x "
            f"(baseline {BASELINE.get('numpy_product_list_baseline_s')}s)",
        ],
    )
