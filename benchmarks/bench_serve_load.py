"""Serve-layer load benchmark: latency and rejection rate under concurrency.

Drives a real ``repro.serve`` HTTP server with a fixed number of
concurrent clients issuing ``POST /discover`` requests against one warm
dataset, using the stdlib :class:`repro.client.ServeClient` *without*
retries (a rejection is a data point here, not a transient to paper
over).  The ``serve`` record merged into
``benchmarks/results/BENCH_discovery.json`` carries request counts,
p50/p95 end-to-end latency for accepted requests, and the rejection rate
— the numbers the CI smoke job asserts on to catch an admission-control
or queueing regression.
"""

import json
import os
import statistics
import threading
import time
from pathlib import Path

import pytest

from repro.backend import available_backends
from repro.client import ServeClient, ServeHTTPError
from repro.dataset.generators import generate_random_table
from repro.serve import ProfilerService, make_server

QUICK = os.environ.get("REPRO_BENCH_QUICK", "").strip() not in ("", "0")
NUM_ROWS = int(
    os.environ.get("REPRO_BENCH_SERVE_ROWS", "400" if QUICK else "1200")
)
NUM_ATTRIBUTES = 6
#: Concurrent clients and requests per client (fixed load shape).
CONCURRENCY = 8
REQUESTS_PER_CLIENT = 4 if QUICK else 8
#: Distinct thresholds cycled per request so the result cache does not
#: absorb the whole load (cache hits are measured, but not exclusively).
THRESHOLDS = (0.05, 0.1, 0.15, 0.2)
QUEUE_DEPTH = 4
MAX_INFLIGHT = 16

BACKENDS = available_backends()

#: backend -> latency/rejection record (merged under the "serve" key).
RESULTS = {}


def _run_load(backend_name):
    relation = generate_random_table(
        NUM_ROWS, NUM_ATTRIBUTES, cardinality=8, seed=3
    )
    service = ProfilerService(
        backend=backend_name,
        queue_depth=QUEUE_DEPTH,
        max_inflight=MAX_INFLIGHT,
    )
    service.add_dataset("bench", relation)
    server = make_server(service, host="127.0.0.1", port=0)
    url = f"http://127.0.0.1:{server.server_address[1]}"
    accept_thread = threading.Thread(target=server.serve_forever, daemon=True)
    accept_thread.start()

    latencies = []
    rejected = {"count": 0}
    errors = []
    lock = threading.Lock()
    barrier = threading.Barrier(CONCURRENCY)

    def client_loop(client_index):
        client = ServeClient(url, timeout=120, max_retries=0)
        barrier.wait(timeout=30)
        for request_index in range(REQUESTS_PER_CLIENT):
            threshold = THRESHOLDS[
                (client_index + request_index) % len(THRESHOLDS)
            ]
            started = time.perf_counter()
            try:
                client.discover("bench", {"threshold": threshold})
            except ServeHTTPError as error:
                if error.status in (429, 503):
                    with lock:
                        rejected["count"] += 1
                    continue
                with lock:
                    errors.append(error)
                continue
            except Exception as error:  # noqa: BLE001 - recorded, asserted
                with lock:
                    errors.append(error)
                continue
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)

    threads = [
        threading.Thread(target=client_loop, args=(index,), daemon=True)
        for index in range(CONCURRENCY)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    wall_seconds = time.perf_counter() - wall_start

    snapshot = service.admission.snapshot()
    server.shutdown()
    server.server_close()
    service.close()
    accept_thread.join(timeout=10)

    assert not errors, errors
    total = CONCURRENCY * REQUESTS_PER_CLIENT
    assert len(latencies) + rejected["count"] == total
    assert latencies, "every request was rejected; load shape is broken"
    latencies.sort()
    return {
        "requests": total,
        "accepted": len(latencies),
        "rejected": rejected["count"],
        "rejection_rate": round(rejected["count"] / total, 4),
        "p50_latency_ms": round(
            statistics.median(latencies) * 1000, 2
        ),
        "p95_latency_ms": round(
            latencies[max(0, int(len(latencies) * 0.95) - 1)] * 1000, 2
        ),
        "wall_seconds": round(wall_seconds, 3),
        "admitted": snapshot["admitted"],
        "rejected_queue_full": snapshot["rejected_queue_full"],
        "rejected_saturated": snapshot["rejected_saturated"],
    }


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_serve_load(backend_name):
    record = _run_load(backend_name)
    RESULTS[backend_name] = record
    # The load is shaped to overflow a depth-4 queue at 8-way concurrency
    # at least occasionally; a zero rejection count with these settings
    # would mean admission control silently stopped applying.  Latency
    # sanity: accepted requests finished, p95 bounded by the wall clock.
    assert record["p50_latency_ms"] > 0
    assert record["p95_latency_ms"] >= record["p50_latency_ms"]
    assert record["p95_latency_ms"] <= record["wall_seconds"] * 1000


@pytest.fixture(scope="module", autouse=True)
def _report(figure_report):
    yield
    if not RESULTS:
        return
    record = {
        "rows": NUM_ROWS,
        "attributes": NUM_ATTRIBUTES,
        "quick_mode": QUICK,
        "concurrency": CONCURRENCY,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "queue_depth": QUEUE_DEPTH,
        "max_inflight": MAX_INFLIGHT,
        "backends": RESULTS,
    }

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    path = results_dir / "BENCH_discovery.json"
    payload = {}
    if path.exists():
        payload = json.loads(path.read_text(encoding="utf-8"))
    payload["serve"] = record
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    metrics = ["p50_latency_ms", "p95_latency_ms", "rejection_rate"]
    figure_report(
        "Serve-layer load (admission control under concurrency)",
        "metric",
        metrics,
        {
            backend: [RESULTS[backend].get(m) for m in metrics]
            for backend in RESULTS
        },
        notes=[
            f"workload: random table, {NUM_ROWS} rows, "
            f"{NUM_ATTRIBUTES} attributes; {CONCURRENCY} clients x "
            f"{REQUESTS_PER_CLIENT} requests, queue_depth={QUEUE_DEPTH}, "
            f"max_inflight={MAX_INFLIGHT}",
            "rejections are 429/503 responses (no client retries); "
            "latency percentiles cover accepted requests only",
        ],
    )
