"""Exp-3 / Figure 4 — effect of the approximation threshold.

The paper uses 10K-tuple prefixes, 10 attributes and thresholds 0-25%
(plus 30% in the raw data): the optimal validator's total discovery time is
flat in the threshold (it even drops occasionally thanks to better pruning),
while the iterative validator's grows almost linearly, matching the
``O(n log n)`` vs ``O(n log n + ε·n²)`` analysis.

Exp-3 also reports that with the iterative validator up to 99.6% of the
discovery runtime goes into validation, and that the LNDS-based validator
cuts time spent validating AOCs by up to 99.8%; the second table below
reproduces those shares from the engine's phase timers.

Scaled-down reproduction: 1 000 tuples, 8 attributes, same threshold sweep.
"""

import pytest

from repro.benchlib.harness import measure_discovery
from repro.benchlib.workloads import WorkloadSpec, make_workload

NUM_ROWS = 1_000
NUM_ATTRIBUTES = 8
THRESHOLDS = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25]
TIME_BUDGET_SECONDS = 120.0

RESULTS = {}
SHARES = {}
COUNTS = {}


def _relation(dataset):
    spec = WorkloadSpec(dataset, NUM_ROWS, NUM_ATTRIBUTES, error_rate=0.08)
    return make_workload(spec).relation


@pytest.mark.parametrize("dataset", ["flight", "ncvoter"])
@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_aod_optimal_vs_threshold(benchmark, dataset, threshold):
    relation = _relation(dataset)
    measurement = benchmark.pedantic(
        lambda: measure_discovery(relation, "aod-optimal", threshold=threshold),
        rounds=1,
        iterations=1,
    )
    RESULTS.setdefault((dataset, "optimal"), {})[threshold] = measurement.seconds
    SHARES.setdefault((dataset, "optimal"), {})[threshold] = measurement.validation_share
    COUNTS.setdefault((dataset, "optimal"), {})[threshold] = measurement.num_ocs


@pytest.mark.parametrize("dataset", ["flight", "ncvoter"])
@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_aod_iterative_vs_threshold(benchmark, dataset, threshold):
    relation = _relation(dataset)
    measurement = benchmark.pedantic(
        lambda: measure_discovery(
            relation,
            "aod-iterative",
            threshold=threshold,
            time_limit_seconds=TIME_BUDGET_SECONDS,
        ),
        rounds=1,
        iterations=1,
    )
    RESULTS.setdefault((dataset, "iterative"), {})[threshold] = measurement.seconds
    SHARES.setdefault((dataset, "iterative"), {})[threshold] = measurement.validation_share
    COUNTS.setdefault((dataset, "iterative"), {})[threshold] = measurement.num_ocs


@pytest.fixture(scope="module", autouse=True)
def _render(figure_report):
    yield
    labels = [f"{t:.0%}" for t in THRESHOLDS]
    for dataset in ("flight", "ncvoter"):
        optimal = RESULTS.get((dataset, "optimal"), {})
        iterative = RESULTS.get((dataset, "iterative"), {})
        if not optimal:
            continue
        figure_report(
            f"Exp-3 / Figure 4 — effect of the approximation threshold "
            f"({dataset}-like, {NUM_ROWS} tuples, {NUM_ATTRIBUTES} attributes)",
            "threshold",
            labels,
            {
                "AOD optimal (s)": [optimal.get(t, float("nan")) for t in THRESHOLDS],
                "AOD iterative (s)": [
                    iterative.get(t, float("nan")) for t in THRESHOLDS
                ],
            },
            annotations={
                "#AOCs (optimal)": [
                    COUNTS.get((dataset, "optimal"), {}).get(t, "-") for t in THRESHOLDS
                ],
                "#AOCs (iterative)": [
                    COUNTS.get((dataset, "iterative"), {}).get(t, "-")
                    for t in THRESHOLDS
                ],
            },
            notes=[
                "paper shape: the optimal series is flat in the threshold; the "
                "iterative series grows roughly linearly with it",
            ],
        )
        figure_report(
            f"Exp-3 (text) — share of runtime spent validating candidates "
            f"({dataset}-like)",
            "threshold",
            labels,
            {
                "optimal validation share": [
                    SHARES.get((dataset, "optimal"), {}).get(t, float("nan"))
                    for t in THRESHOLDS
                ],
                "iterative validation share": [
                    SHARES.get((dataset, "iterative"), {}).get(t, float("nan"))
                    for t in THRESHOLDS
                ],
            },
            notes=[
                "paper: with the iterative validator up to 99.6% of the runtime "
                "is validation; the optimal validator removes that bottleneck",
            ],
        )
