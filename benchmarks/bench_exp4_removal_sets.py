"""Exp-4 — removal-set sizes and AOCs missed by the iterative validator.

The paper reports that the iterative algorithm's removal sets are on average
about 1% larger than the true minimum, and that overestimating the
approximation factor makes it miss up to 2% of the valid AOCs (e.g.
``arrivalDelay ~ lateAircraftDelay`` with a true factor of 9.5% estimated as
10.5% and therefore rejected at the 10% threshold).

This bench validates every level-2 OC candidate of the two synthetic
workloads with both algorithms and reports:

* the mean relative removal-set inflation of the greedy validator,
* the number and fraction of AOCs valid under the optimal validator but
  rejected by the greedy one at the 10% threshold.
"""

from itertools import combinations

import pytest

from repro.benchlib.harness import compare_validators_on_candidates
from repro.benchlib.workloads import WorkloadSpec, make_workload
from repro.dependencies.oc import CanonicalOC

NUM_ROWS = 1_000
NUM_ATTRIBUTES = 10
THRESHOLD = 0.10

SUMMARIES = {}


def _candidates(relation):
    return [
        CanonicalOC((), a, b)
        for a, b in combinations(relation.attribute_names, 2)
    ]


@pytest.mark.parametrize("dataset", ["flight", "ncvoter"])
def test_removal_set_comparison(benchmark, dataset):
    workload = make_workload(
        WorkloadSpec(dataset, NUM_ROWS, NUM_ATTRIBUTES, error_rate=0.08)
    )
    relation = workload.relation
    candidates = _candidates(relation)
    summary = benchmark.pedantic(
        lambda: compare_validators_on_candidates(relation, candidates, THRESHOLD),
        rounds=1,
        iterations=1,
    )
    SUMMARIES[dataset] = summary
    # The greedy validator never produces a smaller removal set.
    assert all(c.iterative_removal >= c.optimal_removal for c in summary.comparisons)


@pytest.fixture(scope="module", autouse=True)
def _render(figure_report):
    yield
    datasets = [d for d in ("flight", "ncvoter") if d in SUMMARIES]
    if not datasets:
        return
    rows = []
    mean_overestimates = []
    missed_counts = []
    valid_counts = []
    for dataset in datasets:
        summary = SUMMARIES[dataset]
        valid = sum(
            1 for c in summary.comparisons if c.optimal_factor <= THRESHOLD
        )
        missed = summary.missed_by_iterative()
        mean_overestimates.append(summary.mean_relative_overestimate)
        missed_counts.append(len(missed))
        valid_counts.append(valid)
    figure_report(
        f"Exp-4 — removal sets and AOCs missed by the iterative validator "
        f"({NUM_ROWS} tuples, level-2 candidates, eps={THRESHOLD:.0%})",
        "dataset",
        datasets,
        {
            "mean relative removal-set inflation": mean_overestimates,
        },
        annotations={
            "#valid AOCs (optimal)": valid_counts,
            "#missed by iterative": missed_counts,
        },
        notes=[
            "paper: removal sets ~1% larger on average; up to 2% of valid AOCs "
            "missed near the threshold",
            "candidates whose true factor is just below eps and whose greedy "
            "estimate lands above it are the ones lost",
        ],
    )
