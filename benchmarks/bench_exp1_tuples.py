"""Exp-1 / Figure 2 — discovery scalability in the number of tuples.

The paper runs OD discovery (exact), AOD discovery with the optimal
validator and AOD discovery with the iterative validator on growing prefixes
of ``flight`` (200K-1M tuples) and ``ncvoter`` (100K-5M tuples), 10
attributes, ε = 10%.  The iterative series fails to finish within 24 hours
beyond 400K / 1M tuples and is projected.

Here the same three series are produced on scaled-down synthetic stand-ins
(hundreds to thousands of tuples — pure Python is orders of magnitude slower
per tuple than the paper's Java implementation); the iterative runs are
capped by a wall-clock budget and projected quadratically beyond it, exactly
as the paper projects its missing points.  The expected shape: OD and
AOD(optimal) grow gently and stay close to each other; AOD(iterative) is
orders of magnitude slower and/or hits the cap.
"""

import pytest

from repro.benchlib.harness import measure_discovery
from repro.benchlib.reporting import projected_quadratic_runtime
from repro.benchlib.workloads import WorkloadSpec, make_workload

THRESHOLD = 0.10
NUM_ATTRIBUTES = 10
SIZES = {
    "flight": [250, 500, 1_000, 2_000],
    "ncvoter": [250, 500, 1_000, 2_000],
}
#: Wall-clock cap standing in for the paper's 24-hour limit.
ITERATIVE_BUDGET_SECONDS = 20.0
#: Largest size the iterative mode is actually run at; larger points are
#: projected quadratically (as the paper projects its flight curve).
ITERATIVE_MAX_ROWS = 500

RESULTS = {}   # (dataset, mode) -> {num_rows: seconds}
COUNTS = {}    # (dataset, mode) -> {num_rows: #OCs}
PROJECTED = {}  # (dataset, num_rows) -> projected iterative seconds


def _relation(dataset, num_rows):
    spec = WorkloadSpec(dataset, num_rows, NUM_ATTRIBUTES, error_rate=0.08)
    return make_workload(spec).relation


def _record(dataset, mode, num_rows, measurement):
    RESULTS.setdefault((dataset, mode), {})[num_rows] = measurement.seconds
    COUNTS.setdefault((dataset, mode), {})[num_rows] = measurement.num_ocs


@pytest.mark.parametrize("dataset", sorted(SIZES))
@pytest.mark.parametrize("num_rows", [250, 500, 1_000, 2_000])
def test_exact_od_discovery(benchmark, dataset, num_rows):
    relation = _relation(dataset, num_rows)
    measurement = benchmark.pedantic(
        lambda: measure_discovery(relation, "od"), rounds=1, iterations=1
    )
    _record(dataset, "od", num_rows, measurement)
    assert not measurement.timed_out


@pytest.mark.parametrize("dataset", sorted(SIZES))
@pytest.mark.parametrize("num_rows", [250, 500, 1_000, 2_000])
def test_aod_optimal_discovery(benchmark, dataset, num_rows):
    relation = _relation(dataset, num_rows)
    measurement = benchmark.pedantic(
        lambda: measure_discovery(relation, "aod-optimal", threshold=THRESHOLD),
        rounds=1,
        iterations=1,
    )
    _record(dataset, "aod-optimal", num_rows, measurement)
    assert not measurement.timed_out
    assert measurement.num_ocs > 0


@pytest.mark.parametrize("dataset", sorted(SIZES))
@pytest.mark.parametrize("num_rows", [250, 500])
def test_aod_iterative_discovery(benchmark, dataset, num_rows):
    relation = _relation(dataset, num_rows)
    measurement = benchmark.pedantic(
        lambda: measure_discovery(
            relation,
            "aod-iterative",
            threshold=THRESHOLD,
            time_limit_seconds=ITERATIVE_BUDGET_SECONDS,
        ),
        rounds=1,
        iterations=1,
    )
    _record(dataset, "aod-iterative", num_rows, measurement)


@pytest.fixture(scope="module", autouse=True)
def _render(figure_report):
    yield
    for dataset, sizes in SIZES.items():
        od = RESULTS.get((dataset, "od"), {})
        optimal = RESULTS.get((dataset, "aod-optimal"), {})
        iterative = dict(RESULTS.get((dataset, "aod-iterative"), {}))
        if not od or not optimal:
            continue
        # Project the iterative series beyond the sizes it was actually run
        # at, mirroring the paper's projection of its >24h points.
        base_rows = max(iterative) if iterative else None
        for num_rows in sizes:
            if num_rows not in iterative and base_rows is not None:
                iterative[num_rows] = projected_quadratic_runtime(
                    iterative[base_rows], base_rows, num_rows
                )
        figure_report(
            f"Exp-1 / Figure 2 — scalability in |r| ({dataset}-like, "
            f"{NUM_ATTRIBUTES} attributes, eps={THRESHOLD:.0%})",
            "tuples",
            sizes,
            {
                "OD (s)": [od.get(s, float("nan")) for s in sizes],
                "AOD optimal (s)": [optimal.get(s, float("nan")) for s in sizes],
                "AOD iterative (s, *=projected)": [
                    iterative.get(s, float("nan")) for s in sizes
                ],
            },
            annotations={
                "#OCs (OD)": [
                    COUNTS.get((dataset, "od"), {}).get(s, "-") for s in sizes
                ],
                "#AOCs (optimal)": [
                    COUNTS.get((dataset, "aod-optimal"), {}).get(s, "-") for s in sizes
                ],
            },
            notes=[
                f"iterative measured up to {ITERATIVE_MAX_ROWS} rows, larger "
                "points projected quadratically (the paper projects its >24h points)",
                "paper shape: OD and AOD(optimal) stay within a small factor of "
                "each other; AOD(iterative) is orders of magnitude slower",
            ],
        )
