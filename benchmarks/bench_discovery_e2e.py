"""End-to-end discovery benchmark: batched scheduler and worker sharding.

Unlike ``bench_validators_micro`` (single-candidate kernels), this suite
times *whole* discovery runs on a generated flight-like workload and records
the perf trajectory the ROADMAP asks for: per-candidate vs level-synchronous
batched scheduling, python vs numpy backend, 1 vs 4 worker processes, and a
threshold sweep through a cold (one-shot per ε) vs warm
(:meth:`repro.discovery.session.Profiler.sweep`) session.

Every configuration must discover the identical OC/OFD sets (names, removal
sizes, levels) — asserted at the end of the module — so the recorded numbers
are always an apples-to-apples comparison.

Results are printed as a figure and persisted to
``benchmarks/results/BENCH_discovery.json`` so CI can upload them.  Quick
mode (``REPRO_BENCH_QUICK=1``, used by the CI smoke job) shrinks the
workload; ``REPRO_BENCH_E2E_ROWS`` overrides the row count outright.
"""

import json
import os
from pathlib import Path

import pytest

from repro.backend import available_backends
from repro.benchlib.harness import (
    measure_discovery,
    measure_incremental,
    measure_sweep,
)
from repro.dataset.generators import generate_flight_like

QUICK = os.environ.get("REPRO_BENCH_QUICK", "").strip() not in ("", "0")
NUM_ROWS = int(
    os.environ.get("REPRO_BENCH_E2E_ROWS", "2000" if QUICK else "16000")
)
NUM_ATTRIBUTES = 8 if QUICK else 10
THRESHOLD = 0.1
#: Thresholds for the session-sweep measurement (cold vs warm Profiler).
#: An Exp-3-style grid around the paper's default ε = 10%; the warm session
#: executes largest-first so removal counts transfer to every smaller budget.
SWEEP_THRESHOLDS = [0.06, 0.09, 0.12, 0.15]
SWEEP_BACKEND = "numpy" if "numpy" in available_backends() else "python"

#: (backend, batched, workers) — per-candidate vs batched on both backends,
#: plus the worker-scaling curve (w1/w2/w4) of the pipelined sharded path
#: on the fastest backend: rank columns stay resident in the worker
#: processes (shipped once per dataset version) and OC context groups are
#: dispatched asynchronously while the coordinator validates OFDs.
CASES = [("python", False, 1), ("python", True, 1)]
if "numpy" in available_backends():
    CASES += [
        ("numpy", False, 1), ("numpy", True, 1),
        ("numpy", True, 2), ("numpy", True, 4),
    ]

RESULTS = {}


def _case_id(case):
    backend, batched, workers = case
    return f"{backend}-{'batched' if batched else 'percand'}-w{workers}"


@pytest.fixture(scope="module")
def relation():
    workload = generate_flight_like(
        NUM_ROWS, num_attributes=NUM_ATTRIBUTES, error_rate=0.08, seed=7
    )
    return workload.relation


@pytest.mark.parametrize("case", CASES, ids=_case_id)
def test_discovery_e2e(relation, case):
    backend, batched, workers = case
    relation.encoded(backend)  # encoding is shared; time the discovery itself
    measurement = measure_discovery(
        relation,
        "aod-optimal",
        threshold=THRESHOLD,
        backend=backend,
        batch_validation=batched,
        num_workers=workers,
        label=_case_id(case),
    )
    RESULTS[case] = measurement
    assert not measurement.timed_out
    assert measurement.num_ocs > 0 and measurement.num_ofds > 0


PLANNER_RESULT = {}
#: Worker ceiling handed to the planner leg: the planner may use up to
#: this many workers — or degrade to in-process when the calibrated cost
#: model says parallelism cannot pay (the expected choice on 1-core CI).
PLANNER_MAX_WORKERS = 4


def test_discovery_planner(relation):
    """The adaptive-planner leg: ``plan="auto"`` with the full knob space.

    Measured against every fixed configuration in ``_report``: the planner
    must land within 10% of the best fixed configuration and strictly beat
    the worst (asserted by the CI bench-smoke job from the ``planner``
    record), while discovering the identical dependency sets (asserted
    here via the shared signature check).

    Calibration is pre-warmed: sessions calibrate once and reuse the model
    across runs, so the leg measures the planner's steady-state execution
    strategy, not the one-time micro-probe cost (which is cached
    process-wide anyway)."""
    from repro.planner import calibrate

    calibrate(backend=SWEEP_BACKEND)
    relation.encoded(SWEEP_BACKEND)
    measurement = measure_discovery(
        relation,
        "aod-optimal",
        threshold=THRESHOLD,
        backend=SWEEP_BACKEND,
        batch_validation=True,
        num_workers=PLANNER_MAX_WORKERS,
        plan="auto",
        label=f"{SWEEP_BACKEND}-planner-auto-w{PLANNER_MAX_WORKERS}",
    )
    PLANNER_RESULT["planner"] = measurement
    assert not measurement.timed_out
    assert measurement.plan == "auto"
    assert measurement.result.stats.planner_decisions, (
        "the planner leg must record per-level decisions"
    )


SWEEP_RESULT = {}


def test_sweep_cold_vs_warm(relation):
    """Session sweep acceptance: a warm ``Profiler.sweep`` over several
    thresholds must beat the equivalent repeated one-shot runs, with
    byte-identical per-threshold results."""
    measurement = measure_sweep(
        relation, SWEEP_THRESHOLDS, backend=SWEEP_BACKEND
    )
    SWEEP_RESULT["sweep"] = measurement
    for cold, warm in zip(measurement.cold_results, measurement.warm_results):
        assert warm.ocs == cold.ocs
        assert warm.ofds == cold.ofds
    # Warm runs after the first serve most validations from the memo.
    assert sum(r.stats.validation_memo_hits
               for r in measurement.warm_results) > 0
    if not QUICK:
        # The ISSUE-3 acceptance bar, measured at the full 16k-row workload.
        assert measurement.speedup >= 2.0, measurement.as_row()


INCREMENTAL_RESULT = {}
#: Appended rows: ≤1% of the workload (the ISSUE-4 acceptance point).
DELTA_ROWS = max(4, NUM_ROWS // 100)


def test_incremental_vs_cold(relation):
    """Evolving-data acceptance: after appending a small delta (≤1% of
    rows), ``Profiler.extend`` + ``discover_incremental`` must reproduce
    the cold result over the concatenated table byte-identically — and
    beat it on wall clock."""
    donor = generate_flight_like(
        NUM_ROWS + DELTA_ROWS, num_attributes=NUM_ATTRIBUTES,
        error_rate=0.08, seed=13,
    ).relation
    delta_rows = [
        donor.row(index) for index in range(NUM_ROWS, NUM_ROWS + DELTA_ROWS)
    ]
    measurement = measure_incremental(
        relation, delta_rows, threshold=THRESHOLD, backend=SWEEP_BACKEND
    )
    INCREMENTAL_RESULT["incremental"] = measurement
    assert measurement.incremental_result.ocs == measurement.cold_result.ocs
    assert measurement.incremental_result.ofds == measurement.cold_result.ofds
    assert measurement.memo_hits > 0
    if not QUICK:
        # The ISSUE-4 acceptance bar at the full 16k-row workload.
        assert measurement.speedup >= 2.0, measurement.as_row()


OBSERVABILITY_RESULT = {}
#: The ISSUE-9 acceptance bar: instrumentation with tracing *disabled*
#: (the default) may cost at most this share of an untraced run.
OVERHEAD_BUDGET_PCT = 2.0


def test_observability_overhead(relation):
    """The observability leg: tracing-off overhead and traced byte-identity.

    Timing two whole runs against each other is hopelessly noisy at the
    sub-percent scale this asserts, so the off-overhead is computed
    deterministically: a counting no-op tracer tallies how many
    instrumentation touchpoints one run actually executes, the cost of one
    no-op touchpoint is micro-timed in isolation, and the product over the
    untraced wall clock bounds the overhead.  The traced run is recorded
    informationally (it pays for real span bookkeeping) and must discover
    the byte-identical dependency sets."""
    import timeit

    from repro.obs import (
        MetricsRegistry, NoopTracer, Tracer, set_metrics, use_tracer,
    )

    class CountingNoopTracer(NoopTracer):
        """Counts every off-path instrumentation touchpoint."""

        def __init__(self):
            self.calls = 0

        def span(self, name, parent=None, **attrs):
            self.calls += 1
            return super().span(name, parent, **attrs)

        def start_span(self, name, parent=None, **attrs):
            self.calls += 1
            return None

        def end_span(self, span):
            self.calls += 1
            return None

        def current_span_id(self):
            self.calls += 1
            return None

    relation.encoded(SWEEP_BACKEND)
    kwargs = dict(
        threshold=THRESHOLD, backend=SWEEP_BACKEND,
        batch_validation=True, num_workers=1,
    )
    off = min(
        (measure_discovery(relation, "aod-optimal", label="obs-off", **kwargs)
         for _ in range(2)),
        key=lambda m: m.seconds,
    )

    counting = CountingNoopTracer()
    with use_tracer(counting):
        counted = measure_discovery(
            relation, "aod-optimal", label="obs-count", **kwargs
        )
    assert counting.calls > 0

    noop = NoopTracer()

    def _touchpoint():
        with noop.span("bench", level=1):
            pass

    probe_n = 20000
    per_call = min(timeit.repeat(_touchpoint, number=probe_n, repeat=3))
    per_call /= probe_n
    off_overhead_pct = 100.0 * counting.calls * per_call / off.seconds

    tracer = Tracer()
    previous_metrics = set_metrics(MetricsRegistry())
    try:
        with use_tracer(tracer):
            on = measure_discovery(
                relation, "aod-optimal", label="obs-traced", **kwargs
            )
    finally:
        set_metrics(previous_metrics)

    identical = (
        on.result.ocs == off.result.ocs
        and on.result.ofds == off.result.ofds
        and counted.result.ocs == off.result.ocs
        and counted.result.ofds == off.result.ofds
    )
    OBSERVABILITY_RESULT["observability"] = {
        "touchpoints": counting.calls,
        "noop_span_cost_us": round(per_call * 1e6, 4),
        "off_seconds": round(off.seconds, 4),
        "on_seconds": round(on.seconds, 4),
        "spans": len(tracer.finished_spans()),
        "tracing_off_overhead_pct": round(off_overhead_pct, 4),
        "overhead_budget_pct": OVERHEAD_BUDGET_PCT,
        "byte_identical": identical,
    }
    assert identical, "tracing changed the discovered dependency sets"
    assert len(tracer.finished_spans()) > 0
    assert off_overhead_pct <= OVERHEAD_BUDGET_PCT, (
        OBSERVABILITY_RESULT["observability"]
    )


def _signature(measurement):
    """The discovered dependency sets: names, removal sizes, levels."""
    result = measurement.result
    return (
        [(f.oc, f.removal_size, f.level) for f in result.ocs],
        [(f.ofd, f.removal_size, f.level) for f in result.ofds],
    )


@pytest.fixture(scope="module", autouse=True)
def _report(figure_report):
    yield
    if not RESULTS:
        return
    # Hard acceptance bar: every scheduling mode, backend and worker count
    # discovers the same dependencies.
    reference = _signature(next(iter(RESULTS.values())))
    for case, measurement in RESULTS.items():
        assert _signature(measurement) == reference, (
            f"{_case_id(case)} diverged from the reference result"
        )
    planner = PLANNER_RESULT.get("planner")
    if planner is not None:
        assert _signature(planner) == reference, (
            "the planner leg diverged from the fixed-configuration result"
        )

    rows = [measurement.as_row() | {"rows": NUM_ROWS}
            for measurement in RESULTS.values()]
    if planner is not None:
        rows.append(planner.as_row() | {"rows": NUM_ROWS})
    speedups = {}
    for backend in ("python", "numpy"):
        per_candidate = RESULTS.get((backend, False, 1))
        batched = RESULTS.get((backend, True, 1))
        if per_candidate and batched and batched.seconds > 0:
            speedups[backend] = round(per_candidate.seconds / batched.seconds, 2)
    # The worker-scaling curve of the pipelined sharded path (ISSUE-5):
    # seconds per worker count, normalised against the in-process w1 run.
    # Whether w4 can actually *win* depends on the hardware: worker
    # processes overlap with the coordinator's partition building and OFD
    # validation, which needs real cores — on a single-CPU runner the
    # overlap degenerates to timesharing and the curve only measures the
    # (column-plane-reduced) dispatch overhead.  cpu_count is recorded so
    # readers can interpret the numbers.
    worker_scaling = {"cpu_count": os.cpu_count()}
    baseline = RESULTS.get(("numpy", True, 1))
    if baseline is not None:
        for backend, batched, workers in RESULTS:
            if backend == "numpy" and batched:
                measurement = RESULTS[(backend, batched, workers)]
                worker_scaling[f"w{workers}"] = {
                    "seconds": round(measurement.seconds, 4),
                    "pipelined": measurement.pipelined,
                    "speedup_vs_w1": round(
                        baseline.seconds / measurement.seconds, 2
                    ) if measurement.seconds > 0 else None,
                }

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    payload = {
        "workload": f"flight-like, {NUM_ROWS} rows, "
                    f"{NUM_ATTRIBUTES} attributes, threshold {THRESHOLD}",
        "quick_mode": QUICK,
        "runs": rows,
        "batched_speedup": speedups,
        "worker_scaling": worker_scaling,
    }
    # The planner record (ISSUE-8 acceptance): planner wall-clock against
    # every fixed configuration on this host.  CI asserts the planner is
    # within 10% of the best fixed configuration and strictly beats the
    # worst one.
    if planner is not None:
        fixed_seconds = {
            _case_id(case): round(m.seconds, 4) for case, m in RESULTS.items()
        }
        best_id = min(fixed_seconds, key=fixed_seconds.get)
        worst_id = max(fixed_seconds, key=fixed_seconds.get)
        payload["planner"] = {
            "label": planner.label,
            "seconds": round(planner.seconds, 4),
            "backend": planner.backend,
            "max_workers": PLANNER_MAX_WORKERS,
            "cpu_count": os.cpu_count(),
            "fixed": fixed_seconds,
            "best_fixed": {
                "case": best_id, "seconds": fixed_seconds[best_id]
            },
            "worst_fixed": {
                "case": worst_id, "seconds": fixed_seconds[worst_id]
            },
            "vs_best": round(planner.seconds / fixed_seconds[best_id], 3)
            if fixed_seconds[best_id] > 0 else None,
            "vs_worst": round(planner.seconds / fixed_seconds[worst_id], 3)
            if fixed_seconds[worst_id] > 0 else None,
            "decisions": planner.result.stats.planner_decisions,
        }
    sweep = SWEEP_RESULT.get("sweep")
    if sweep is not None:
        payload["sweep"] = sweep.as_row() | {"rows": NUM_ROWS}
    incremental = INCREMENTAL_RESULT.get("incremental")
    if incremental is not None:
        payload["incremental"] = incremental.as_row()
    observability = OBSERVABILITY_RESULT.get("observability")
    if observability is not None:
        payload["observability"] = observability
    # Merge into the existing report: other suites (the partition
    # micro-benchmarks) contribute their own records to the same file.
    report_path = results_dir / "BENCH_discovery.json"
    if report_path.exists():
        merged = json.loads(report_path.read_text(encoding="utf-8"))
        merged.update(payload)
        payload = merged
    report_path.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    # Regenerate the human-readable summary wholesale from the merged JSON
    # (never append: the old append-per-run flow made summary.txt drift).
    from repro.benchlib.reporting import write_bench_summary

    write_bench_summary(report_path, results_dir / "summary.txt")

    # The ISSUE-5 acceptance bar, meaningful only with the cores to overlap
    # on: sharded-and-pipelined must beat in-process.  Checked *after* the
    # JSON is written, so a failed bar never discards the measurements
    # needed to diagnose it.
    w4 = RESULTS.get(("numpy", True, 4))
    if (not QUICK and w4 is not None and baseline is not None
            and (os.cpu_count() or 1) >= 4):
        assert w4.seconds < baseline.seconds, worker_scaling

    cases = list(RESULTS)
    figure_report(
        "End-to-end discovery: per-candidate vs batched vs sharded",
        "configuration",
        [_case_id(case) for case in cases],
        {
            "seconds": [round(RESULTS[c].seconds, 3) for c in cases],
            "validation share": [
                round(RESULTS[c].validation_share, 3) for c in cases
            ],
        },
        notes=[
            f"workload: flight-like, {NUM_ROWS} rows, threshold {THRESHOLD}",
            "identical OC/OFD sets across all configurations (asserted)",
            f"batched speedup vs per-candidate: {speedups}",
            f"worker scaling (pipelined, column plane): {worker_scaling}",
        ]
        + (
            [
                f"planner (auto, ceiling w{PLANNER_MAX_WORKERS}): "
                f"{planner.seconds:.3f}s vs best fixed "
                f"{payload['planner']['best_fixed']['case']} "
                f"{payload['planner']['best_fixed']['seconds']:.3f}s "
                f"(ratio {payload['planner']['vs_best']})"
            ]
            if planner is not None
            else []
        )
        + (
            [
                f"session sweep {SWEEP_THRESHOLDS} ({sweep.backend}): "
                f"cold {sweep.cold_seconds:.3f}s vs warm "
                f"{sweep.warm_seconds:.3f}s = {sweep.speedup:.2f}x"
            ]
            if sweep is not None
            else []
        )
        + (
            [
                f"incremental append of {incremental.delta_rows} rows "
                f"({incremental.backend}): cold "
                f"{incremental.cold_seconds:.3f}s vs incremental "
                f"{incremental.incremental_seconds:.3f}s = "
                f"{incremental.speedup:.2f}x"
            ]
            if incremental is not None
            else []
        ),
    )
