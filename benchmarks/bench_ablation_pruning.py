"""Ablation benches for the framework's design choices (DESIGN.md §4/§5).

Three switches are ablated on the same workload:

* **node deletion** (`prune_exhausted_nodes`) — the FASTOD/TANE-style rule
  that drops lattice nodes whose candidate sets emptied out; turning it off
  makes the search exhaustive over the full 2^|R| lattice,
* **aggressive OFD pruning** (`aggressive_ofd_pruning`) — TANE's
  right-hand-side rule fired by exactly-held OFDs,
* **hybrid sample prefilter** (`repro.discovery.sampling`) — the §5
  future-work idea: reject hopeless AOC candidates from a small sample
  before running the full LNDS validation.

Reported for each configuration: discovery runtime, number of candidates
validated and number of dependencies found (the ablations must not change
*what* is found on this workload, only how much work it takes).
"""

import pytest

from repro.benchlib.workloads import WorkloadSpec, make_workload
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import DiscoveryEngine
from repro.discovery.sampling import prefilter_candidates
from repro.dependencies.oc import CanonicalOC

NUM_ROWS = 800
NUM_ATTRIBUTES = 12
THRESHOLD = 0.10

OUTCOMES = {}


def _relation():
    # The ncvoter-like workload has several exactly-held FDs (county and
    # municipality hierarchies), which is what the OFD-driven pruning rules
    # feed on — the ablation is invisible on workloads without them.
    return make_workload(
        WorkloadSpec("ncvoter", NUM_ROWS, NUM_ATTRIBUTES, error_rate=0.08)
    ).relation


@pytest.mark.parametrize(
    "label, node_pruning, ofd_pruning",
    [
        ("full pruning (default)", True, True),
        ("no node deletion", False, True),
        ("no aggressive OFD pruning", True, False),
        ("no pruning at all", False, False),
    ],
)
def test_pruning_ablation(benchmark, label, node_pruning, ofd_pruning):
    relation = _relation()
    config = DiscoveryConfig.approximate(
        threshold=THRESHOLD,
        prune_exhausted_nodes=node_pruning,
        aggressive_ofd_pruning=ofd_pruning,
    )
    result = benchmark.pedantic(
        lambda: DiscoveryEngine(relation, config).run(), rounds=1, iterations=1
    )
    OUTCOMES[label] = {
        "seconds": result.stats.total_seconds,
        "oc_candidates": result.stats.oc_candidates_validated,
        "ofd_candidates": result.stats.ofd_candidates_validated,
        "dependencies": result.num_dependencies,
    }
    assert result.num_dependencies > 0
    # Pruning must never change what is discovered, only how much work it takes.
    baseline = OUTCOMES.get("full pruning (default)")
    if baseline is not None:
        assert OUTCOMES[label]["dependencies"] == baseline["dependencies"]


def test_hybrid_prefilter_ablation(benchmark):
    """Level-2 candidate screening: sample prefilter vs none."""
    from itertools import combinations

    relation = _relation()
    candidates = [
        CanonicalOC((), a, b)
        for a, b in combinations(relation.attribute_names, 2)
    ]

    def run():
        survivors, rejected = prefilter_candidates(
            relation, candidates, THRESHOLD, sample_size=100, seed=3
        )
        return survivors, rejected

    survivors, rejected = benchmark.pedantic(run, rounds=1, iterations=1)
    OUTCOMES["hybrid sample prefilter (level-2)"] = {
        "seconds": None,
        "oc_candidates": len(survivors),
        "ofd_candidates": 0,
        "dependencies": len(candidates) - len(rejected),
    }
    assert len(survivors) + len(rejected) == len(candidates)
    # The prefilter must keep every candidate that is actually valid.
    from repro.validation.approx_oc_optimal import validate_aoc_optimal

    for oc in rejected:
        assert not validate_aoc_optimal(relation, oc, threshold=THRESHOLD).is_valid


@pytest.fixture(scope="module", autouse=True)
def _render(figure_report):
    yield
    labels = [label for label in OUTCOMES if OUTCOMES[label]["seconds"] is not None]
    if not labels:
        return
    figure_report(
        f"Ablation — pruning rules of the discovery framework "
        f"(ncvoter-like, {NUM_ROWS} tuples, {NUM_ATTRIBUTES} attributes, "
        f"eps={THRESHOLD:.0%})",
        "configuration",
        labels,
        {
            "discovery time (s)": [OUTCOMES[l]["seconds"] for l in labels],
        },
        annotations={
            "#OC candidates validated": [OUTCOMES[l]["oc_candidates"] for l in labels],
            "#OFD candidates validated": [
                OUTCOMES[l]["ofd_candidates"] for l in labels
            ],
            "#dependencies found": [OUTCOMES[l]["dependencies"] for l in labels],
        },
        notes=[
            "node deletion and OFD pruning trade a small bookkeeping cost for "
            "fewer validated candidates; both are required to reach the "
            "paper's scalability",
            "the hybrid sample prefilter (separate row set omitted from the "
            "table) soundly rejects hopeless level-2 candidates from a "
            "100-row sample",
        ],
    )
