"""Exp-6 — discovered AOCs compared to exact OCs (quality / generality).

The paper's final experiment is qualitative: the exact algorithm cannot
report dependencies broken by even a single dirty value, while AOD discovery
surfaces them — e.g. ``originAirport ~ IATACode`` (8% factor) on flight and
``streetAddress ~ mailAddress`` (18%) on ncvoter — and those AOCs rank at
the top of the interestingness ordering.

The synthetic workloads plant exactly such dependencies with known dirty
rows, so this bench checks, per dataset:

* the exact run misses every planted dependency,
* the approximate run (ε = 10%) finds them,
* they appear in the top of the interestingness ranking,
* overall dependency counts for both runs (the numbers annotated on
  Figures 2/3).
"""

import pytest

from repro.benchlib.workloads import WorkloadSpec, make_workload
from repro.discovery.api import discover_aods, discover_ods

NUM_ROWS = 1_000
NUM_ATTRIBUTES = 10
ERROR_RATE = 0.06
THRESHOLD = 0.10

OUTCOMES = {}


@pytest.mark.parametrize("dataset", ["flight", "ncvoter"])
def test_exact_vs_approximate_discovery(benchmark, dataset):
    workload = make_workload(
        WorkloadSpec(dataset, NUM_ROWS, NUM_ATTRIBUTES, error_rate=ERROR_RATE)
    )
    relation = workload.relation

    def run_both():
        exact = discover_ods(relation)
        approx = discover_aods(relation, threshold=THRESHOLD)
        return exact, approx

    exact, approx = benchmark.pedantic(run_both, rounds=1, iterations=1)

    planted_found_exact = 0
    planted_found_approx = 0
    top_ranked = 0
    ranking = [found.oc for found in approx.ranked_ocs(10)]
    for planted in workload.planted_ocs:
        if exact.find_oc(planted.a, planted.b, planted.context) is not None:
            planted_found_exact += 1
        found = approx.find_oc(planted.a, planted.b, planted.context)
        if found is not None:
            planted_found_approx += 1
            if found.oc in ranking:
                top_ranked += 1
    OUTCOMES[dataset] = {
        "planted": len(workload.planted_ocs),
        "found_exact": planted_found_exact,
        "found_approx": planted_found_approx,
        "top_ranked": top_ranked,
        "ocs_exact": exact.num_ocs,
        "ocs_approx": approx.num_ocs,
    }
    # The paper's core qualitative claim: dirty dependencies are invisible to
    # exact discovery but recovered by approximate discovery.
    assert planted_found_exact == 0
    assert planted_found_approx == len(workload.planted_ocs)


@pytest.fixture(scope="module", autouse=True)
def _render(figure_report):
    yield
    datasets = [d for d in ("flight", "ncvoter") if d in OUTCOMES]
    if not datasets:
        return
    figure_report(
        f"Exp-6 — planted dirty dependencies recovered by AOD discovery "
        f"({NUM_ROWS} tuples, error rate {ERROR_RATE:.0%}, eps={THRESHOLD:.0%})",
        "dataset",
        datasets,
        {
            "planted AOCs": [float(OUTCOMES[d]["planted"]) for d in datasets],
            "recovered by exact OD discovery": [
                float(OUTCOMES[d]["found_exact"]) for d in datasets
            ],
            "recovered by AOD discovery": [
                float(OUTCOMES[d]["found_approx"]) for d in datasets
            ],
            "in top-10 interestingness": [
                float(OUTCOMES[d]["top_ranked"]) for d in datasets
            ],
        },
        annotations={
            "#OCs (exact)": [OUTCOMES[d]["ocs_exact"] for d in datasets],
            "#AOCs (eps=10%)": [OUTCOMES[d]["ocs_approx"] for d in datasets],
        },
        notes=[
            "paper: exact discovery misses dependencies broken by even one "
            "dirty value; AOD discovery reports them and ranks them highly "
            "(originAirport ~ IATACode at 8%, streetAddress ~ mailAddress at 18%)",
        ],
    )
