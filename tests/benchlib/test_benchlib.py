"""Tests for the benchmark harness (workloads, measurements, reporting)."""

import pytest

from repro.benchlib.harness import (
    compare_validators_on_candidates,
    measure_discovery,
    run_sweep,
)
from repro.benchlib.reporting import (
    format_series_table,
    format_table,
    projected_quadratic_runtime,
    render_figure,
    speedup_series,
)
from repro.benchlib.workloads import (
    WorkloadSpec,
    clear_workload_cache,
    make_workload,
)
from repro.dataset.examples import employee_salary_table
from repro.dependencies.oc import CanonicalOC


class TestWorkloadSpecs:
    def test_label_formatting(self):
        assert WorkloadSpec("flight", 10_000).label == "flight-10K-10"
        assert WorkloadSpec("ncvoter", 2_000_000, 30).label == "ncvoter-2M-30"
        assert WorkloadSpec("flight", 123).label == "flight-123-10"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec("imaginary", 100)

    def test_make_workload_is_cached(self):
        clear_workload_cache()
        spec = WorkloadSpec("flight", 100, 6)
        first = make_workload(spec)
        second = make_workload(spec)
        assert first is second
        clear_workload_cache()
        third = make_workload(spec)
        assert third is not first
        assert third.relation == first.relation

    def test_make_workload_respects_spec(self):
        workload = make_workload(WorkloadSpec("ncvoter", 150, 8), use_cache=False)
        assert workload.relation.num_rows == 150
        assert workload.relation.num_attributes == 8


class TestMeasureDiscovery:
    def test_all_three_modes(self):
        relation = employee_salary_table()
        for mode in ("od", "aod-optimal", "aod-iterative"):
            measurement = measure_discovery(relation, mode, threshold=0.1)
            assert measurement.seconds > 0
            assert measurement.num_ocs >= 0
            assert not measurement.timed_out
            row = measurement.as_row()
            assert row["label"] == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            measure_discovery(employee_salary_table(), "warp-speed")

    def test_run_sweep_shapes(self):
        relation = employee_salary_table()
        series = run_sweep(
            relation_factory=lambda n: relation.head(n),
            sweep_values=[5, 9],
            modes=("od", "aod-optimal"),
            threshold=0.1,
        )
        assert set(series) == {"od", "aod-optimal"}
        assert len(series["od"]) == 2
        assert series["od"][0].label == "od@5"


class TestValidatorComparison:
    def test_exp4_style_comparison(self):
        relation = employee_salary_table()
        candidates = [
            CanonicalOC([], "sal", "tax"),       # optimal 4, greedy 5
            CanonicalOC([], "sal", "taxGrp"),    # exact
            CanonicalOC({"pos"}, "exp", "sal"),  # optimal 1
        ]
        summary = compare_validators_on_candidates(relation, candidates, threshold=0.5)
        assert summary.num_candidates == 3
        sal_tax = summary.comparisons[0]
        assert sal_tax.optimal_removal == 4
        assert sal_tax.iterative_removal == 5
        assert sal_tax.overestimate == 1
        assert summary.mean_relative_overestimate > 0
        missed = summary.missed_by_iterative()
        assert [c.oc for c in missed] == [CanonicalOC([], "sal", "tax")]

    def test_no_threshold_means_no_missed_list(self):
        summary = compare_validators_on_candidates(
            employee_salary_table(), [CanonicalOC([], "sal", "tax")]
        )
        assert summary.missed_by_iterative() == []


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")

    def test_format_series_table(self):
        text = format_series_table(
            "tuples",
            [100, 200],
            {"OD": [0.5, 1.0], "AOD": [0.6, 1.2]},
            annotations={"#OCs": [3, 4]},
        )
        assert "tuples" in text
        assert "#OCs" in text
        assert "0.500" in text

    def test_render_figure_has_title_and_notes(self):
        text = render_figure(
            "Exp-1", "tuples", [1], {"OD": [0.1]}, notes=["shape matches paper"]
        )
        assert text.startswith("=== Exp-1 ===")
        assert "note: shape matches paper" in text

    def test_speedup_series(self):
        assert speedup_series([10.0, 4.0], [2.0, 2.0]) == [5.0, 2.0]
        assert speedup_series([1.0], [0.0]) == [float("inf")]

    def test_projected_quadratic_runtime(self):
        assert projected_quadratic_runtime(1.0, 100, 200) == 4.0
        with pytest.raises(ValueError):
            projected_quadratic_runtime(1.0, 0, 10)


class TestBenchSummary:
    PAYLOAD = {
        "workload": "flight-like, 2000 rows, threshold 0.1",
        "runs": [
            {"label": "python-batched-w1", "seconds": 0.35,
             "validation_share": 0.84},
            {"label": "numpy-batched-w1", "seconds": 0.21,
             "validation_share": 0.85},
        ],
        "batched_speedup": {"python": 1.09},
        "sweep": {"thresholds": [0.06, 0.09], "backend": "numpy",
                  "cold_seconds": 1.0, "warm_seconds": 0.5, "speedup": 2.0,
                  "memo_hits": [0, 9]},
        "observability": {
            "touchpoints": 120, "noop_span_cost_us": 0.4,
            "off_seconds": 0.2, "on_seconds": 0.21, "spans": 73,
            "tracing_off_overhead_pct": 0.02, "overhead_budget_pct": 2.0,
            "byte_identical": True,
        },
    }

    def test_render_is_a_wholesale_view_of_the_json(self):
        from repro.benchlib.reporting import render_bench_summary

        text = render_bench_summary(self.PAYLOAD)
        assert "do not edit" in text
        assert "numpy-batched-w1" in text
        assert "Session sweep" in text
        assert "Observability overhead" in text
        assert "0.02" in text
        # Records the payload does not carry are skipped, not rendered
        # empty (a partial run still produces a clean summary).
        assert "Partition micro-benchmarks" not in text
        assert "Adaptive planner" not in text

    def test_write_regenerates_instead_of_appending(self, tmp_path):
        import json

        from repro.benchlib.reporting import write_bench_summary

        json_path = tmp_path / "BENCH_discovery.json"
        summary_path = tmp_path / "summary.txt"
        json_path.write_text(json.dumps(self.PAYLOAD), encoding="utf-8")
        first = write_bench_summary(json_path, summary_path)
        second = write_bench_summary(json_path, summary_path)
        # Idempotent: repeated runs must not grow the file (the drift the
        # old append-per-report flow caused).
        assert first == second
        assert summary_path.read_text(encoding="utf-8") == second
        assert second.count("End-to-end discovery") == 1
