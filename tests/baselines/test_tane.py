"""Tests for the TANE baseline and its cross-check against the OD framework."""

from itertools import combinations

import pytest

from repro.baselines.tane import discover_fds_tane
from repro.dataset.examples import employee_salary_table
from repro.dataset.generators import generate_random_table
from repro.dataset.relation import Relation
from repro.dependencies.fd import FD
from repro.dependencies.ofd import OFD
from repro.dependencies.violations import ofd_holds
from repro.discovery.api import discover_ods


def _oracle_minimal_fds(relation, attributes):
    """Brute-force minimal exact FDs (including empty LHS for constants)."""
    holds = {}
    for rhs in attributes:
        others = [a for a in attributes if a != rhs]
        for size in range(len(others) + 1):
            for lhs in combinations(others, size):
                holds[(frozenset(lhs), rhs)] = ofd_holds(relation, OFD(lhs, rhs))
    minimal = set()
    for (lhs, rhs), valid in holds.items():
        if not valid:
            continue
        if any(
            holds.get((frozenset(sub), rhs), False)
            for size in range(len(lhs))
            for sub in combinations(sorted(lhs), size)
        ):
            continue
        minimal.add((lhs, rhs))
    return minimal


class TestExactTane:
    def test_employee_table_against_oracle(self):
        relation = employee_salary_table()
        attributes = ["pos", "exp", "sal", "taxGrp", "bonus"]
        result = discover_fds_tane(relation, attributes=attributes)
        assert result.fd_statements() == _oracle_minimal_fds(relation, attributes)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_random_table_against_oracle(self, seed):
        relation = generate_random_table(30, 4, cardinality=3, seed=seed)
        result = discover_fds_tane(relation)
        assert result.fd_statements() == _oracle_minimal_fds(
            relation, relation.attribute_names
        )

    def test_key_pruning_finds_key_fds(self):
        # "sal" is a key of Table 1, so sal -> X holds for every X.
        relation = employee_salary_table()
        result = discover_fds_tane(relation, attributes=["sal", "pos", "taxGrp"])
        assert (frozenset({"sal"}), "pos") in result.fd_statements()
        assert (frozenset({"sal"}), "taxGrp") in result.fd_statements()

    def test_constant_column_reported_with_empty_lhs(self):
        relation = Relation.from_columns({"a": [1, 1, 1], "b": [1, 2, 3]})
        result = discover_fds_tane(relation)
        assert (frozenset(), "a") in result.fd_statements()

    def test_max_level(self):
        relation = employee_salary_table()
        result = discover_fds_tane(relation, max_level=1)
        assert all(found.level <= 1 for found in result.fds)


class TestApproximateTane:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            discover_fds_tane(employee_salary_table(), threshold=1.2)

    def test_approximate_fd_pos_exp_sal(self):
        # pos, exp -> sal has g3 = 1/9; it appears at threshold 0.15 but not
        # at threshold 0 (unless a subset already determines sal).
        relation = employee_salary_table()
        approx = discover_fds_tane(
            relation, threshold=0.15, attributes=["pos", "exp", "sal"]
        )
        assert any(
            found.fd == FD({"pos", "exp"}, "sal") or found.fd.lhs < {"pos", "exp"}
            for found in approx.fds
            if found.fd.rhs == "sal"
        )

    def test_more_fds_with_higher_threshold(self):
        relation = generate_random_table(60, 4, cardinality=3, seed=5)
        exact = discover_fds_tane(relation, threshold=0.0)
        approx = discover_fds_tane(relation, threshold=0.3)
        assert approx.num_fds >= exact.num_fds


class TestCrossCheckAgainstOdFramework:
    def test_exact_ofds_match_tane_fds(self):
        """Every exact OFD found by the OD framework corresponds to a minimal
        FD found by TANE (restricted to non-empty LHS) and vice versa."""
        relation = employee_salary_table()
        attributes = ["pos", "exp", "sal", "taxGrp", "bonus"]
        od_result = discover_ods(relation, attributes=attributes)
        tane_result = discover_fds_tane(relation, attributes=attributes)
        ofd_statements = {
            (found.ofd.context, found.ofd.attribute) for found in od_result.ofds
        }
        fd_statements = tane_result.fd_statements()
        assert ofd_statements == fd_statements
