"""Tests for the bounded list-based OD discovery baseline."""

import pytest

from repro.baselines.order import discover_list_ods
from repro.dataset.examples import employee_salary_table
from repro.dataset.generators import generate_monotone_table
from repro.dependencies.od import ListOD
from repro.dependencies.violations import od_holds


class TestSingleAttributeLevel:
    def test_finds_sal_orders_taxgrp(self):
        result = discover_list_ods(employee_salary_table(), max_list_length=1)
        assert (("sal",), ("taxGrp",)) in result.statements()

    def test_does_not_report_invalid_od(self):
        result = discover_list_ods(employee_salary_table(), max_list_length=1)
        assert (("taxGrp",), ("sal",)) not in result.statements()

    def test_every_reported_od_actually_holds(self):
        relation = employee_salary_table()
        result = discover_list_ods(relation, max_list_length=2)
        for found in result.ods:
            assert od_holds(relation, found.od)

    def test_attribute_subset(self):
        result = discover_list_ods(
            employee_salary_table(), attributes=["sal", "taxGrp"], max_list_length=1
        )
        for found in result.ods:
            assert set(found.od.attributes()) <= {"sal", "taxGrp"}


class TestLevelTwoExtensions:
    def test_monotone_table_yields_level_one_ods(self):
        relation = generate_monotone_table(40, 3, noise=0.0, seed=2)
        result = discover_list_ods(relation, max_list_length=1)
        # Every ordered pair of monotone columns is a valid OD.
        assert result.num_ods == 6

    def test_split_only_failures_are_extended(self):
        # pos |-> taxGrp fails only with splits (pos does not determine
        # taxGrp) — but pos |-> taxGrp has swaps? Use the employee table and
        # just check that level-2 candidates were generated and checked.
        result = discover_list_ods(employee_salary_table(), max_list_length=2)
        assert result.candidates_checked > 42  # more than the 7*6 level-1 pairs

    def test_candidate_budget_truncates(self):
        result = discover_list_ods(
            employee_salary_table(), max_list_length=2, max_candidates=10
        )
        assert result.truncated
        assert result.candidates_checked <= 10


class TestConsistencyWithCanonicalFramework:
    def test_level_one_ods_imply_canonical_ocs(self):
        """[A] |-> [B] implies the canonical OC {}: A ~ B, so every level-1
        OD found here must have its OC counterpart valid."""
        from repro.dependencies.oc import CanonicalOC
        from repro.validation.exact_oc import validate_exact_oc

        relation = employee_salary_table()
        result = discover_list_ods(relation, max_list_length=1)
        for found in result.ods:
            (a,), (b,) = found.od.lhs, found.od.rhs
            if a == b:
                continue
            assert validate_exact_oc(relation, CanonicalOC([], a, b)).is_valid
