"""Unit tests for the planner's cost model.

The model's job is ranking, not forecasting, so the properties under test
are the orderings the planner relies on:

* ``recommend_workers`` is nondecreasing in the host's core count — more
  cores never make parallelism look *less* profitable;
* tiny levels always plan in-process — the dispatch floor dominates;
* a 1-core host always degrades to serial (parallel there is serial plus
  overhead, never a strict win) — the measured w4 ≈ 0.52x inversion.
"""

import pytest

from repro.planner import CostModel, cost_units
from repro.planner.model import (
    INLINE_PAYOFF_RATIO,
    MIN_DISPATCH_OVERHEAD_SECONDS,
    MIN_KERNEL_UNIT_SECONDS,
    SHARD_PAYOFF_RATIO,
)


def _model(cpu_count, kernel=1e-7, dispatch=1e-3):
    return CostModel(
        cpu_count=cpu_count,
        kernel_unit_seconds=kernel,
        dispatch_overhead_seconds=dispatch,
    )


def test_cost_units_monotone_in_class_size():
    sizes = [0, 1, 2, 10, 100, 10_000]
    costs = [cost_units(m) for m in sizes]
    assert costs == sorted(costs)
    assert cost_units(0) == 0.0
    # m * (1 + bit_length(m)): the pool's shard-balancing measure.
    assert cost_units(100) == 100 * (1 + (100).bit_length())


@pytest.mark.parametrize("units", [1e3, 1e6, 1e9])
@pytest.mark.parametrize("max_workers", [2, 4, 8])
def test_recommend_workers_nondecreasing_in_cores(units, max_workers):
    recommendations = [
        _model(cores).recommend_workers(units, max_workers)
        for cores in (1, 2, 4, 8, 16)
    ]
    assert recommendations == sorted(recommendations)


def test_one_core_host_always_serial():
    model = _model(1)
    for units in (1.0, 1e4, 1e8, 1e12):
        assert model.recommend_workers(units, 8) == 1
    # Parallel on one core is serial plus dispatch: strictly worse.
    assert model.predict_parallel_seconds(1e6, 4) \
        > model.predict_serial_seconds(1e6)


def test_tiny_levels_stay_in_process_regardless_of_cores():
    for cores in (2, 8, 64):
        model = _model(cores)
        # A level far below one dispatch overhead's worth of compute.
        tiny = 0.01 * model.dispatch_overhead_seconds \
            / model.kernel_unit_seconds
        assert model.recommend_workers(tiny, 8) == 1


def test_large_levels_use_workers_on_multicore():
    model = _model(8, kernel=1e-6, dispatch=1e-4)
    huge = 1e9
    workers = model.recommend_workers(huge, 8)
    assert workers > 1
    assert model.predict_parallel_seconds(huge, workers) \
        < model.predict_serial_seconds(huge)


def test_effective_workers_caps_at_core_count():
    model = _model(2)
    assert model.effective_workers(1) == 1
    assert model.effective_workers(2) == 2
    assert model.effective_workers(16) == 2


def test_floors_scale_with_dispatch_to_kernel_ratio():
    model = _model(4, kernel=1e-7, dispatch=1e-3)
    assert model.min_shard_cost() == int(SHARD_PAYOFF_RATIO * 1e-3 / 1e-7)
    assert model.inline_group_cost() == int(INLINE_PAYOFF_RATIO * 1e-3 / 1e-7)
    # A slower dispatch raises both floors.
    slower = _model(4, kernel=1e-7, dispatch=1e-2)
    assert slower.min_shard_cost() > model.min_shard_cost()
    assert slower.inline_group_cost() > model.inline_group_cost()


def test_calibration_clamps_degenerate_probes():
    model = CostModel(
        cpu_count=0, kernel_unit_seconds=0.0, dispatch_overhead_seconds=0.0
    )
    assert model.cpu_count == 1
    assert model.kernel_unit_seconds == MIN_KERNEL_UNIT_SECONDS
    assert model.dispatch_overhead_seconds == MIN_DISPATCH_OVERHEAD_SECONDS


def test_observe_serial_refines_kernel_estimate():
    model = _model(4, kernel=1e-7)
    # Observed throughput 10x slower than calibrated: estimate must move
    # towards the observation without jumping all the way (EWMA).
    model.observe_serial(1e6, seconds=1.0)
    assert 1e-7 < model.kernel_unit_seconds < 1e-6
    # Degenerate observations are ignored.
    before = model.kernel_unit_seconds
    model.observe_serial(0, seconds=1.0)
    model.observe_serial(1e6, seconds=0.0)
    assert model.kernel_unit_seconds == before


def test_observe_parallel_refines_dispatch_estimate():
    model = _model(4, kernel=1e-7, dispatch=1e-3)
    units = 10 * model.min_shard_cost()
    # A pooled level that took far longer than compute alone: the residual
    # lands in the dispatch estimate.
    model.observe_parallel(units, seconds=5.0, num_workers=4)
    assert model.dispatch_overhead_seconds > 1e-3


def test_observe_validation_share_adjusts_overhead_factor():
    model = _model(4)
    assert model.overhead_factor == 1.0
    model.observe_validation_share(0.5)  # validation is half the level
    assert model.overhead_factor > 1.0
    before = model.overhead_factor
    model.observe_validation_share(None)
    model.observe_validation_share(0.0)
    model.observe_validation_share(1.5)
    assert model.overhead_factor == before


def test_as_dict_is_json_ready():
    import json

    payload = _model(4).as_dict()
    json.dumps(payload)
    for key in (
        "cpu_count", "backend", "kernel_unit_seconds",
        "dispatch_overhead_seconds", "overhead_factor",
        "min_shard_cost", "inline_group_cost", "backend_unit_seconds",
    ):
        assert key in payload
