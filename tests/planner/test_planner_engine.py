"""Planner-engine integration: injected cost models force each decision
branch deterministically, regardless of the host the tests run on.

* a 1-core model must degrade a ``num_workers=4`` run to in-process —
  including vetoing the pool spawn itself (the run-scope record);
* a many-core model with cheap dispatch must keep the pool and plan
  workers for the real levels;
* either way the results are byte-identical to the fixed plan.
"""

import pytest

from repro.backend import available_backends
from repro.dataset.generators import generate_flight_like
from repro.discovery.api import discover
from repro.discovery.config import DiscoveryConfig, DiscoveryRequest
from repro.discovery.engine import DiscoveryEngine
from repro.discovery.session import Profiler
from repro.planner import (
    CostModel,
    ExecutionPlanner,
    build_planner,
    calibrate,
    preferred_backend,
    probe_kernel_unit_seconds,
)

BACKENDS = available_backends()

RELATION = generate_flight_like(
    300, num_attributes=6, error_rate=0.1, seed=3
).relation


def _forced_planner(cpu_count, kernel=1e-7, dispatch=1e-3, max_workers=4):
    model = CostModel(
        cpu_count=cpu_count,
        kernel_unit_seconds=kernel,
        dispatch_overhead_seconds=dispatch,
    )
    return ExecutionPlanner(model, max_workers=max_workers)


def test_one_core_inversion_degrades_run_to_in_process():
    """The measured 1-core inversion (w4 ≈ 0.52x of w1): with a 1-core
    model the engine must not even spawn its pool, and every level must
    plan in-process."""
    fixed = discover(RELATION, DiscoveryConfig(threshold=0.1))
    config = DiscoveryConfig(threshold=0.1, num_workers=4, plan="auto")
    engine = DiscoveryEngine(RELATION, config, planner=_forced_planner(1))
    result = engine.run()

    assert result.ocs == fixed.ocs and result.ofds == fixed.ofds
    decisions = result.stats.planner_decisions
    assert decisions
    assert decisions[0].get("scope") == "run"
    assert "pool not spawned" in decisions[0]["reason"]
    assert all(not d["use_workers"] for d in decisions)


def test_many_core_cheap_dispatch_plans_workers():
    """A model where parallelism clearly pays must keep the pool and put
    the real levels on workers — and still match the fixed result."""
    fixed = discover(RELATION, DiscoveryConfig(threshold=0.1, num_workers=2))
    config = DiscoveryConfig(threshold=0.1, num_workers=2, plan="auto")
    planner = _forced_planner(
        8, kernel=1e-4, dispatch=1e-4, max_workers=2
    )
    engine = DiscoveryEngine(RELATION, config, planner=planner)
    result = engine.run()

    assert result.ocs == fixed.ocs and result.ofds == fixed.ofds
    level_plans = [
        d for d in result.stats.planner_decisions if d.get("scope") != "run"
    ]
    assert level_plans
    assert any(d["use_workers"] for d in level_plans)
    # Observed levels feed back into the model (predicted vs actual).
    assert all("actual_seconds" in d for d in level_plans)


def test_planner_decisions_carry_floors_and_predictions():
    config = DiscoveryConfig(threshold=0.1, plan="auto")
    engine = DiscoveryEngine(RELATION, config, planner=_forced_planner(1))
    result = engine.run()
    for decision in result.stats.planner_decisions:
        if decision.get("scope") == "run":
            continue
        assert decision["min_shard_cost"] >= 1
        assert decision["inline_group_cost"] >= 1
        assert decision["predicted_seconds"] >= 0.0
        assert decision["reason"]


def test_fixed_plan_never_builds_a_planner():
    engine = DiscoveryEngine(RELATION, DiscoveryConfig(threshold=0.1))
    result = engine.run()
    assert engine._planner is None
    assert result.stats.plan_mode == "fixed"
    assert result.stats.planner_decisions == []


@pytest.mark.parametrize("backend", BACKENDS)
def test_calibration_probes_are_positive_and_cached(backend):
    first = probe_kernel_unit_seconds(backend)
    second = probe_kernel_unit_seconds(backend)
    assert first > 0
    assert second == first  # process-lifetime cache

    model = calibrate(backend=backend)
    assert model.backend == str(backend)
    assert model.cpu_count >= 1
    assert model.kernel_unit_seconds > 0
    assert model.dispatch_overhead_seconds > 0
    assert preferred_backend(model) in model.backend_unit_seconds


def test_session_planner_info_is_the_healthz_block():
    with Profiler(RELATION) as session:
        assert session.planner_info() is None
        session.discover(DiscoveryRequest(threshold=0.1, plan="auto"))
        info = session.planner_info()
    assert info is not None
    assert info["model"]["cpu_count"] >= 1
    assert info["levels_planned"] > 0
    assert info["runs_observed"] == 1
    assert info["decisions"]
    assert info["calibration_age_seconds"] >= 0.0
    # The block must be JSON-serialisable as served by /healthz.
    import json

    json.dumps(info)


def test_build_planner_accepts_prebuilt_model():
    model = CostModel(
        cpu_count=2, kernel_unit_seconds=1e-7,
        dispatch_overhead_seconds=1e-3,
    )
    planner = build_planner(max_workers=3, pipeline=False, model=model)
    assert planner.model is model
    assert planner.max_workers == 3
    assert not planner.pipeline_requested
