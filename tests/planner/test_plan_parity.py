"""The planner must be invisible in results: ``plan="auto"`` vs
``plan="fixed"`` is byte-identical on every backend and every execution
shape the planner can steer (batched in-process, pooled pipelined via a
session, incremental extend → revalidate).

Only wall-clock and the planner's own bookkeeping (``plan_mode``,
``planner_decisions``, scheduling timers) may differ.
"""

import pytest

from repro.backend import available_backends
from repro.dataset.generators import generate_flight_like
from repro.discovery.api import discover
from repro.discovery.config import DiscoveryConfig, DiscoveryRequest
from repro.discovery.session import Profiler

BACKENDS = available_backends()

#: Search-shape counters that planning must not perturb (scheduling
#: timers, ``plan_mode`` and ``planner_decisions`` are the only
#: legitimate differences between a fixed and an auto run).
COUNTER_FIELDS = (
    "oc_candidates_validated", "ofd_candidates_validated",
    "oc_candidates_pruned", "ofd_candidates_pruned",
    "nodes_processed", "nodes_pruned", "levels_processed",
    "nodes_per_level", "timed_out", "cancelled",
)


def _relation():
    return generate_flight_like(
        300, num_attributes=6, error_rate=0.1, seed=3
    ).relation


RELATION = _relation()


def _assert_identical(auto, fixed):
    assert auto.ocs == fixed.ocs
    assert auto.ofds == fixed.ofds
    for name in COUNTER_FIELDS:
        assert getattr(auto.stats, name) == getattr(fixed.stats, name), name
    assert auto.stats.plan_mode == "auto"
    assert fixed.stats.plan_mode == "fixed"


@pytest.mark.parametrize("backend", BACKENDS)
def test_auto_plan_matches_fixed_batched(backend):
    fixed = discover(
        RELATION, DiscoveryConfig(threshold=0.1, backend=backend)
    )
    auto = discover(
        RELATION, DiscoveryConfig(threshold=0.1, backend=backend, plan="auto")
    )
    _assert_identical(auto, fixed)
    assert auto.stats.planner_decisions


@pytest.mark.parametrize("backend", BACKENDS)
def test_auto_plan_matches_fixed_pooled_pipelined(backend):
    fixed = discover(
        RELATION,
        DiscoveryConfig(
            threshold=0.1, backend=backend, num_workers=2,
            pipeline_validation=True,
        ),
    )
    auto = discover(
        RELATION,
        DiscoveryConfig(
            threshold=0.1, backend=backend, num_workers=2,
            pipeline_validation=True, plan="auto",
        ),
    )
    _assert_identical(auto, fixed)
    assert auto.stats.planner_decisions


@pytest.mark.parametrize("backend", BACKENDS)
def test_auto_plan_matches_fixed_in_session(backend):
    request_fixed = DiscoveryRequest(threshold=0.1)
    request_auto = DiscoveryRequest(threshold=0.1, plan="auto")
    with Profiler(RELATION, backend=backend, num_workers=2) as session:
        fixed = session.discover(request_fixed)
        auto = session.discover(request_auto)
        again = session.discover(request_auto)
    _assert_identical(auto, fixed)
    # A warm planner (second auto run) must not change results either.
    assert again.ocs == fixed.ocs and again.ofds == fixed.ofds


@pytest.mark.parametrize("backend", BACKENDS)
def test_auto_plan_matches_fixed_incremental_extend(backend):
    base = generate_flight_like(
        250, num_attributes=6, error_rate=0.1, seed=3
    ).relation
    donor = generate_flight_like(
        280, num_attributes=6, error_rate=0.2, seed=17
    ).relation
    batch = [donor.row(i) for i in range(250, 280)]

    def _run(plan):
        request = DiscoveryRequest(threshold=0.1, plan=plan)
        with Profiler(base, backend=backend, num_workers=2) as session:
            session.discover(request)
            session.extend(batch)
            return session.discover_incremental(request)

    fixed = _run("fixed")
    auto = _run("auto")
    assert auto.result.ocs == fixed.result.ocs
    assert auto.result.ofds == fixed.result.ofds
    assert auto.result.stats.plan_mode == "auto"


def test_unknown_plan_mode_rejected():
    with pytest.raises(ValueError, match="plan"):
        DiscoveryConfig(threshold=0.1, plan="psychic")
