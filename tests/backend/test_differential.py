"""Differential tests: both backends must produce identical results.

The acceptance bar for the backend abstraction is byte-identical
``ValidationResult``s and ``DiscoveryResult``s: the same discovered
OFDs/OCs with the same removal counts, approximation factors and
interestingness scores, in the same order.  These tests run the same
workloads — the paper's Table 1 and generated flight/ncvoter/planted
datasets — through full discovery under every backend and compare, plus
randomised LNDS parity checks against the brute-force quadratic oracle.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataset.examples import employee_salary_table, tiny_numeric_table
from repro.dataset.generators import (
    generate_flight_like,
    generate_ncvoter_like,
    generate_planted_oc_table,
)
from repro.dependencies import CanonicalOC, CanonicalOD, OFD
from repro.discovery.api import discover
from repro.discovery.config import DiscoveryConfig
from repro.validation.approx_oc_iterative import validate_aoc_iterative
from repro.validation.approx_oc_optimal import validate_aoc_optimal
from repro.validation.approx_od import validate_aod_optimal
from repro.validation.approx_ofd import validate_aofd
from repro.validation.exact_oc import validate_exact_oc
from repro.validation.lnds import lnds_indices, lnds_length_quadratic

pytest.importorskip("numpy")

BACKENDS = ("python", "numpy")


def _workloads():
    return {
        "table1": employee_salary_table(),
        "tiny": tiny_numeric_table(),
        "flight": generate_flight_like(
            300, num_attributes=7, error_rate=0.1, seed=5
        ).relation,
        "ncvoter": generate_ncvoter_like(
            300, num_attributes=7, error_rate=0.1, seed=5
        ).relation,
        "planted": generate_planted_oc_table(200, approximation_factor=0.1, seed=11).relation,
    }


WORKLOADS = _workloads()

CONFIGS = {
    "exact": dict(threshold=0.0, validator="exact"),
    "optimal-10": dict(threshold=0.1, validator="optimal"),
    "optimal-30": dict(threshold=0.3, validator="optimal"),
    "iterative-10": dict(threshold=0.1, validator="iterative", max_level=3),
}


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_discovery_results_identical(workload, config_name):
    relation = WORKLOADS[workload]
    results = {}
    for backend in BACKENDS:
        config = DiscoveryConfig(backend=backend, **CONFIGS[config_name])
        results[backend] = discover(relation, config)
    python_result, numpy_result = results["python"], results["numpy"]
    # DiscoveredOC/DiscoveredOFD are frozen dataclasses: equality covers the
    # statement, removal size, approximation factor, level and score.
    assert numpy_result.ocs == python_result.ocs
    assert numpy_result.ofds == python_result.ofds
    assert numpy_result.ocs_per_level() == python_result.ocs_per_level()
    assert numpy_result.stats.backend == "numpy"
    assert python_result.stats.backend == "python"


def test_validators_identical_on_all_candidate_pairs():
    relation = WORKLOADS["table1"]
    names = relation.attribute_names
    for a in names:
        for b in names:
            if a >= b:
                continue
            for threshold in (None, 0.0, 0.2):
                oc = CanonicalOC([], a, b)
                od = CanonicalOD([], a, b)
                opt = {
                    backend: validate_aoc_optimal(relation, oc, threshold, backend=backend)
                    for backend in BACKENDS
                }
                assert opt["numpy"] == opt["python"]
                assert opt["numpy"].removal_rows == opt["python"].removal_rows
                it = {
                    backend: validate_aoc_iterative(relation, oc, threshold, backend=backend)
                    for backend in BACKENDS
                }
                assert it["numpy"] == it["python"]
                aod = {
                    backend: validate_aod_optimal(relation, od, threshold, backend=backend)
                    for backend in BACKENDS
                }
                assert aod["numpy"] == aod["python"]


def test_validators_identical_with_contexts():
    relation = WORKLOADS["flight"]
    names = relation.attribute_names
    context = [names[0]]
    oc = CanonicalOC(context, names[1], names[2])
    ofd = OFD(context, names[3])
    for threshold in (None, 0.05, 0.5):
        oc_results = [
            validate_aoc_optimal(relation, oc, threshold, backend=backend)
            for backend in BACKENDS
        ]
        assert oc_results[0] == oc_results[1]
        assert oc_results[0].removal_rows == oc_results[1].removal_rows
        ofd_results = [
            validate_aofd(relation, ofd, threshold, backend=backend)
            for backend in BACKENDS
        ]
        assert ofd_results[0] == ofd_results[1]
    exact = [
        validate_exact_oc(relation, oc, backend=backend) for backend in BACKENDS
    ]
    assert exact[0] == exact[1]


class TestLndsOracle:
    """Randomised LNDS parity against the brute-force quadratic oracle."""

    @given(st.lists(st.integers(min_value=0, max_value=9), max_size=40))
    @settings(max_examples=120, deadline=None)
    def test_batched_kernel_matches_oracle(self, values):
        # One class whose [A ASC, B ASC] order is the identity: the kernel's
        # removal size must equal n - LNDS(n) per the quadratic oracle.
        from repro.backend import get_backend

        if len(values) < 2:
            return
        backend = get_backend("numpy")
        classes = [list(range(len(values)))]
        a = backend.to_native(list(range(len(values))))
        b = backend.to_native(values)
        removal, exceeded = backend.oc_optimal_removal_rows(classes, a, b)
        assert not exceeded
        assert len(values) - len(removal) == lnds_length_quadratic(values)
        kept = [v for i, v in enumerate(values) if i not in set(removal)]
        assert all(x <= y for x, y in zip(kept, kept[1:]))
        # and the kernel picks exactly the reference subsequence
        assert sorted(set(range(len(values))) - set(removal)) == lnds_indices(values)

    @given(st.lists(st.integers(min_value=0, max_value=9), max_size=40))
    @settings(max_examples=120, deadline=None)
    def test_count_kernel_matches_oracle(self, values):
        from repro.backend import get_backend

        if len(values) < 2:
            return
        backend = get_backend("numpy")
        classes = [list(range(len(values)))]
        a = backend.to_native(list(range(len(values))))
        b = backend.to_native(values)
        count, exceeded = backend.oc_optimal_removal_count(classes, a, b)
        assert not exceeded
        assert count == len(values) - lnds_length_quadratic(values)
